"""Option expiration machinery — the paper's running example.

Section 1 motivates the whole system with: *"The expiration date of an
option is the 3rd Friday of November if it is a business day, else it is
the business day preceding the above mentioned Friday"*, and section 3.3
gives the calendar scripts for the expiration date (``if``) and the last
trading day (``while``: the seventh business day preceding the last day of
the expiration month).

This module runs exactly those scripts through the catalog, with the
expiration month supplied as the predefined calendar the scripts
reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.registry import CalendarRegistry
from repro.core.calendar import Calendar
from repro.core.errors import CalendarError

__all__ = [
    "EXPIRATION_SCRIPT",
    "LAST_TRADING_DAY_SCRIPT",
    "expiration_date",
    "last_trading_day",
    "expiration_calendar",
    "OptionContract",
]

#: The section 3.3 ``if`` script, verbatim semantics: third Friday of the
#: expiration month if a business day, else the preceding business day.
EXPIRATION_SCRIPT = """
{Fri_days = [5]/DAYS:during:WEEKS;
 temp1 = [3]/Fri_days:overlaps:Expiration-Month;
 if (temp1:intersects:HOLIDAYS)
     return([n]/AM_BUS_DAYS:<:temp1);
 else
     return(temp1);}
"""

#: The section 3.3 ``while`` script's target computation: the seventh
#: business day preceding the last business day of the expiration month.
LAST_TRADING_DAY_SCRIPT = """
{temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
 temp2 = [-7]/AM_BUS_DAYS:<:temp1;
 return(temp2);}
"""


def _expiration_month_calendar(registry: CalendarRegistry, year: int,
                               month: int) -> Calendar:
    lo, hi = registry.system.epoch.days_of_month(year, month)
    return Calendar.interval(lo, hi, None)


def _run_with_month(registry: CalendarRegistry, script: str, year: int,
                    month: int) -> Calendar:
    month_cal = _expiration_month_calendar(registry, year, month)
    lo, hi = registry.system.epoch.days_of_year(year)
    # Look-back room for "<" selections reaching before the month.
    back = lo - 366
    window = (back if back != 0 else -1, hi)
    result = registry.eval_script(script, window=window,
                                  env={"Expiration-Month": month_cal})
    if not isinstance(result, Calendar) or result.is_empty():
        raise CalendarError(
            f"expiration script produced no result for {year}-{month:02d}")
    return result


def expiration_date(registry: CalendarRegistry, year: int,
                    month: int) -> int:
    """Axis day of the option expiration for ``year-month``."""
    result = _run_with_month(registry, EXPIRATION_SCRIPT, year, month)
    return result.elements[-1].hi


def last_trading_day(registry: CalendarRegistry, year: int,
                     month: int) -> int:
    """Axis day of the last trading day for ``year-month``."""
    result = _run_with_month(registry, LAST_TRADING_DAY_SCRIPT, year, month)
    return result.elements[-1].hi


def expiration_calendar(registry: CalendarRegistry, year: int,
                        months: "tuple[int, ...] | None" = None) -> Calendar:
    """Order-1 calendar of expiration instants for the given months.

    ``months`` defaults to all twelve (monthly expiration cycle); pass
    e.g. ``(3, 6, 9, 12)`` for a quarterly cycle.
    """
    months = months or tuple(range(1, 13))
    days = sorted(expiration_date(registry, year, m) for m in months)
    return Calendar.from_intervals([(d, d) for d in days])


@dataclass(frozen=True)
class OptionContract:
    """A listed option identified by its expiration year/month."""

    underlying: str
    year: int
    month: int
    strike: float

    def expiration(self, registry: CalendarRegistry) -> int:
        """Axis day the contract expires."""
        return expiration_date(registry, self.year, self.month)

    def last_trading_day(self, registry: CalendarRegistry) -> int:
        """Axis day of the contract's last trading day."""
        return last_trading_day(registry, self.year, self.month)
