"""Property-based round-trip tests for the two languages."""

from hypothesis import given, settings, strategies as st

from repro.lang import parse_expression
from repro.db.ql.parser import parse_ql_expression

# -- calendar expression language ------------------------------------------

cel_ops = st.sampled_from(["during", "overlaps", "meets", "<", "<="])
cel_names = st.sampled_from(["DAYS", "WEEKS", "MONTHS", "YEARS",
                             "HOLIDAYS", "AM_BUS_DAYS", "Jan-1993"])
cel_selectors = st.sampled_from(["", "[1]/", "[n]/", "[-3]/", "[2-4]/",
                                 "[1;3]/"])


@st.composite
def cel_expressions(draw):
    depth = draw(st.integers(min_value=1, max_value=4))
    parts = [f"{draw(cel_selectors)}{draw(cel_names)}"
             for _ in range(depth)]
    text = parts[0]
    for part in parts[1:]:
        sep = draw(st.sampled_from([":", "."]))
        op = draw(cel_ops)
        if sep == "." and op in ("<", "<="):
            op = "overlaps"
        text += f"{sep}{op}{sep}{part}"
    suffix = draw(st.sampled_from(["", " + HOLIDAYS", " - HOLIDAYS"]))
    return text + suffix


@settings(max_examples=200)
@given(cel_expressions())
def test_cel_str_roundtrip(text):
    """str(parse(text)) reparses to the identical AST."""
    first = parse_expression(text)
    assert parse_expression(str(first)) == first


# -- Postquel expressions ------------------------------------------------------

ql_atoms = st.sampled_from(["s.hours", "s.name", "t.x", "1", "2.5",
                            '"abc"', "true", "false"])
ql_comparisons = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
ql_arith = st.sampled_from(["+", "-", "*", "/"])


@st.composite
def ql_expressions(draw):
    def comparison():
        left = draw(ql_atoms)
        if draw(st.booleans()):
            left = f"({left} {draw(ql_arith)} {draw(ql_atoms)})"
        return f"{left} {draw(ql_comparisons)} {draw(ql_atoms)}"

    clauses = [comparison()
               for _ in range(draw(st.integers(min_value=1, max_value=3)))]
    text = clauses[0]
    for clause in clauses[1:]:
        text += f" {draw(st.sampled_from(['and', 'or']))} {clause}"
    if draw(st.booleans()):
        text = f"not ({text})"
    return text


@settings(max_examples=200)
@given(ql_expressions())
def test_ql_str_roundtrip(text):
    first = parse_ql_expression(text)
    assert parse_ql_expression(str(first)) == first
