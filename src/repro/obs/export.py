"""JSON export of metrics snapshots and trace trees.

Everything observability collects is exportable as plain JSON so it can
be diffed across runs (the same spirit as ``BENCH_core.json``) or
shipped to an external sink.  Exports are self-describing: each payload
carries a ``kind`` discriminator.
"""

from __future__ import annotations

import json

from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

__all__ = ["metrics_to_dict", "traces_to_dict", "export_json"]


def metrics_to_dict(metrics: MetricsRegistry) -> dict:
    """A JSON-ready snapshot of every instrument in ``metrics``."""
    return {"kind": "metrics", "metrics": metrics.snapshot()}


def traces_to_dict(spans: "list[Span]") -> dict:
    """A JSON-ready dump of finished trace trees."""
    return {"kind": "traces", "traces": [span.to_dict() for span in spans]}


def export_json(instrumentation: Instrumentation, *,
                traces: bool = True, indent: int | None = 2) -> str:
    """Serialise an instrumentation bundle's state to a JSON document.

    Includes the metrics snapshot always and the trace ring when
    ``traces`` is true (span trees can be large).
    """
    payload: dict = {
        "kind": "observability",
        "tracing": instrumentation.tracing,
        "metrics": instrumentation.metrics.snapshot(),
    }
    if traces:
        payload["traces"] = [span.to_dict()
                             for span in instrumentation.recent_traces()]
    return json.dumps(payload, indent=indent, default=str)
