"""User-defined date arithmetic: the 30/360 bond calendar (section 1).

"The yield calculation on financial bonds uses a calendar that has 30 days
in every month for date arithmetic, but 365 days in the year for the actual
yield calculation.  If date functions supplied by commercial databases are
used, results will be incorrect."

This example computes the same instrument's accrued interest and yields
under the paper's convention and under civil-calendar arithmetic, showing
the discrepancy that motivates convention-parameterised date functions.

Run with::

    python examples/bond_yield.py
"""

from repro.core import CivilDate
from repro.core.arithmetic import GregorianScheme, Thirty360Scheme
from repro.finance import (
    Actual365Fixed,
    Bond,
    PAPER_BOND_CONVENTION,
    Thirty360,
    discount_yield,
)


def main() -> None:
    settle = CivilDate(1993, 1, 15)
    maturity = CivilDate(1993, 7, 15)

    print("Date arithmetic under two calendars:")
    g, t = GregorianScheme(), Thirty360Scheme()
    print(f"   civil days   {settle} -> {maturity}: "
          f"{g.days_between(settle, maturity)}")
    print(f"   30/360 days  {settle} -> {maturity}: "
          f"{t.days_between(settle, maturity)}")
    print(f"   30/360 'Jan 15 + 90 days' lands on: "
          f"{t.add_days(settle, 90)} (vs civil {g.add_days(settle, 90)})")
    print()

    print("A $100 bill bought at $98, maturing in six months:")
    for name, convention in [
            ("30/360 months, 365-day year (the paper's)",
             PAPER_BOND_CONVENTION),
            ("30/360 months, 360-day year", Thirty360(year_basis=360)),
            ("actual/365 (what a Gregorian-only DBMS gives)",
             Actual365Fixed())]:
        y = discount_yield(100, 98, settle, maturity, convention)
        print(f"   {name:48s} -> {y * 100:.4f}%")
    print()

    bond = Bond(face=100.0, coupon_rate=0.08,
                maturity=CivilDate(1998, 11, 15), frequency=2)
    s = CivilDate(1993, 7, 1)
    print("8% semiannual bond maturing Nov 15 1998, settling Jul 1 1993:")
    ai30 = bond.accrued_interest(s, Thirty360())
    aiact = bond.accrued_interest(s, Actual365Fixed())
    print(f"   accrued interest 30/360:     {ai30:.6f}")
    print(f"   accrued interest actual/365: {aiact:.6f}")
    for target in (0.06, 0.08, 0.10):
        price = bond.price(s, target)
        solved = bond.yield_to_maturity(s, price)
        print(f"   price at {target * 100:.0f}% yield: {price:8.4f}  "
              f"(solver round-trips to {solved * 100:.4f}%)")


if __name__ == "__main__":
    main()
