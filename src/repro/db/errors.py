"""Exception hierarchy for the mini-POSTGRES substrate.

:class:`DatabaseError` derives from the package-wide
:class:`repro.errors.ReproError`, so one ``except ReproError`` catches
database and calendar problems alike while subsystem bases stay
distinct.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "DatabaseError",
    "SchemaError",
    "DataTypeError",
    "QueryError",
    "ExecutionError",
    "IntegrityError",
    "RuleError",
]


class DatabaseError(ReproError):
    """Base class of all database-substrate errors."""


class SchemaError(DatabaseError):
    """Bad DDL: duplicate relation, unknown column, bad schema."""


class DataTypeError(DatabaseError):
    """A value does not conform to its declared column type."""


class QueryError(DatabaseError):
    """The query text does not parse."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ExecutionError(DatabaseError):
    """A well-formed query failed during execution."""


class IntegrityError(DatabaseError):
    """A constraint (e.g. key uniqueness) was violated."""


class RuleError(DatabaseError):
    """Bad rule definition or a rule action failure."""
