"""Property-based tests for foreach, selection and caloperate."""

from hypothesis import given, strategies as st

from repro.core import (
    Calendar,
    Interval,
    LAST,
    SelectionPredicate,
    caloperate,
    foreach,
    select,
)

axis_point = st.integers(min_value=-150, max_value=150).filter(
    lambda t: t != 0)


@st.composite
def intervals(draw):
    a = draw(axis_point)
    b = draw(axis_point)
    return Interval(min(a, b), max(a, b))


@st.composite
def sorted_calendars(draw, min_size=0, max_size=10):
    ivs = draw(st.lists(intervals(), min_size=min_size,
                        max_size=max_size))
    ivs.sort(key=lambda iv: (iv.lo, iv.hi))
    return Calendar.from_intervals(ivs)


PAPER_OPS = ("overlaps", "during", "meets", "<", "<=")


class TestForeachProperties:
    @given(sorted_calendars(), intervals(),
           st.sampled_from(PAPER_OPS))
    def test_relaxed_result_subset_of_input(self, cal, ref, op):
        result = foreach(op, cal, ref, strict=False)
        assert set(result.elements) <= set(cal.elements)

    @given(sorted_calendars(), intervals(),
           st.sampled_from(PAPER_OPS))
    def test_strict_no_larger_than_relaxed(self, cal, ref, op):
        strict = foreach(op, cal, ref, strict=True)
        relaxed = foreach(op, cal, ref, strict=False)
        assert len(strict) <= len(relaxed)

    @given(sorted_calendars(), intervals())
    def test_during_subset_of_overlaps(self, cal, ref):
        during = foreach("during", cal, ref, strict=False)
        overlaps = foreach("overlaps", cal, ref, strict=False)
        assert set(during.elements) <= set(overlaps.elements)

    @given(sorted_calendars(), intervals())
    def test_strict_overlaps_clipped_inside_ref(self, cal, ref):
        result = foreach("overlaps", cal, ref, strict=True)
        for iv in result.elements:
            assert iv.lo >= ref.lo and iv.hi <= ref.hi

    @given(sorted_calendars(), intervals(),
           st.sampled_from(PAPER_OPS))
    def test_matches_naive_scan(self, cal, ref, op):
        """The SortedView fast path must equal a naive full scan."""
        from repro.core.interval import get_listop
        listop = get_listop(op)
        naive = []
        for iv in cal.elements:
            if listop(iv, ref):
                if listop.clips:
                    clipped = iv.intersect(ref)
                    if clipped is not None:
                        naive.append(clipped)
                else:
                    naive.append(iv)
        fast = foreach(op, cal, ref, strict=True)
        assert list(fast.elements) == naive

    @given(sorted_calendars(min_size=1), sorted_calendars(min_size=1))
    def test_grouping_result_order2(self, cal, ref):
        result = foreach("during", cal, ref)
        if not result.is_empty():
            assert result.order == 2

    @given(sorted_calendars(), sorted_calendars())
    def test_filtering_intersects_matches_naive(self, cal, ref):
        result = foreach("intersects", cal, ref, strict=False)
        expected = [iv for iv in cal.elements
                    if any(iv.overlaps(r) for r in ref.elements)]
        assert list(result.elements) == expected


class TestSelectionProperties:
    @given(sorted_calendars(), st.integers(min_value=1, max_value=12))
    def test_positive_index(self, cal, k):
        result = select(cal, SelectionPredicate.of(k))
        if k <= len(cal):
            assert result.elements == (cal.elements[k - 1],)
        else:
            assert result.is_empty()

    @given(sorted_calendars(min_size=1))
    def test_last_is_negative_one(self, cal):
        assert select(cal, SelectionPredicate.of(LAST)).to_pairs() == \
            select(cal, SelectionPredicate.of(-1)).to_pairs()

    @given(sorted_calendars(), st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12))
    def test_selection_monotone(self, cal, a, b):
        """Multi-selection preserves calendar order."""
        result = select(cal, SelectionPredicate.of(a, b))
        los = [iv.lo for iv in result.elements]
        assert los == sorted(los)

    @given(sorted_calendars())
    def test_range_equals_list(self, cal):
        by_range = select(cal, SelectionPredicate.of((1, 3)))
        by_list = select(cal, SelectionPredicate.of(1, 2, 3))
        assert by_range.to_pairs() == by_list.to_pairs()


class TestCaloperateProperties:
    @given(sorted_calendars(min_size=1),
           st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                    max_size=3))
    def test_group_count(self, cal, counts):
        result = caloperate(cal, tuple(counts))
        assert 1 <= len(result) <= len(cal)

    @given(sorted_calendars(min_size=1),
           st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                    max_size=3))
    def test_hulls_cover_all_elements(self, cal, counts):
        result = caloperate(cal, tuple(counts))
        for iv in cal.elements:
            assert any(h.lo <= iv.lo and h.hi >= iv.hi
                       for h in result.elements)

    @given(sorted_calendars(min_size=1))
    def test_unit_counts_identity_hulls(self, cal):
        result = caloperate(cal, (1,))
        assert result.to_pairs() == cal.to_pairs()
