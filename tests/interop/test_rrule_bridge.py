"""Tests for the RRULE bridge, cross-checked against dateutil.rrule."""

import datetime

import pytest
from dateutil import rrule as du

from repro.core import CalendarError, CalendarSystem
from repro.interop import (
    UnsupportedExpression,
    calendar_to_dates,
    expression_to_rrule,
    rrule_to_calendar,
)

SYSTEM = CalendarSystem.starting("Jan 1 1987")
WINDOW = ("Jan 1 1993", "Dec 31 1994")


def dateutil_dates(rule_text, dtstart=datetime.datetime(1993, 1, 1),
                   until=datetime.datetime(1994, 12, 31)):
    rule = du.rrulestr(f"RRULE:{rule_text}", dtstart=dtstart)
    return [(d.year, d.month, d.day) for d in rule.between(
        dtstart - datetime.timedelta(days=1), until, inc=True)]


def our_dates(rule_text):
    cal = rrule_to_calendar(SYSTEM, rule_text, *WINDOW)
    return [(d.year, d.month, d.day)
            for d in calendar_to_dates(SYSTEM, cal)]


class TestExpressionToRrule:
    def test_weekly(self):
        assert expression_to_rrule("[2]/DAYS:during:WEEKS") == \
            "FREQ=WEEKLY;BYDAY=TU"
        assert expression_to_rrule("[7]/DAYS:during:WEEKS") == \
            "FREQ=WEEKLY;BYDAY=SU"

    def test_monthly_by_month_day(self):
        assert expression_to_rrule("[15]/DAYS:during:MONTHS") == \
            "FREQ=MONTHLY;BYMONTHDAY=15"
        assert expression_to_rrule("[n]/DAYS:during:MONTHS") == \
            "FREQ=MONTHLY;BYMONTHDAY=-1"
        assert expression_to_rrule("[-2]/DAYS:during:MONTHS") == \
            "FREQ=MONTHLY;BYMONTHDAY=-2"

    def test_yearly_by_year_day(self):
        assert expression_to_rrule("[40]/DAYS:during:YEARS") == \
            "FREQ=YEARLY;BYYEARDAY=40"

    def test_ordinal_weekday_of_month(self):
        assert expression_to_rrule(
            "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS") == \
            "FREQ=MONTHLY;BYDAY=3FR"
        assert expression_to_rrule(
            "[n]/([1]/DAYS:during:WEEKS):overlaps:MONTHS") == \
            "FREQ=MONTHLY;BYDAY=-1MO"

    @pytest.mark.parametrize("text", [
        "WEEKS:during:MONTHS",              # no selection
        "[1;2]/DAYS:during:WEEKS",          # multi-index
        "[9]/DAYS:during:WEEKS",            # weekday out of range
        "[1]/WEEKS:during:MONTHS",          # weeks are not RRULE events
        "[1]/DAYS:during:WEEKS - HOLIDAYS",  # set ops have no RRULE
    ])
    def test_unsupported_shapes(self, text):
        with pytest.raises(UnsupportedExpression):
            expression_to_rrule(text)


class TestRruleToCalendarVsDateutil:
    @pytest.mark.parametrize("rule", [
        "FREQ=DAILY",
        "FREQ=DAILY;INTERVAL=3",
        "FREQ=WEEKLY;BYDAY=TU",
        "FREQ=WEEKLY;BYDAY=MO,FR",
        "FREQ=WEEKLY;INTERVAL=2;BYDAY=WE",
        "FREQ=MONTHLY;BYMONTHDAY=15",
        "FREQ=MONTHLY;BYMONTHDAY=-1",
        "FREQ=MONTHLY;BYDAY=3FR",
        "FREQ=MONTHLY;BYDAY=-1MO",
        "FREQ=MONTHLY;INTERVAL=2;BYMONTHDAY=1",
        "FREQ=YEARLY;BYMONTH=11;BYMONTHDAY=19",
        "FREQ=YEARLY;BYYEARDAY=100",
        "FREQ=YEARLY",
    ])
    def test_agrees_with_dateutil(self, rule):
        assert our_dates(rule) == dateutil_dates(rule)

    def test_roundtrip_expression_rrule_dates(self, registry):
        """expression -> RRULE -> dates == expression -> dates."""
        text = "[2]/DAYS:during:WEEKS"
        rule = expression_to_rrule(text)
        via_rrule = set(our_dates(rule))
        cal = registry.eval_expression(f"({text}) & 1993/YEARS")
        direct = {(d.year, d.month, d.day)
                  for d in calendar_to_dates(registry.system, cal)}
        assert direct <= via_rrule

    def test_third_friday_equals_paper_expirations(self, registry):
        """FREQ=MONTHLY;BYDAY=3FR over 1993 = the paper's 3rd Fridays."""
        cal = rrule_to_calendar(registry.system, "FREQ=MONTHLY;BYDAY=3FR",
                                "Jan 1 1993", "Dec 31 1993")
        dates = calendar_to_dates(registry.system, cal)
        assert (dates[10].month, dates[10].day) == (11, 19)  # Nov 19 1993


class TestRruleParsing:
    def test_rrule_prefix_allowed(self):
        cal = rrule_to_calendar(SYSTEM, "RRULE:FREQ=DAILY",
                                "Jan 1 1993", "Jan 3 1993")
        assert len(cal) == 3

    def test_bad_freq(self):
        with pytest.raises(CalendarError):
            rrule_to_calendar(SYSTEM, "FREQ=HOURLY", *WINDOW)

    def test_bad_byday(self):
        with pytest.raises(CalendarError):
            rrule_to_calendar(SYSTEM, "FREQ=WEEKLY;BYDAY=XX", *WINDOW)

    def test_malformed_component(self):
        with pytest.raises(CalendarError):
            rrule_to_calendar(SYSTEM, "FREQ=DAILY;NONSENSE", *WINDOW)

    def test_result_usable_as_catalog_values(self, registry):
        cal = rrule_to_calendar(registry.system, "FREQ=MONTHLY;BYDAY=3FR",
                                "Jan 1 1993", "Dec 31 1994")
        registry.define("RRULE_EXPIRATIONS", values=cal,
                        granularity="DAYS")
        t0 = registry.system.day_of("Nov 1 1993")
        nxt = registry.next_occurrence("RRULE_EXPIRATIONS", t0)
        assert str(registry.system.date_of(nxt)) == "Nov 19 1993"
