"""Unit tests for the business-day calendar."""

import pytest

from repro.core import CalendarError
from repro.finance import BusinessCalendar


@pytest.fixture()
def bc(registry):
    return BusinessCalendar(registry,
                            window=("Jan 1 1992", "Dec 31 1994"))


def day(registry, text):
    return registry.system.day_of(text)


class TestMembership:
    def test_weekday_is_business(self, registry, bc):
        assert bc.is_business_day(day(registry, "Nov 19 1993"))  # Friday

    def test_weekend_is_not(self, registry, bc):
        assert not bc.is_business_day(day(registry, "Nov 20 1993"))  # Sat

    def test_holiday_is_not(self, registry, bc):
        assert not bc.is_business_day(day(registry, "Nov 25 1993"))
        # Thanksgiving (4th Thursday)


class TestNavigation:
    def test_next_business_day(self, registry, bc):
        friday = day(registry, "Nov 19 1993")
        assert bc.next_business_day(friday) == \
            day(registry, "Nov 22 1993")  # Monday

    def test_next_over_thanksgiving(self, registry, bc):
        wed = day(registry, "Nov 24 1993")
        assert bc.next_business_day(wed) == day(registry, "Nov 26 1993")

    def test_previous_business_day(self, registry, bc):
        monday = day(registry, "Nov 22 1993")
        assert bc.previous_business_day(monday) == \
            day(registry, "Nov 19 1993")

    def test_add_business_days(self, registry, bc):
        start = day(registry, "Nov 22 1993")  # Monday
        assert bc.add_business_days(start, 4) == \
            day(registry, "Nov 29 1993")  # skips Thanksgiving + weekend

    def test_business_days_between(self, registry, bc):
        a = day(registry, "Nov 22 1993")
        b = day(registry, "Nov 30 1993")
        assert bc.business_days_between(a, b) == 6  # Thanksgiving skipped

    def test_exhausted_window_raises(self, registry, bc):
        far = day(registry, "Dec 31 1994")
        with pytest.raises(CalendarError):
            bc.add_business_days(far, 100)


class TestRollConventions:
    def test_business_day_unchanged(self, registry, bc):
        t = day(registry, "Nov 19 1993")
        assert bc.adjust(t, "following") == t
        assert bc.adjust(t, "preceding") == t

    def test_following(self, registry, bc):
        saturday = day(registry, "Nov 20 1993")
        assert bc.adjust(saturday, "following") == \
            day(registry, "Nov 22 1993")

    def test_preceding(self, registry, bc):
        saturday = day(registry, "Nov 20 1993")
        assert bc.adjust(saturday, "preceding") == \
            day(registry, "Nov 19 1993")

    def test_modified_following_rolls_back_at_month_end(self, registry,
                                                        bc):
        # Sat Jul 31 1993: following would cross into August.
        saturday = day(registry, "Jul 31 1993")
        assert bc.adjust(saturday, "modified_following") == \
            day(registry, "Jul 30 1993")

    def test_modified_following_normal_case(self, registry, bc):
        saturday = day(registry, "Nov 20 1993")
        assert bc.adjust(saturday, "modified_following") == \
            day(registry, "Nov 22 1993")

    def test_unknown_convention(self, registry, bc):
        with pytest.raises(CalendarError):
            bc.adjust(day(registry, "Nov 20 1993"), "sideways")


class TestCache:
    def test_redefinition_invalidates_automatically(self, registry, bc):
        t = day(registry, "Nov 19 1993")
        assert bc.is_business_day(t)
        from repro.core import Calendar
        old = registry.record("HOLIDAYS").values
        registry.define("HOLIDAYS", values=old + Calendar.point(t),
                        granularity="DAYS", replace=True)
        # define() bumps the registry version, so the cached flattening
        # is refreshed without an explicit invalidate() call.
        assert not bc.is_business_day(t)

    def test_explicit_invalidate_for_out_of_band_changes(self, registry,
                                                         bc):
        t = day(registry, "Nov 19 1993")
        assert bc.is_business_day(t)
        from repro.core import Calendar
        old = registry.record("HOLIDAYS").values
        # Mutate the catalog record directly, without going through
        # define(): no version bump, so the cache really is stale ...
        registry.record("HOLIDAYS").values = old + Calendar.point(t)
        assert bc.is_business_day(t)  # stale flattening still served
        # ... until invalidate() forces a refresh.
        bc.invalidate()
        assert not bc.is_business_day(t)
