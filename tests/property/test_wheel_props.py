"""Property-based parity: the timing wheel ≡ the legacy heap scheduler.

For random rule sets (random explicit calendars, probe periods and shard
counts), a wheel-scheduled daemon must fire exactly the same (rule, tick)
sequence as a heap-scheduled one.  Order *within* one tick is normalised
— both schedulers are deterministic, but the contract is per-tick set
equality plus cross-tick ordering, and that is what downstream rule
semantics depend on.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import CalendarRegistry
from repro.core import CalendarSystem
from repro.db import Database
from repro.rules import DBCron, HeapSchedule, RuleManager, SimulatedClock
from repro.rules.wheel import WheelSchedule

rule_schedules = st.lists(
    st.lists(st.integers(min_value=5, max_value=400),
             min_size=1, max_size=10, unique=True),
    min_size=1, max_size=5)
periods = st.integers(min_value=1, max_value=40)
shard_counts = st.integers(min_value=1, max_value=5)


def run_daemon(schedules, period, scheduler, shards=None):
    """Fire a rule set to completion; [(tick, {rules fired at tick})]."""
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    manager = RuleManager(db)
    clock = SimulatedClock(now=1)
    cron = DBCron(manager, clock, period=period, scheduler=scheduler,
                  shards=shards)
    fired: list[tuple[int, str]] = []
    for i, days in enumerate(schedules):
        registry.define(f"S{i}", values=[(d, d) for d in sorted(days)],
                        granularity="DAYS")
        manager.declare_temporal(
            f"rule{i}", expression=f"S{i}",
            callback=(lambda n: lambda d, t: fired.append((t, n)))(
                f"rule{i}"), after=1)
    cron.run_until(450)
    # Normalise within-tick order: per-tick sets, cross-tick sequence.
    waves: list[tuple[int, set]] = []
    for tick, name in fired:
        if waves and waves[-1][0] == tick:
            waves[-1][1].add(name)
        else:
            waves.append((tick, {name}))
    return waves


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rule_schedules, periods, shard_counts)
def test_wheel_fires_identically_to_heap(schedules, period, shards):
    heap_waves = run_daemon(schedules, period, "heap")
    wheel_waves = run_daemon(schedules, period, "wheel", shards=shards)
    assert wheel_waves == heap_waves, \
        f"period={period} shards={shards}: " \
        f"wheel {wheel_waves} != heap {heap_waves}"


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.text(alphabet="abcdef", min_size=1,
                                  max_size=6),
                          st.integers(min_value=2, max_value=200)),
                min_size=1, max_size=30),
       shard_counts)
def test_schedule_pop_parity_on_raw_arms(arms, shards):
    """The bare strategy objects agree, whatever the arm stream."""
    heap, wheel = HeapSchedule(), WheelSchedule(1, shards=shards,
                                                slots=(4, 4, 4))
    for name, tick in arms:
        assert heap.schedule(name, tick) == wheel.schedule(name, tick)
    assert len(heap) == len(wheel)

    def waves(sched):
        out = []
        while True:
            wave = sched.pop_wave(500)
            if not wave:
                return out
            out.append((wave[0][0], {name for _, name, _ in wave}))

    assert waves(wheel) == waves(heap)
