"""The calendar expression language: lexer, parser, factorizer, planner.

Pipeline (section 3.3-3.4 of the paper)::

    source text --tokenize--> tokens --parse--> AST
        --expand/factorize--> optimized AST
        --compile--> evaluation Plan
        --optimize--> rewritten Plan --PlanVM--> Calendar

plus the direct :class:`~repro.lang.interpreter.Interpreter`, which is the
reference semantics for scripts (assignments, if, while, return).
"""

from repro.lang import ast
from repro.lang.ast import count_nodes, expression_text, render_tree
from repro.lang.defs import (
    BasicDef,
    DerivedDef,
    ExplicitDef,
    basic_resolver,
    chain_resolvers,
)
from repro.lang.errors import (
    EvaluationError,
    LanguageError,
    LexError,
    LoopLimitError,
    NameResolutionError,
    ParseError,
    PlanError,
)
from repro.lang.factorizer import (
    FactorizationResult,
    base_calendar_of,
    expand,
    factorize,
    granularity_of,
)
from repro.lang.interpreter import EvalContext, Interpreter, infer_unit
from repro.lang.lexer import tokenize
from repro.lang.optimizer import OptimizationResult, optimize_plan
from repro.lang.parser import Parser, parse_expression, parse_script
from repro.lang.plan import Plan, PlanVM
from repro.lang.planner import Planner, compile_expression

__all__ = [
    "ast", "tokenize", "Parser", "parse_expression", "parse_script",
    "factorize", "expand", "granularity_of", "base_calendar_of",
    "FactorizationResult", "render_tree", "count_nodes", "expression_text",
    "EvalContext", "Interpreter", "infer_unit",
    "Plan", "PlanVM", "Planner", "compile_expression",
    "OptimizationResult", "optimize_plan",
    "BasicDef", "DerivedDef", "ExplicitDef", "basic_resolver",
    "chain_resolvers",
    "LanguageError", "LexError", "ParseError", "NameResolutionError",
    "EvaluationError", "PlanError", "LoopLimitError",
]
