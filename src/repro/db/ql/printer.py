"""Rendering Postquel statements back to parseable text.

Used by the persistence layer (rules are stored as statement text) and by
diagnostics.  ``parse_statement(render_statement(s)) == s`` for every DML
statement — pinned by tests.
"""

from __future__ import annotations

from repro.db.errors import QueryError
from repro.db.ql.ast import (
    Append,
    Delete,
    QlExpr,
    Replace,
    Retrieve,
    Statement,
    Target,
)

__all__ = ["render_statement", "render_expression"]


def render_expression(expr: QlExpr) -> str:
    """Parseable text of a query-language expression."""
    return str(expr)


def _render_target(target: Target) -> str:
    text = str(target.expr)
    if target.alias:
        text += f" as {target.alias}"
    return text


def _render_range_var(rv) -> str:
    text = f"{rv.var} in {rv.relation}"
    if rv.as_of is not None:
        text += f" as of {rv.as_of}"
    return text


def _render_from(range_vars) -> str:
    if not range_vars:
        return ""
    return " from " + ", ".join(_render_range_var(rv)
                                for rv in range_vars)


def _render_where(where) -> str:
    return f" where {where}" if where is not None else ""


def _render_assignments(assignments) -> str:
    return "(" + ", ".join(f"{col} = {expr}"
                           for col, expr in assignments) + ")"


def render_statement(statement: Statement) -> str:
    """Render a DML statement as parseable Postquel text."""
    if isinstance(statement, Retrieve):
        text = "retrieve"
        if statement.unique:
            text += " unique"
        if statement.into:
            text += f" into {statement.into}"
        text += " (" + ", ".join(_render_target(t)
                                 for t in statement.targets) + ")"
        text += _render_from(statement.range_vars)
        text += _render_where(statement.where)
        if statement.on_calendar:
            text += f' on "{statement.on_calendar}"'
        if statement.order_by:
            keys = ", ".join(
                f"{expr}" + ("" if ascending else " desc")
                for expr, ascending in statement.order_by)
            text += f" order by {keys}"
        return text
    if isinstance(statement, Append):
        return (f"append {statement.relation} "
                f"{_render_assignments(statement.assignments)}")
    if isinstance(statement, Replace):
        return (f"replace {statement.var} "
                f"{_render_assignments(statement.assignments)}"
                f"{_render_from(statement.range_vars)}"
                f"{_render_where(statement.where)}")
    if isinstance(statement, Delete):
        return (f"delete {statement.var}"
                f"{_render_from(statement.range_vars)}"
                f"{_render_where(statement.where)}")
    raise QueryError(f"cannot render statement {statement!r}")
