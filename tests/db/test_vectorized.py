"""Unit tests for the vectorized retrieve pipeline (REPRO_VECTOR_DB).

Covers the batch kernels' empty/single-row edges, plan classification
and fallback reasons, EXPLAIN strategy reporting, the labelled
``db.join.strategy`` / ``db.batch.rows`` metrics, batch index
maintenance (``insert_many`` / ``insert_batch``) and NULL semantics.
"""

import pytest

from repro.core.columnar import batch_membership, interval_join_pairs
from repro.db import Database, ExecutionError
from repro.db import vector
from repro.db.index import IntervalIndex, OrderedIndex
from repro.db.ql.parser import parse_statement


@pytest.fixture()
def gate_on():
    previous = vector.set_enabled(True)
    yield
    vector.set_enabled(previous)


@pytest.fixture()
def joined(db, gate_on):
    db.create_table("emp", [("name", "text"), ("dept", "int4"),
                            ("lo", "abstime"), ("hi", "abstime")],
                    valid_time_column="lo")
    db.create_table("dept", [("id", "int4"), ("site", "text")])
    rows = [("a", 1, 5, 9), ("b", 2, 8, 12), ("c", 1, 20, 25),
            ("d", 3, 11, 11), ("e", None, 30, 31)]
    for name, dept, lo, hi in rows:
        db.insert("emp", name=name, dept=dept, lo=lo, hi=hi)
    for i, site in ((1, "x"), (2, "y"), (4, "z")):
        db.insert("dept", id=i, site=site)
    return db


def both_engines(db, query, bindings=None):
    """(vectorized rows, row-at-a-time rows) for one query."""
    vec = db.execute(query, bindings).rows
    previous = vector.set_enabled(False)
    try:
        row = db.execute(query, bindings).rows
    finally:
        vector.set_enabled(previous)
    return vec, row


class TestKernelEdges:
    def test_batch_membership_empty_values(self):
        assert batch_membership([1, 5], [3, 9], []) == []

    def test_batch_membership_empty_lanes(self):
        assert batch_membership([], [], [1, 2, 3]) == [False] * 3

    def test_batch_membership_single(self):
        assert batch_membership([5], [9], [4, 5, 9, 10]) == \
            [False, True, True, False]

    def test_batch_membership_zero_never_member(self):
        assert batch_membership([-3], [3], [0]) == [False]

    def test_interval_join_empty_sides(self):
        assert interval_join_pairs([], [], [], []) == []
        assert interval_join_pairs([1], [2], [], []) == []
        assert interval_join_pairs([], [], [1], [2]) == []

    def test_interval_join_single_pair(self):
        assert interval_join_pairs([1], [5], [4], [9]) == [(0, 1 - 1)]

    def test_interval_join_overlaps_matches_scalar(self):
        a = [(1, 4), (2, 2), (6, 9)]
        b = [(0, 1), (3, 7), (9, 12)]
        got = set(interval_join_pairs([x[0] for x in a],
                                      [x[1] for x in a],
                                      [x[0] for x in b],
                                      [x[1] for x in b]))
        want = {(i, j) for i, (alo, ahi) in enumerate(a)
                for j, (blo, bhi) in enumerate(b)
                if alo <= bhi and blo <= ahi}
        assert got == want

    def test_interval_join_during_subset_of_overlaps(self):
        # Inputs must be lo-sorted (the executor argsorts its lanes).
        a = sorted([(2, 3), (1, 9), (5, 5)])
        b = sorted([(1, 4), (5, 6), (0, 10)])
        got = set(interval_join_pairs([x[0] for x in a],
                                      [x[1] for x in a],
                                      [x[0] for x in b],
                                      [x[1] for x in b],
                                      predicate="during"))
        want = {(i, j) for i, (alo, ahi) in enumerate(a)
                for j, (blo, bhi) in enumerate(b)
                if alo >= blo and ahi <= bhi}
        assert got == want

    def test_interval_join_unknown_predicate(self):
        with pytest.raises(ValueError):
            interval_join_pairs([1], [2], [1], [2], predicate="meets")

    def test_contains_batch_matches_contains(self, registry):
        cal = registry.evaluate("MONDAYS")
        index = IntervalIndex(cal)
        points = sorted({1, 2, 7, 8, 30, 365})
        assert index.contains_batch(points) == \
            [index.contains(p) for p in points]


class TestBatchIndexMaintenance:
    def test_insert_batch_matches_incremental(self):
        a, b = OrderedIndex("k"), OrderedIndex("k")
        rows = [{"k": v, "_tid": i} for i, v in
                enumerate([5, 1, 9, 1, None, 3])]
        for row in rows:
            a.insert(row)
        b.insert_batch(rows)
        assert a.items() == b.items()

    def test_insert_batch_merges_into_existing(self):
        index = OrderedIndex("k")
        index.insert_batch([{"k": v, "_tid": i}
                            for i, v in enumerate([4, 8])])
        index.insert_batch([{"k": v, "_tid": 10 + i}
                            for i, v in enumerate([1, 6, 9])])
        keys, tids = index.items()
        assert keys == [1, 4, 6, 8, 9]
        assert len(tids) == 5

    def test_insert_batch_empty(self):
        index = OrderedIndex("k")
        index.insert_batch([])
        assert len(index) == 0

    def test_insert_many_feeds_indexes_and_key_map(self, db):
        db.create_table("t", [("k", "int4"), ("v", "text")],
                        key=("k",))
        db.create_index("t", "k")
        relation = db.relation("t")
        relation.insert_many([{"k": i, "v": f"r{i}"}
                              for i in (3, 1, 2)])
        assert relation.indexes["k"].lookup_eq(2) != []
        from repro.db.errors import IntegrityError
        with pytest.raises(IntegrityError):
            relation.insert_many([{"k": 9, "v": "x"},
                                  {"k": 9, "v": "y"}])
        # The bad batch must not have half-applied.
        assert len(relation) == 3

    def test_insert_many_bumps_data_version_once(self, db):
        db.create_table("t", [("k", "int4")])
        relation = db.relation("t")
        before = relation.data_version
        relation.insert_many([{"k": 1}, {"k": 2}])
        assert relation.data_version == before + 1


class TestPlanClassification:
    def _plan(self, db, query, extra=()):
        return vector.plan_retrieve(parse_statement(query), db,
                                    set(extra))

    def test_gate_off_reason(self, joined):
        previous = vector.set_enabled(False)
        try:
            plan, reason = self._plan(
                joined, "retrieve (e.name) from e in emp")
        finally:
            vector.set_enabled(previous)
        assert plan is None and reason == "REPRO_VECTOR_DB=0"

    def test_as_of_reason(self, joined):
        plan, reason = self._plan(
            joined, "retrieve (e.name) from e in emp as of 3")
        assert plan is None
        assert "as of" in reason and "sequential" in reason

    def test_unbound_variable_reason(self, joined):
        plan, reason = self._plan(
            joined, "retrieve (e.name) from e in emp where e.dept = lim")
        assert plan is None and "unbound variable" in reason
        plan, _ = self._plan(
            joined, "retrieve (e.name) from e in emp where e.dept = lim",
            extra={"lim"})
        assert plan is not None

    def test_cross_variable_arithmetic_rejected(self, joined):
        plan, reason = self._plan(
            joined, "retrieve (e.name) from e in emp, d in dept "
                    "where e.dept = d.id + 1")
        assert plan is None and "non-vectorizable" in reason

    def test_overridden_operator_rejected(self, joined):
        joined.operators.register("=", "int4", "int4",
                                  lambda a, b: a == b)
        plan, _ = self._plan(
            joined, "retrieve (e.name) from e in emp, d in dept "
                    "where e.dept = d.id")
        assert plan is None

    def test_redefined_sweep_function_rejected(self, joined):
        joined.functions.register("overlaps",
                                  lambda a, b, c, d: True, replace=True)
        plan, reason = self._plan(
            joined, "retrieve (e.name) from e in emp, d in emp "
                    "where overlaps(e.lo, e.hi, d.lo, d.hi)")
        assert plan is None and "non-vectorizable" in reason

    def test_classified_buckets(self, joined):
        plan, _ = self._plan(
            joined, "retrieve (e.name) from e in emp, d in dept "
                    "where e.dept = d.id and e.lo > 4 and "
                    'e.lo within "MONDAYS"')
        assert plan is not None
        filters = plan.filters_of("e")
        assert isinstance(filters[0], vector.ScalarFilter)
        assert isinstance(filters[1], vector.WithinFilter)
        assert len(plan.edges) == 1
        assert isinstance(plan.edges[0], vector.EquiEdge)


class TestEngineParity:
    def test_equi_join_with_nulls(self, joined):
        # emp "e" has dept None; dept has no None id — None never joins
        # a non-None, and a None = None pair must join in both engines.
        joined.insert("dept", id=None, site="limbo")
        vec, row = both_engines(
            joined, "retrieve (e.name, d.site) from e in emp, d in dept "
                    "where e.dept = d.id")
        assert sorted(map(repr, vec)) == sorted(map(repr, row))
        assert {r["name"] for r in vec} >= {"e"}  # the None = None pair

    def test_merge_join_requires_full_coverage(self, joined):
        joined.create_index("emp", "dept")
        joined.create_index("dept", "id")
        # emp.dept holds a None → index does not cover every live row →
        # explain must NOT claim a merge join (None = None would be
        # missed); the hash join keeps parity.
        plan = joined.explain("retrieve (e.name) from e in emp, "
                              "d in dept where e.dept = d.id")
        assert "hash join" in plan and "merge join" not in plan
        vec, row = both_engines(
            joined, "retrieve (e.name, d.site) from e in emp, d in dept "
                    "where e.dept = d.id")
        assert sorted(map(repr, vec)) == sorted(map(repr, row))

    def test_merge_join_used_and_agrees(self, db, gate_on):
        db.create_table("l", [("k", "int4")])
        db.create_table("r", [("k", "int4")])
        for k in (1, 2, 2, 5):
            db.insert("l", k=k)
        for k in (2, 2, 3, 5):
            db.insert("r", k=k)
        db.create_index("l", "k")
        db.create_index("r", "k")
        q = "retrieve (a.k) from a in l, b in r where a.k = b.k"
        assert "merge join" in db.explain(q)
        vec, row = both_engines(db, q)
        assert sorted(map(repr, vec)) == sorted(map(repr, row))
        assert len(vec) == 5  # 2x2 on k=2, 1 on k=5

    def test_interval_sweep_parity_with_inverted_and_null(self, joined):
        # An inverted interval (lo > hi) and a NULL endpoint take the
        # scalar escape path; results must still match the row engine.
        joined.insert("emp", name="inv", dept=7, lo=40, hi=2)
        joined.insert("emp", name="nul", dept=7, lo=None, hi=50)
        for pred in ("overlaps", "during"):
            vec, row = both_engines(
                joined, f"retrieve (a.name, b.name) from a in emp, "
                        f"b in emp where {pred}(a.lo, a.hi, b.lo, b.hi)")
            assert sorted(map(repr, vec)) == sorted(map(repr, row))

    def test_within_parity_and_none_raises(self, joined):
        vec, row = both_engines(
            joined, 'retrieve (e.name) from e in emp '
                    'where e.lo within "MONDAYS"')
        assert sorted(map(repr, vec)) == sorted(map(repr, row))
        joined.insert("emp", name="null-lo", dept=9, lo=None, hi=4)
        with pytest.raises(ExecutionError, match="abstime tick"):
            joined.execute('retrieve (e.name) from e in emp '
                           'where e.lo within "MONDAYS"')

    def test_on_calendar_parity(self, joined):
        vec, row = both_engines(
            joined, "retrieve (e.name) from e in emp on MONDAYS")
        assert sorted(map(repr, vec)) == sorted(map(repr, row))

    def test_empty_relation(self, joined):
        joined.create_table("void", [("k", "int4")])
        vec, row = both_engines(
            joined, "retrieve (v.k) from v in void where v.k = 1")
        assert vec == row == []

    def test_single_row_relation(self, joined):
        joined.create_table("one", [("k", "abstime")])
        monday = joined.system.day_of("Feb 1 1993")
        joined.insert("one", k=monday)
        vec, row = both_engines(
            joined, 'retrieve (o.k) from o in one '
                    'where o.k within "MONDAYS"')
        assert vec == row and len(vec) == 1

    def test_retrieve_events_still_fire(self, joined):
        seen = []
        joined.relation("emp").hooks["retrieve"].append(
            lambda event: seen.append(event.current["name"]))
        joined.execute("retrieve (e.name) from e in emp "
                       "where e.dept = 1")
        assert sorted(seen) == ["a", "c"]

    def test_count_fast_path_matches(self, joined):
        vec, row = both_engines(
            joined, "retrieve (count() as n) from e in emp, d in dept "
                    "where e.dept = d.id")
        assert vec == row

    def test_order_by_identical_order(self, joined):
        vec, row = both_engines(
            joined, "retrieve (e.name, d.site) from e in emp, "
                    "d in dept where e.dept = d.id order by name")
        assert vec == row


class TestExplainStrategies:
    def test_strategies_reported(self, joined):
        plan = joined.explain(
            "retrieve (a.name, b.name) from a in emp, b in emp "
            "where overlaps(a.lo, a.hi, b.lo, b.hi) and a.dept = 1 "
            'and a.lo within "MONDAYS"')
        assert "vectorized pipeline" in plan
        assert "endpoint sweep" in plan
        assert "batched calendar sweep" in plan
        assert "sequential fallback" in plan

    def test_as_of_fallback_noted(self, joined):
        plan = joined.explain(
            "retrieve (e.name) from e in emp as of 3")
        assert "vectorized: off" in plan
        assert "as of historical scan" in plan

    def test_gate_off_noted(self, joined):
        previous = vector.set_enabled(False)
        try:
            plan = joined.explain("retrieve (e.name) from e in emp")
        finally:
            vector.set_enabled(previous)
        assert "vectorized: off (REPRO_VECTOR_DB=0)" in plan


class TestMetrics:
    def test_join_strategy_counter_and_batch_histogram(self, joined):
        joined.execute("retrieve (e.name, d.site) from e in emp, "
                       "d in dept where e.dept = d.id and e.lo > 4")
        snapshot = joined.instrumentation.metrics.snapshot()
        assert snapshot[
            'db.join.strategy{strategy="hash join"}'] >= 1
        assert snapshot[
            'db.join.strategy{strategy="sequential fallback"}'] >= 1
        assert snapshot["db.batch.rows"]["count"] >= 2

    def test_calendar_sweep_counted(self, joined):
        joined.execute('retrieve (e.name) from e in emp '
                       'where e.lo within "MONDAYS"')
        snapshot = joined.instrumentation.metrics.snapshot()
        assert snapshot[
            'db.join.strategy{strategy="batched calendar sweep"}'] >= 1
