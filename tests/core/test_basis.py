"""Unit tests for CalendarSystem.generate and basic calendars."""

import pytest

from repro.core import (
    CalendarSystem,
    ChronologyError,
    Granularity,
    GranularityError,
)


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


@pytest.fixture(scope="module")
def sys93():
    return CalendarSystem.starting("Jan 1 1993")


class TestGenerateYearsInDays:
    def test_paper_example_exact(self, sys87):
        """The section 3.2 worked example, verbatim."""
        years = sys87.generate("YEARS", "DAYS",
                               ("Jan 1 1987", "Jan 3 1992"))
        assert years.to_pairs() == (
            (1, 365), (366, 731), (732, 1096),
            (1097, 1461), (1462, 1826), (1827, 1829))

    def test_labels_are_year_numbers(self, sys87):
        years = sys87.generate("YEARS", "DAYS",
                               ("Jan 1 1987", "Jan 3 1992"))
        assert years.labels == (1987, 1988, 1989, 1990, 1991, 1992)

    def test_cover_mode_keeps_whole_years(self, sys87):
        years = sys87.generate("YEARS", "DAYS",
                               ("Jan 1 1987", "Jan 3 1992"), mode="cover")
        assert years.to_pairs()[-1] == (1827, 2192)  # all of leap 1992

    def test_window_before_epoch(self, sys87):
        years = sys87.generate("YEARS", "DAYS",
                               ("Jan 1 1986", "Dec 31 1986"))
        assert years.to_pairs() == ((-365, -1),)

    def test_granularity_attribute(self, sys87):
        years = sys87.generate("YEARS", "DAYS", ("Jan 1 1987",
                                                 "Dec 31 1987"))
        assert years.granularity == Granularity.YEARS


class TestGenerateWeeks:
    def test_weeks_1993_match_paper(self, sys93):
        weeks = sys93.weeks("Jan 1 1993", "Dec 31 1993")
        assert weeks.to_pairs()[:7] == (
            (-4, 3), (4, 10), (11, 17), (18, 24), (25, 31),
            (32, 38), (39, 45))

    def test_weeks_are_monday_aligned(self, sys93):
        weeks = sys93.weeks("Jan 1 1993", "Dec 31 1993")
        for iv in weeks.elements:
            assert sys93.epoch.weekday_of(iv.lo) == 1
            assert sys93.epoch.weekday_of(iv.hi) == 7

    def test_weeks_clip_mode(self, sys93):
        weeks = sys93.generate("WEEKS", "DAYS",
                               ("Jan 1 1993", "Jan 31 1993"), mode="clip")
        assert weeks.to_pairs()[0] == (1, 3)


class TestGenerateMonths:
    def test_months_1993(self, sys93):
        months = sys93.months("Jan 1 1993", "Dec 31 1993")
        assert months.to_pairs()[:4] == (
            (1, 31), (32, 59), (60, 90), (91, 120))
        assert len(months) == 12

    def test_month_labels(self, sys93):
        months = sys93.months("Jan 1 1993", "Mar 31 1993")
        assert months.labels == (1, 2, 3)

    def test_leap_february(self, sys87):
        months = sys87.months("Jan 1 1988", "Dec 31 1988")
        feb = months.elements[1]
        assert len(feb) == 29


class TestGenerateDays:
    def test_days_labelled_with_day_of_month(self, sys93):
        days = sys93.days("Jan 30 1993", "Feb 2 1993")
        assert days.labels == (30, 31, 1, 2)

    def test_day_window_skips_zero(self, sys93):
        days = sys93.days(-2, 2)
        assert days.to_pairs() == ((-2, -2), (-1, -1), (1, 1), (2, 2))


class TestGenerateSubDay:
    def test_hours_of_one_day(self, sys87):
        hours = sys87.generate("HOURS", "HOURS",
                               ("Jan 1 1987", "Jan 1 1987"))
        assert hours.to_pairs() == tuple((h, h) for h in range(1, 25))

    def test_days_in_hours(self, sys87):
        days = sys87.generate("DAYS", "HOURS",
                              ("Jan 1 1987", "Jan 2 1987"))
        assert days.to_pairs() == ((1, 24), (25, 48))

    def test_days_in_minutes(self, sys87):
        days = sys87.generate("DAYS", "MINUTES",
                              ("Jan 1 1987", "Jan 1 1987"))
        assert days.to_pairs() == ((1, 1440),)

    def test_weeks_in_days_only(self, sys87):
        with pytest.raises(GranularityError):
            sys87.generate("MONTHS", "WEEKS",
                           ("Jan 1 1987", "Dec 31 1987"))


class TestGenerateMonthYearUnits:
    def test_years_in_months(self, sys87):
        years = sys87.generate("YEARS", "MONTHS",
                               ("Jan 1 1987", "Dec 31 1988"))
        assert years.to_pairs() == ((1, 12), (13, 24))

    def test_months_in_months(self, sys87):
        months = sys87.generate("MONTHS", "MONTHS",
                                ("Jan 1 1987", "Mar 31 1987"))
        assert months.to_pairs() == ((1, 1), (2, 2), (3, 3))

    def test_decades_in_years(self, sys87):
        decades = sys87.generate("DECADES", "YEARS",
                                 ("Jan 1 1987", "Dec 31 1999"))
        # Clip mode truncates the 1980s decade at the window start.
        assert decades.to_pairs() == ((1, 3), (4, 13))
        cover = sys87.generate("DECADES", "YEARS",
                               ("Jan 1 1987", "Dec 31 1999"), mode="cover")
        # Cover mode keeps the whole 1980s: year ticks -7 (1980) .. 3 (1989).
        assert cover.to_pairs() == ((-7, 3), (4, 13))

    def test_requires_aligned_epoch(self):
        misaligned = CalendarSystem.starting("Jan 15 1987")
        with pytest.raises(GranularityError):
            misaligned.generate("YEARS", "MONTHS",
                                ("Jan 1 1987", "Dec 31 1987"))

    def test_century_in_years(self, sys87):
        century = sys87.generate("CENTURY", "YEARS",
                                 ("Jan 1 1987", "Dec 31 1987"),
                                 mode="cover")
        # The 1900s century: 1900..1999 -> year ticks -87..13.
        assert century.to_pairs() == ((-87, 13),)


class TestGenerateValidation:
    def test_coarser_unit_rejected(self, sys87):
        with pytest.raises(GranularityError):
            sys87.generate("DAYS", "MONTHS", ("Jan 1 1987", "Dec 31 1987"))

    def test_unknown_mode_rejected(self, sys87):
        with pytest.raises(GranularityError):
            sys87.generate("DAYS", "DAYS", (1, 5), mode="middle")

    def test_inverted_window_rejected(self, sys87):
        with pytest.raises(ChronologyError):
            sys87.days("Feb 1 1987", "Jan 1 1987")

    def test_unknown_calendar_name(self, sys87):
        with pytest.raises(GranularityError):
            sys87.generate("FORTNIGHTS", "DAYS", (1, 20))


class TestTickAxes:
    def test_month_ticks(self, sys87):
        assert sys87.month_tick(1987, 1) == 1
        assert sys87.month_tick(1987, 12) == 12
        assert sys87.month_tick(1988, 1) == 13
        assert sys87.month_tick(1986, 12) == -1

    def test_month_of_tick_roundtrip(self, sys87):
        for tick in (-13, -1, 1, 7, 25):
            year, month = sys87.month_of_tick(tick)
            assert sys87.month_tick(year, month) == tick

    def test_year_ticks(self, sys87):
        assert sys87.year_tick(1987) == 1
        assert sys87.year_tick(1986) == -1
        assert sys87.year_of_tick(-1) == 1986

    def test_no_tick_zero(self, sys87):
        with pytest.raises(ChronologyError):
            sys87.month_of_tick(0)
        with pytest.raises(ChronologyError):
            sys87.year_of_tick(0)
