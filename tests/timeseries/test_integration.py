"""Series patterns inside calendar expressions and temporal rules (§6a)."""

import pytest

from repro.core import Calendar, CalendarError
from repro.db import Database
from repro.rules import DBCron, RuleManager, SimulatedClock
from repro.timeseries import (
    RegularTimeSeries,
    drop_series,
    register_series,
    registered_series,
)


@pytest.fixture()
def priced_registry(registry):
    base = registry.system.day_of("Jan 4 1993")
    days = Calendar.from_intervals([(base + i, base + i)
                                    for i in range(10)])
    close = RegularTimeSeries(
        days, [100, 102, 101, 105, 107, 107, 103, 104, 108, 106],
        name="close")
    register_series(registry, close)
    return registry, base


class TestPatternFunction:
    def test_pattern_in_expression(self, priced_registry):
        registry, base = priced_registry
        cal = registry.eval_expression(
            'pattern("close", "s(t) < s(t+1)")')
        assert cal.to_pairs() == tuple(
            (base + i, base + i) for i in (0, 2, 3, 6, 7))

    def test_composes_with_algebra(self, priced_registry):
        registry, base = priced_registry
        cal = registry.eval_expression(
            'pattern("close", "s(t) < s(t+1)") & '
            'flatten([1-5]/DAYS:during:WEEKS)')
        # Jan 4 1993 (base) is a Monday; the base+6 increase falls on a
        # Sunday and is filtered out by the weekday intersection.
        assert {iv.lo for iv in cal.elements} == \
            {base, base + 2, base + 3, base + 7}

    def test_unknown_series(self, priced_registry):
        registry, _ = priced_registry
        with pytest.raises(CalendarError):
            registry.eval_expression('pattern("mystery", "s(t) > 1")')

    def test_bad_arity(self, priced_registry):
        registry, _ = priced_registry
        with pytest.raises(CalendarError):
            registry.eval_expression('pattern("close")')

    def test_registered_and_drop(self, priced_registry):
        registry, _ = priced_registry
        assert registered_series(registry) == ["close"]
        drop_series(registry, "CLOSE")
        assert registered_series(registry) == []
        with pytest.raises(CalendarError):
            drop_series(registry, "close")

    def test_reregistration_invalidates_cache(self, priced_registry):
        registry, base = priced_registry
        first = registry.eval_expression(
            'pattern("close", "s(t) < s(t+1)")')
        days = Calendar.from_intervals([(base, base), (base + 1,
                                                       base + 1)])
        register_series(
            registry, RegularTimeSeries(days, [5, 1], name="close"))
        second = registry.eval_expression(
            'pattern("close", "s(t) < s(t+1)")')
        assert first.to_pairs() != second.to_pairs()
        assert second.is_empty()


class TestDataTriggeredRules:
    def test_temporal_rule_on_pattern(self, priced_registry):
        registry, base = priced_registry
        db = Database(calendars=registry)
        manager = RuleManager(db)
        clock = SimulatedClock(now=base - 1)
        cron = DBCron(manager, clock, period=2)
        fired = []
        manager.define_temporal_rule(
            "uptick", 'pattern("close", "s(t) < s(t+1)")',
            callback=lambda d, t: fired.append(t), after=clock.now)
        cron.run_until(base + 12)
        assert fired == [base, base + 2, base + 3, base + 6, base + 7]

    def test_rule_catalog_stores_pattern_expression(self, priced_registry):
        registry, base = priced_registry
        db = Database(calendars=registry)
        manager = RuleManager(db)
        manager.define_temporal_rule(
            "uptick", 'pattern("close", "s(t) < s(t+1)")',
            callback=lambda d, t: None, after=base - 1)
        rows = db.execute(
            "retrieve (r.expression) from r in rule_info")
        assert 'pattern("close"' in rows.rows[0]["expression"]
