"""Unit tests for the calendar-expression-language parser."""

import pytest

from repro.core.algebra import LAST
from repro.lang import ParseError, parse_expression, parse_script
from repro.lang.ast import (
    Assign,
    ForEach,
    FunCall,
    If,
    IntervalLit,
    LabelSelect,
    Name,
    Return,
    Select,
    SetOp,
    StringLit,
    Today,
    While,
)


class TestExpressions:
    def test_name(self):
        assert parse_expression("WEEKS") == Name("WEEKS")

    def test_strict_foreach(self):
        expr = parse_expression("WEEKS:during:Jan-1993")
        assert expr == ForEach(Name("WEEKS"), "during", Name("Jan-1993"),
                               strict=True)

    def test_relaxed_foreach(self):
        expr = parse_expression("WEEKS.overlaps.Jan-1993")
        assert expr.strict is False
        assert expr.op == "overlaps"

    def test_chain_is_right_associative(self):
        expr = parse_expression("A:during:B:during:C")
        assert isinstance(expr, ForEach)
        assert expr.left == Name("A")
        assert isinstance(expr.right, ForEach)

    def test_selection_binds_over_whole_chain(self):
        expr = parse_expression("[3]/WEEKS:overlaps:Jan-1993")
        assert isinstance(expr, Select)
        assert isinstance(expr.child, ForEach)

    def test_selection_in_right_operand(self):
        expr = parse_expression("WEEKS:during:[1]/MONTHS:during:YEARS")
        assert isinstance(expr.right, Select)

    def test_nested_selection_prefixes(self):
        expr = parse_expression("[1]/[2]/WEEKS")
        assert isinstance(expr, Select)
        assert isinstance(expr.child, Select)

    def test_label_select(self):
        expr = parse_expression("1993/YEARS")
        assert expr == LabelSelect(1993, Name("YEARS"))

    def test_label_select_in_chain(self):
        expr = parse_expression("MONTHS:during:1993/YEARS")
        assert isinstance(expr.right, LabelSelect)

    def test_listop_symbols(self):
        assert parse_expression("A:<:B").op == "<"
        assert parse_expression("A:<=:B").op == "<="

    def test_listop_name_lowered(self):
        assert parse_expression("A:DURING:B").op == "during"

    def test_setops(self):
        expr = parse_expression("A - B + C")
        assert isinstance(expr, SetOp) and expr.op == "+"
        assert isinstance(expr.left, SetOp) and expr.left.op == "-"

    def test_intersection_setop(self):
        assert parse_expression("A & B").op == "&"

    def test_setop_binds_looser_than_foreach(self):
        expr = parse_expression("A:during:B - C")
        assert isinstance(expr, SetOp)
        assert isinstance(expr.left, ForEach)

    def test_parentheses(self):
        expr = parse_expression("(A - B):during:C")
        assert isinstance(expr, ForEach)
        assert isinstance(expr.left, SetOp)

    def test_today(self):
        assert parse_expression("today") == Today()
        assert parse_expression("TODAY") == Today()

    def test_interval_literal(self):
        assert parse_expression("interval(5, 9)") == IntervalLit(5, 9)

    def test_interval_literal_arity_checked(self):
        with pytest.raises(ParseError):
            parse_expression("interval(5)")

    def test_funcall_generate(self):
        expr = parse_expression(
            'generate(YEARS, DAYS, "Jan 1 1987", "Jan 3 1992")')
        assert isinstance(expr, FunCall)
        assert expr.name == "generate"
        assert expr.args[0] == Name("YEARS")
        assert expr.args[2] == StringLit("Jan 1 1987")

    def test_funcall_caloperate_star_and_semicolons(self):
        expr = parse_expression("caloperate(MONTHS, *; 3)")
        assert expr.args[1] == "*"
        assert expr.args[2].value == 3

    def test_funcall_negative_number_arg(self):
        expr = parse_expression("caloperate(MONTHS, *, -3)")
        assert expr.args[2].value == -3


class TestSelectionPredicates:
    def test_last(self):
        expr = parse_expression("[n]/DAYS")
        assert expr.predicate.items == (LAST,)

    def test_negative(self):
        expr = parse_expression("[-7]/DAYS")
        assert expr.predicate.items == (-7,)

    def test_list(self):
        expr = parse_expression("[1;3;5]/DAYS")
        assert expr.predicate.items == (1, 3, 5)

    def test_comma_separated(self):
        expr = parse_expression("[1,3]/DAYS")
        assert expr.predicate.items == (1, 3)

    def test_range(self):
        expr = parse_expression("[2-4]/DAYS")
        assert expr.predicate.items == ((2, 4),)

    def test_zero_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("[0]/DAYS")


class TestScripts:
    def test_assignment_and_return(self):
        script = parse_script("{x = WEEKS; return(x);}")
        assert isinstance(script.body[0], Assign)
        assert isinstance(script.body[1], Return)

    def test_unbraced_script(self):
        script = parse_script("x = WEEKS; return(x);")
        assert len(script.body) == 2

    def test_single_expression_detection(self):
        script = parse_script("{return([2]/DAYS:during:WEEKS);}")
        assert script.is_single_expression()
        multi = parse_script("{x = WEEKS; return(x);}")
        assert not multi.is_single_expression()

    def test_if_else(self):
        script = parse_script("""
        {if (temp1:intersects:holidays)
            return([n]/AM_BUS_DAYS:<:temp1);
         else
            return(temp1);}
        """)
        stmt = script.body[0]
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        script = parse_script("{if (x) return(x); return(y);}")
        assert isinstance(script.body[0], If)
        assert script.body[0].else_body == ()

    def test_if_with_block(self):
        script = parse_script("{if (x) {a = y; return(a);} }")
        assert len(script.body[0].then_body) == 2

    def test_while_with_empty_body(self):
        script = parse_script('{while (today:<:temp2) ; return("DONE");}')
        stmt = script.body[0]
        assert isinstance(stmt, While)
        assert stmt.body == ()

    def test_return_string(self):
        script = parse_script('{return ("LAST TRADING DAY");}')
        assert script.body[0].expr == StringLit("LAST TRADING DAY")

    def test_comments_allowed(self):
        script = parse_script("""
        {temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
         /* last business day of the expiration month */
         return(temp1);}
        """)
        assert len(script.body) == 2

    def test_paper_emp_days_script_parses(self):
        script = parse_script("""
        {LDOM = [n]/DAYS:during:MONTHS;
         LDOM_HOL = LDOM:intersects:HOLIDAYS;
         LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
         return (LDOM - LDOM_HOL + LAST_BUS_DAY);}
        """)
        assert len(script.body) == 4


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_script("{x = WEEKS return(x);}")

    def test_missing_rbrace(self):
        with pytest.raises(ParseError):
            parse_script("{x = WEEKS;")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("WEEKS WEEKS")

    def test_bad_listop(self):
        with pytest.raises(ParseError):
            parse_expression("A:3:B")

    def test_missing_closing_colon(self):
        with pytest.raises(ParseError):
            parse_expression("A:during B")

    def test_empty_expression(self):
        with pytest.raises(ParseError):
            parse_expression("")

    def test_error_position_reported(self):
        try:
            parse_expression("A:during:")
        except ParseError as exc:
            assert exc.line is not None
        else:
            pytest.fail("expected ParseError")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "[2]/DAYS:during:WEEKS",
        "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS",
        "(A - B + C)",
        "[n]/AM_BUS_DAYS:<:LDOM_HOL",
        "[-7]/AM_BUS_DAYS:<:temp1",
    ])
    def test_str_reparses_to_same_ast(self, text):
        first = parse_expression(text)
        again = parse_expression(str(first))
        assert first == again
