"""B4 / E1: core algebra costs and a dateutil.rrule baseline.

Covers foreach scaling with calendar size (the SortedView fast path),
selection, caloperate and set operations, plus a comparison of "every
Tuesday of 1993" computed by this library vs python-dateutil's rrule
(the modern recurrence baseline for the same natural-language class).
"""

from __future__ import annotations

import datetime
import time

import pytest
from dateutil import rrule

from repro.core import (
    Calendar,
    CalendarSystem,
    SelectionPredicate,
    caloperate,
    foreach,
    select,
)

SYSTEM = CalendarSystem.starting("Jan 1 1987")


def days_calendar(n):
    return Calendar.from_intervals([(d, d) for d in range(1, n + 1)])


def weeks_calendar(n_days):
    weeks = [(lo, lo + 6) for lo in range(1, n_days - 5, 7)]
    return Calendar.from_intervals(weeks)


@pytest.mark.parametrize("size", [1_000, 5_000, 20_000])
class TestForeachScaling:
    def test_foreach_during_grouping(self, benchmark, size):
        days = days_calendar(size)
        weeks = weeks_calendar(size)
        result = benchmark(lambda: foreach("during", days, weeks))
        assert result.order == 2

    def test_foreach_overlaps_interval(self, benchmark, size):
        from repro.core import Interval
        days = days_calendar(size)
        ref = Interval(size // 4, size // 2)
        result = benchmark(lambda: foreach("overlaps", days, ref))
        assert len(result) > 0


class TestOperatorCosts:
    DAYS = days_calendar(10_000)
    WEEKS = weeks_calendar(10_000)

    def test_selection_singleton(self, benchmark):
        grouped = foreach("during", self.DAYS, self.WEEKS)
        result = benchmark(
            lambda: select(grouped, SelectionPredicate.of(2)))
        assert result.order == 1

    def test_selection_multi(self, benchmark):
        grouped = foreach("during", self.DAYS, self.WEEKS)
        benchmark(lambda: select(grouped,
                                 SelectionPredicate.of(1, 3, 5)))

    def test_caloperate_weeks(self, benchmark):
        result = benchmark(lambda: caloperate(self.DAYS, (7,)))
        assert len(result) == len(self.DAYS) // 7 + 1

    def test_union(self, benchmark):
        odd = Calendar.from_intervals(
            [(d, d) for d in range(1, 8_000, 2)])
        even = Calendar.from_intervals(
            [(d, d) for d in range(2, 8_000, 2)])
        result = benchmark(lambda: odd + even)
        assert len(result) == 7_999

    def test_difference(self, benchmark):
        all_days = days_calendar(8_000)
        holidays = Calendar.from_intervals(
            [(d, d) for d in range(100, 8_000, 97)])
        result = benchmark(lambda: all_days - holidays)
        assert len(result) == 8_000 - len(holidays)

    def test_generate_days_30_years(self, benchmark):
        benchmark(lambda: SYSTEM.generate(
            "DAYS", "DAYS", ("Jan 1 1987", "Dec 31 2016")))

    def test_generate_weeks_30_years(self, benchmark):
        benchmark(lambda: SYSTEM.generate(
            "WEEKS", "DAYS", ("Jan 1 1987", "Dec 31 2016"),
            mode="cover"))


class TestRruleBaseline:
    """Our calendar pipeline vs dateutil.rrule for weekly recurrences."""

    def _ours(self, registry):
        # Tuesdays (2nd day of each week) restricted to 1993 — pointwise
        # intersection, matching rrule's within-the-year semantics.
        cal = registry.eval_expression(
            "([2]/DAYS:during:WEEKS) & 1993/YEARS")
        return [registry.system.date_of(iv.lo) for iv in cal.elements]

    @staticmethod
    def _rrule():
        return list(rrule.rrule(
            rrule.WEEKLY, byweekday=rrule.TU,
            dtstart=datetime.datetime(1993, 1, 1),
            until=datetime.datetime(1993, 12, 31)))

    def test_ours_tuesdays_1993(self, benchmark, registry):
        dates = benchmark(lambda: self._ours(registry))
        assert len(dates) == 52

    def test_rrule_tuesdays_1993(self, benchmark):
        dates = benchmark(self._rrule)
        assert len(dates) == 52

    def test_results_agree_with_rrule(self, registry):
        ours = [(d.year, d.month, d.day) for d in self._ours(registry)]
        oracle = [(d.year, d.month, d.day) for d in self._rrule()]
        assert ours == oracle


def test_report_foreach_scaling():
    """The B4 table: foreach cost vs calendar size (fast path is loglinear)."""
    print("\n=== B4: foreach('during', DAYS, WEEKS) scaling")
    print(f"{'days':>8} | {'ms':>8}")
    timings = []
    for size in (1_000, 4_000, 16_000, 64_000):
        days = days_calendar(size)
        weeks = weeks_calendar(size)
        t0 = time.perf_counter()
        foreach("during", days, weeks)
        elapsed = (time.perf_counter() - t0) * 1e3
        timings.append(elapsed)
        print(f"{size:>8} | {elapsed:>8.2f}")
    # 64x more input should cost far less than 64^2/16^2 = 16x the 16k run
    # if the fast path is near-linear; allow generous noise.
    assert timings[-1] < timings[-2] * 20
