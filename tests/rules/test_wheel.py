"""Unit tests for the hierarchical timing wheel and its sharded schedule.

Small slot geometries (e.g. ``(4, 4, 4)`` — capacity 64 ticks) make
cascade boundaries and overflow drains reachable in a handful of ticks;
the default geometry would need half a million.
"""

import pytest

from repro.catalog import CalendarRegistry
from repro.core import CalendarSystem
from repro.core.errors import AxisError
from repro.db import Database
from repro.rules import (
    DBCron,
    HeapSchedule,
    RuleManager,
    SimulatedClock,
    WheelSchedule,
)
from repro.rules.wheel import DEFAULT_SLOTS, HierarchicalWheel, _lin, _unlin

SMALL = (4, 4, 4)  # spans 1/4/16, capacity 64


def drain(wheel):
    """Every ripe (tick_lin, name) pair of one wheel, earliest first."""
    out = []
    while (tick := wheel.peek_tick()) is not None:
        out.extend((tick, name) for _, name, _ in wheel.take_tick(tick))
    return out


class TestLinearCoordinates:
    def test_axis_zero_is_skipped(self):
        # The axis has no tick 0: tick 1 maps to linear 0, tick -1 to -1.
        assert _lin(1) == 0
        assert _lin(-1) == -1
        assert _lin(2) == 1

    def test_roundtrip(self):
        for tick in [-5, -2, -1, 1, 2, 17, 400]:
            assert _unlin(_lin(tick)) == tick

    def test_linear_axis_is_contiguous(self):
        ticks = [-3, -2, -1, 1, 2, 3]
        lins = [_lin(t) for t in ticks]
        assert lins == list(range(-3, 3))


class TestHierarchicalWheel:
    def test_rejects_degenerate_geometry(self):
        with pytest.raises(AxisError):
            HierarchicalWheel(0, slots=(4,))
        with pytest.raises(AxisError):
            HierarchicalWheel(0, slots=(4, 1))

    def test_capacity_matches_geometry(self):
        wheel = HierarchicalWheel(0, slots=SMALL)
        assert wheel.capacity == 64
        assert HierarchicalWheel(0, slots=DEFAULT_SLOTS).capacity \
            == 512 * 64 * 64

    def test_push_at_or_before_cursor_is_immediately_ripe(self):
        wheel = HierarchicalWheel(10, slots=SMALL)
        wheel.push(10, 1, "now", 1)
        wheel.push(7, 2, "late", 2)
        assert wheel.peek_tick() == 7
        assert drain(wheel) == [(7, "late"), (10, "now")]

    def test_advance_ripens_in_tick_order(self):
        wheel = HierarchicalWheel(0, slots=SMALL)
        for seq, tick in enumerate([9, 2, 5, 13, 1], start=1):
            wheel.push(tick, seq, f"r{tick}", seq)
        wheel.advance_to(13)
        assert drain(wheel) == [(1, "r1"), (2, "r2"), (5, "r5"),
                                (9, "r9"), (13, "r13")]

    def test_cascade_fires_exactly_on_time(self):
        # Linear tick 5 starts in level 1 (delta 5 >= 4 level-0 slots);
        # the level-1 slot cascades when its window opens at tick 4 and
        # the entry must become ripe at 5, not at the cascade boundary.
        wheel = HierarchicalWheel(0, slots=SMALL)
        wheel.push(5, 1, "r", 1)
        wheel.advance_to(4)
        assert wheel.peek_tick() is None
        assert wheel.cascades >= 1
        wheel.advance_to(5)
        assert wheel.peek_tick() == 5

    def test_every_tick_across_all_levels_fires_on_time(self):
        # One entry per tick across the whole slotted range: each must
        # ripen exactly when the cursor reaches it, through however many
        # cascade hops its level requires.
        wheel = HierarchicalWheel(0, slots=SMALL)
        for tick in range(1, 64):
            wheel.push(tick, tick, f"r{tick}", tick)
        for tick in range(1, 64):
            wheel.advance_to(tick)
            assert wheel.take_tick(tick) == [(tick, f"r{tick}", tick)], \
                f"entry for tick {tick} not ripe on time"
            assert wheel.peek_tick() is None, \
                f"early ripening at tick {tick}"

    def test_far_future_goes_to_overflow_and_comes_back(self):
        wheel = HierarchicalWheel(0, slots=SMALL)
        wheel.push(100, 1, "far", 1)  # beyond capacity 64
        assert wheel.overflow_size == 1
        wheel.advance_to(99)
        assert wheel.overflow_size == 0  # drained into the slotted levels
        assert wheel.peek_tick() is None
        wheel.advance_to(100)
        assert drain(wheel) == [(100, "far")]

    def test_deep_overflow_survives_multiple_drains(self):
        wheel = HierarchicalWheel(0, slots=SMALL)
        wheel.push(500, 1, "deep", 1)
        wheel.advance_to(300)
        assert wheel.overflow_size == 1  # still out of range at 300
        wheel.advance_to(500)
        assert drain(wheel) == [(500, "deep")]


class TestWheelSchedule:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(AxisError):
            WheelSchedule(1, shards=0)

    def test_schedule_and_pop_single(self):
        sched = WheelSchedule(1, shards=2, slots=SMALL)
        assert sched.schedule("r", 5)
        assert len(sched) == 1
        assert sched.pop_wave(4) == []
        assert sched.pop_wave(5) == [(5, "r", sched.shard_of("r"))]
        assert len(sched) == 0

    def test_duplicate_arm_refused(self):
        sched = WheelSchedule(1, slots=SMALL)
        assert sched.schedule("r", 5)
        assert not sched.schedule("r", 5)

    def test_watermark_refuses_stale_rearm(self):
        # After popping tick 5, re-arms at or before 5 are the probe
        # racing an in-flight fire — refuse them (anti double-fire).
        sched = WheelSchedule(1, slots=SMALL)
        sched.schedule("r", 5)
        assert sched.pop_wave(5) == [(5, "r", 0)]
        assert not sched.schedule("r", 5)
        assert not sched.schedule("r", 3)
        assert sched.schedule("r", 6)

    def test_repoint_kills_old_entry(self):
        # Redefining a rule re-arms it at a new tick; the wheel entry
        # for the old tick must die in place, and the graveyard tick
        # must not mask the live one in the same pop.
        sched = WheelSchedule(1, slots=SMALL)
        sched.schedule("r", 5)
        sched.schedule("r", 8)
        assert len(sched) == 1
        assert sched.pop_wave(10) == [(8, "r", 0)]

    def test_cancel_forgets_rule_and_watermark(self):
        sched = WheelSchedule(1, slots=SMALL)
        sched.schedule("r", 5)
        assert sched.pop_wave(5) == [(5, "r", 0)]
        sched.cancel("r")
        # A dropped-and-recreated rule starts fresh: the old watermark
        # must not refuse ticks the new incarnation legitimately owns.
        assert sched.schedule("r", 4)
        assert sched.pop_wave(4) == [(4, "r", 0)]

    def test_wave_in_global_arm_order_across_shards(self):
        sched = WheelSchedule(1, shards=4, slots=SMALL)
        names = [f"rule-{i}" for i in range(12)]
        for name in names:
            assert sched.schedule(name, 7)
        assert len({sched.shard_of(n) for n in names}) > 1
        wave = sched.pop_wave(7)
        assert [name for _, name, _ in wave] == names
        assert all(tick == 7 for tick, _, _ in wave)
        assert all(shard == sched.shard_of(name)
                   for _, name, shard in wave)

    def test_shard_sizes_rebalance_on_drop(self):
        sched = WheelSchedule(1, shards=4, slots=SMALL)
        names = [f"rule-{i}" for i in range(20)]
        for name in names:
            sched.schedule(name, 9)
        before = sched.shard_sizes()
        assert sum(before) == 20
        for name in names[:10]:
            sched.cancel(name)
        after = sched.shard_sizes()
        assert sum(after) == 10
        assert after == [sum(1 for n in names[10:]
                             if sched.shard_of(n) == i)
                         for i in range(4)]

    def test_due_within_counts_only_the_window(self):
        sched = WheelSchedule(1, shards=2, slots=SMALL)
        sched.schedule("soon", 3)
        sched.schedule("later", 30)
        sched.schedule("far", 500)
        assert sched.due_within(1, 7) == 1
        assert sched.due_within(1, 40) == 2
        assert len(sched) == 3

    def test_overflow_visible_in_stats(self):
        sched = WheelSchedule(1, shards=2, slots=SMALL)
        sched.schedule("far", 500)
        assert sched.overflow_size() == 1
        stats = sched.stats()
        assert stats["kind"] == "wheel"
        assert stats["shards"] == 2
        assert stats["scheduled"] == 1
        assert stats["overflow"] == 1
        assert stats["slots"] == list(SMALL)

    def test_shard_lags_report_backlog(self):
        sched = WheelSchedule(1, shards=2, slots=SMALL)
        sched.schedule("behind", 5)
        lags = sched.shard_lags(12)
        assert lags[sched.shard_of("behind")] == 7
        assert all(lag == 0 for i, lag in enumerate(lags)
                   if i != sched.shard_of("behind"))
        sched.pop_wave(12)
        assert sched.shard_lags(12) == [0, 0]

    def test_negative_ticks_cross_the_axis_zero_skip(self):
        # Arm on both sides of the (nonexistent) tick 0: the linear
        # mapping must keep -1 and 1 adjacent, firing in axis order.
        sched = WheelSchedule(-3, slots=SMALL)
        for tick in (2, -1, 1, -2):
            assert sched.schedule(f"r{tick}", tick)
        fired = []
        for now in (-2, -1, 1, 2):
            fired.extend(sched.pop_wave(now))
        assert [tick for tick, _, _ in fired] == [-2, -1, 1, 2]


class TestHeapScheduleProtocol:
    """The fixed heap implements the same strategy contract."""

    def test_repoint_kills_old_entry(self):
        sched = HeapSchedule()
        sched.schedule("r", 5)
        sched.schedule("r", 8)
        assert len(sched) == 1
        assert sched.pop_wave(10) == [(8, "r", 0)]

    def test_watermark_refuses_stale_rearm(self):
        sched = HeapSchedule()
        sched.schedule("r", 5)
        assert sched.pop_wave(5) == [(5, "r", 0)]
        assert not sched.schedule("r", 5)
        assert sched.schedule("r", 6)

    def test_stats_shape(self):
        sched = HeapSchedule()
        sched.schedule("r", 5)
        stats = sched.stats()
        assert stats["kind"] == "heap"
        assert stats["scheduled"] == 1


# -- daemon integration -------------------------------------------------------


@pytest.fixture()
def stack():
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    manager = RuleManager(db)
    clock = SimulatedClock(now=1)
    return registry, db, manager, clock


class TestWheelDaemon:
    def test_wheel_is_the_default_scheduler(self, stack, monkeypatch):
        monkeypatch.delenv("REPRO_WHEEL", raising=False)
        _, _, manager, clock = stack
        cron = DBCron(manager, clock, period=7)
        assert cron.scheduler == "wheel"
        assert isinstance(cron.sched, WheelSchedule)

    def test_env_switch_selects_heap(self, stack, monkeypatch):
        monkeypatch.setenv("REPRO_WHEEL", "0")
        _, _, manager, clock = stack
        cron = DBCron(manager, clock, period=7)
        assert cron.scheduler == "heap"
        assert isinstance(cron.sched, HeapSchedule)

    def test_unknown_scheduler_rejected(self, stack):
        _, _, manager, clock = stack
        with pytest.raises(AxisError):
            DBCron(manager, clock, scheduler="btree")

    def test_rules_declared_before_daemon_are_synced(self, stack):
        # Wheel mode has no periodic RULE_TIME probe: rules that predate
        # the daemon must be armed by the one-time construction sync.
        registry, _, manager, clock = stack
        registry.define("EARLY", values=[(5, 5), (9, 9)],
                        granularity="DAYS")
        fired = []
        manager.declare_temporal(
            "early", expression="EARLY",
            callback=lambda d, t: fired.append(t), after=1)
        cron = DBCron(manager, clock, period=7, scheduler="wheel")
        cron.run_until(12)
        assert fired == [5, 9]

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_no_double_fire_when_probe_races_a_fire(self, stack,
                                                    scheduler):
        # Regression (IMPLEMENTATION_NOTES §11): a probe running while a
        # fire is in flight reads the rule's *old* RULE_TIME row (the
        # next-fire update lands after the action) and re-arms the tick
        # being fired.  The fired-at watermark must refuse that re-arm;
        # the stale entry used to fire the same occurrence twice.
        registry, _, manager, clock = stack
        registry.define("SPARSE", values=[(4, 4), (300, 300)],
                        granularity="DAYS")
        cron = DBCron(manager, clock, period=7, scheduler=scheduler)
        fired = []

        def racing_callback(_db, tick):
            fired.append(tick)
            cron.probe()  # the daemon probing mid-fire

        manager.declare_temporal("r", expression="SPARSE",
                                 callback=racing_callback, after=1)
        cron.run_until(10)
        assert fired == [4], f"double fire under {scheduler}: {fired}"

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_redefine_between_probe_and_fire(self, stack, scheduler):
        # Dropping and redefining a loaded rule must kill the original
        # schedule entry: only the new calendar's ticks fire.
        registry, _, manager, clock = stack
        registry.define("OLD", values=[(5, 5)], granularity="DAYS")
        registry.define("NEW", values=[(6, 6)], granularity="DAYS")
        cron = DBCron(manager, clock, period=7, scheduler=scheduler)
        fired = []
        manager.declare_temporal(
            "r", expression="OLD",
            callback=lambda d, t: fired.append(("old", t)), after=1)
        cron.probe()  # loads the OLD entry into the schedule
        manager.drop_rule("r")
        manager.declare_temporal(
            "r", expression="NEW",
            callback=lambda d, t: fired.append(("new", t)), after=1)
        cron.run_until(10)
        assert fired == [("new", 6)]

    def test_wheel_and_heap_fire_identically(self, stack):
        registry, _, _, _ = stack
        registry.define("MIX", values=[(d, d) for d in
                                       (3, 4, 4 + 40, 200)],
                        granularity="DAYS")
        runs = {}
        for scheduler in ("heap", "wheel"):
            db = Database(calendars=registry)
            manager = RuleManager(db)
            clock = SimulatedClock(now=1)
            cron = DBCron(manager, clock, period=7, scheduler=scheduler)
            fired = []
            manager.declare_temporal(
                "m", expression="MIX",
                callback=lambda d, t: fired.append(t), after=1)
            cron.run_until(250)
            runs[scheduler] = fired
        assert runs["wheel"] == runs["heap"] == [3, 4, 44, 200]
