"""Regular time series bound to calendars (section 1).

Many financial/economic series are *regular*: their observation instants
are exactly the points of a calendar ("the last day of every quarter").
The paper's point is that storing those time points is redundant — the
calendar regenerates them on demand, which is how valid time is maintained
in the database.

:class:`RegularTimeSeries` stores **values only**; time points come from a
calendar (a :class:`~repro.core.calendar.Calendar` or a registry name
evaluated over a window).  ``to_relation``/``from_relation`` demonstrate
the storage story: the relation holds ``(seq, value)`` and the valid time
is reconstructed by position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.arithmetic import point_index
from repro.core.calendar import Calendar
from repro.core.errors import CalendarError

__all__ = ["RegularTimeSeries"]


class RegularTimeSeries:
    """A sequence of values whose instants come from a calendar.

    ``calendar`` must be order-1; observation ``i`` (0-based) is anchored
    at the **last point** of the calendar's ``i``-th interval (the
    convention for "the GNP of a quarter is recorded at quarter end").
    Pass ``anchor="start"`` to anchor at interval starts instead.
    """

    def __init__(self, calendar: Calendar, values: Sequence,
                 name: str = "series", anchor: str = "end") -> None:
        if calendar.order != 1:
            raise CalendarError(
                "a regular time series needs an order-1 calendar")
        if len(values) > len(calendar):
            raise CalendarError(
                f"{len(values)} values but only {len(calendar)} calendar "
                "intervals")
        if anchor not in ("start", "end"):
            raise CalendarError(f"unknown anchor {anchor!r}")
        self.calendar = calendar
        self.values = list(values)
        self.name = name
        self.anchor = anchor

    # -- time points -------------------------------------------------------------

    def timepoint(self, i: int) -> int:
        """The axis instant of observation ``i``."""
        interval = self.calendar.elements[i]
        return interval.hi if self.anchor == "end" else interval.lo

    def timepoints(self) -> list[int]:
        """All observation instants — regenerated, never stored."""
        return [self.timepoint(i) for i in range(len(self.values))]

    def items(self) -> Iterator[tuple[int, object]]:
        """Yield (instant, value) pairs in observation order."""
        for i, value in enumerate(self.values):
            yield self.timepoint(i), value

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i: int):
        return self.values[i]

    def at(self, t: int):
        """Value observed exactly at instant ``t`` (None if no observation)."""
        for i in range(len(self.values)):
            if self.timepoint(i) == t:
                return self.values[i]
        return None

    def at_or_before(self, t: int):
        """Most recent observation at or before ``t`` (None if none)."""
        best = None
        for i in range(len(self.values)):
            if self.timepoint(i) <= t:
                best = self.values[i]
            else:
                break
        return best

    def index_of_instant(self, t: int) -> int | None:
        """Observation index anchored exactly at ``t``, or None."""
        for i in range(len(self.values)):
            if self.timepoint(i) == t:
                return i
        return None

    def append(self, value) -> int:
        """Record the next observation; returns its instant.

        The instant is *implied* by the calendar — the caller supplies only
        the value, which is the whole point of regular series.
        """
        if len(self.values) >= len(self.calendar):
            raise CalendarError(
                f"series {self.name!r} has exhausted its calendar")
        self.values.append(value)
        return self.timepoint(len(self.values) - 1)

    # -- transformation ------------------------------------------------------------

    def map(self, func: Callable) -> "RegularTimeSeries":
        """A new series with ``func`` applied to every value."""
        return RegularTimeSeries(self.calendar,
                                 [func(v) for v in self.values],
                                 name=self.name, anchor=self.anchor)

    def binop(self, other: "RegularTimeSeries",
              func: Callable) -> "RegularTimeSeries":
        """Pointwise combination; both series must share a calendar."""
        if other.calendar.to_pairs() != self.calendar.to_pairs():
            raise CalendarError(
                "binop requires series on the same calendar")
        n = min(len(self.values), len(other.values))
        return RegularTimeSeries(
            self.calendar,
            [func(self.values[i], other.values[i]) for i in range(n)],
            name=f"{self.name}*{other.name}", anchor=self.anchor)

    def resample(self, coarser: Calendar,
                 aggregate: Callable[[list], object]) -> "RegularTimeSeries":
        """Aggregate onto a coarser calendar (e.g. months -> quarters).

        Observation ``i`` of the result aggregates the source values whose
        instants fall inside the ``i``-th interval of ``coarser``.
        """
        if coarser.order != 1:
            raise CalendarError("resample needs an order-1 target calendar")
        buckets: list[list] = [[] for _ in coarser.elements]
        points = self.timepoints()
        for value, t in zip(self.values, points):
            for i, interval in enumerate(coarser.elements):
                if t in interval:
                    buckets[i].append(value)
                    break
        values = [aggregate(bucket) for bucket in buckets if bucket]
        kept = [iv for iv, bucket in zip(coarser.elements, buckets)
                if bucket]
        return RegularTimeSeries(
            Calendar.from_intervals(kept, coarser.granularity),
            values, name=self.name, anchor=self.anchor)

    # -- database bridge --------------------------------------------------------------

    def to_relation(self, database, relation_name: str) -> None:
        """Store values only: ``(seq int4, value float8)``.

        Time points are **not** stored — they are regenerated from the
        calendar on load, the paper's valid-time maintenance claim.
        """
        if relation_name not in database:
            database.create_table(relation_name,
                                  [("seq", "int4"), ("value", "float8")],
                                  key=("seq",))
        relation = database.relation(relation_name)
        relation.truncate()
        for i, value in enumerate(self.values):
            relation.insert({"seq": i, "value": float(value)},
                            fire_hooks=False)

    @classmethod
    def from_relation(cls, database, relation_name: str,
                      calendar: Calendar, name: str | None = None,
                      anchor: str = "end") -> "RegularTimeSeries":
        rows = sorted(database.relation(relation_name).scan(),
                      key=lambda r: r["seq"])
        return cls(calendar, [r["value"] for r in rows],
                   name=name or relation_name, anchor=anchor)

    def __repr__(self) -> str:
        return (f"RegularTimeSeries({self.name!r}, n={len(self.values)}, "
                f"calendar={len(self.calendar)} intervals)")
