"""Throughput scaling of the concurrent batch evaluation engine.

Times a 32-script mixed batch (8 unique scripts × 4 occurrences —
expressions, defined calendars, and a full script, the shape of a DBCRON
rule population sharing trigger expressions) three ways:

* a sequential ``session.eval`` loop (the pre-batch baseline),
* ``session.eval_many`` at 1/2/4/8 workers,
* an all-unique 32-script batch at one worker (the single-thread
  overhead guard: with no duplicates to deduplicate, ``eval_many``
  must not be meaningfully slower than the plain loop).

On a GIL runtime the batch speedup comes from *work deduplication* —
duplicate scripts collapse to one job, shared GenerateSteps are hoisted
and materialised once, and single-flight misses in the matcache stop
concurrent regeneration — rather than raw thread parallelism, so the
≥2× assertion holds on single-core runners too.

These benchmarks are self-timed (``perf_counter`` around whole batches;
pytest-benchmark's per-round calibration does not fit a
build-session-then-run-batch shape) and register their rows via
:func:`benchmarks.conftest.record_benchmark`, so they land in
``BENCH_core.json["benchmarks"]`` even under ``--benchmark-disable``.
"""

from __future__ import annotations

import threading

from time import perf_counter

from conftest import record_benchmark

from repro.core import Calendar
from repro.core.matcache import MaterialisationCache
from repro.obs.instrument import Instrumentation
from repro.session import Session

WINDOW = ("Jan 1 1993", "Dec 31 1994")

#: Eight unique scripts of mixed kinds; the batch repeats each 4 times.
UNIQUE_SCRIPTS = [
    "[1]/MONTHS:during:1993/YEARS",
    "[22]/DAYS:during:[1]/MONTHS:during:1993/YEARS",
    "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS",
    "DAYS:during:[2]/MONTHS:during:1993/YEARS",
    "HOLIDAYS",
    "AM_BUS_DAYS - HOLIDAYS",
    "x = (DAYS:during:[1]/MONTHS:during:1993/YEARS); return (x)",
    "[n]/DAYS:during:[3]/MONTHS:during:1993/YEARS",
]

#: 32 scripts, each unique one exactly 4 times, deterministically
#: interleaved (3 is coprime to 8, so the stride visits every residue).
MIXED_BATCH = [UNIQUE_SCRIPTS[(i * 3) % len(UNIQUE_SCRIPTS)]
               for i in range(32)]

#: 32 pairwise-distinct expressions: no duplicate for eval_many to
#: collapse, isolating the batch machinery's own overhead.
ALL_UNIQUE_BATCH = [
    f"[{(i % 27) + 1}]/DAYS:during:[{(i % 12) + 1}]/MONTHS"
    f":during:{1993 + i // 16}/YEARS"
    for i in range(32)
]

ROUNDS = 5


def fresh_session(workers: int = 1) -> Session:
    """A fully cold stack: private registry, matcache, instrumentation."""
    return Session("Jan 1 1987", holiday_years=(1993, 1995),
                   workers=workers,
                   matcache=MaterialisationCache(),
                   instrumentation=Instrumentation())


def _spawn_pool_threads(session: Session, workers: int) -> None:
    """Force the session pool's threads to exist before timing starts.

    ThreadPoolExecutor spawns threads lazily per submission; a barrier
    task per worker guarantees all of them are up, so thread creation
    cost (OS-dependent, noisy under load) stays out of the timed batch.
    """
    if workers < 2:
        return
    barrier = threading.Barrier(workers)
    done = [session.pool.submit(barrier.wait, 5) for _ in range(workers)]
    for future in done:
        future.result()


def _count_intervals(results) -> int:
    return sum(len(r) for r in results if isinstance(r, Calendar))


def _time_sequential(batch) -> tuple[list[float], int]:
    samples = []
    intervals = 0
    for _ in range(ROUNDS):
        session = fresh_session()
        t0 = perf_counter()
        results = [session.eval(text, window=WINDOW) for text in batch]
        samples.append(perf_counter() - t0)
        intervals = _count_intervals(results)
    return samples, intervals


def _time_eval_many(batch, workers: int) -> tuple[list[float], int]:
    samples = []
    intervals = 0
    for _ in range(ROUNDS):
        session = fresh_session(workers)
        _spawn_pool_threads(session, workers)
        t0 = perf_counter()
        results = session.eval_many(batch, window=WINDOW)
        samples.append(perf_counter() - t0)
        intervals = _count_intervals(results)
    return samples, intervals


class TestBatchThroughput:
    def test_eval_many_scales_on_mixed_batch(self):
        """≥2× aggregate throughput at 4 workers on the 32-script batch."""
        seq_samples, seq_intervals = _time_sequential(MIXED_BATCH)
        record_benchmark("parallel/sequential_eval_32_mixed",
                         seq_samples, intervals=seq_intervals,
                         batch=len(MIXED_BATCH))
        seq_best = min(seq_samples)
        speedups = {}
        for workers in (1, 2, 4, 8):
            samples, intervals = _time_eval_many(MIXED_BATCH, workers)
            speedup = seq_best / min(samples)
            speedups[workers] = speedup
            record_benchmark(
                f"parallel/eval_many_32_mixed_w{workers}", samples,
                intervals=intervals, batch=len(MIXED_BATCH),
                workers=workers, speedup_vs_sequential=round(speedup, 3))
        assert speedups[4] >= 2.0, (
            f"eval_many at 4 workers managed only "
            f"{speedups[4]:.2f}x over sequential eval "
            f"(all speedups: {speedups})")

    def test_eval_many_matches_sequential_results(self):
        """The timed configurations agree result-for-result."""
        session = fresh_session()
        expected = [session.eval(t, window=WINDOW) for t in MIXED_BATCH]
        for workers in (1, 4):
            got = fresh_session().eval_many(MIXED_BATCH, window=WINDOW,
                                            max_workers=workers)
            assert len(got) == len(expected)
            assert all(a == b for a, b in zip(got, expected))

    def test_single_thread_overhead_under_5_percent(self):
        """eval_many(max_workers=1) on an all-unique batch ≈ plain loop.

        With nothing to deduplicate, the batch path's planning/hoisting
        bookkeeping is pure overhead — it must stay below 5% of the
        sequential loop's best time (it is usually *faster*: the batch
        shares one context cache where the loop re-slices the matcache).
        """
        seq_samples, _ = _time_sequential(ALL_UNIQUE_BATCH)
        many_samples, intervals = _time_eval_many(ALL_UNIQUE_BATCH, 1)
        ratio = min(many_samples) / min(seq_samples)
        record_benchmark("parallel/single_thread_overhead_32_unique",
                         many_samples, intervals=intervals,
                         batch=len(ALL_UNIQUE_BATCH), workers=1,
                         overhead_ratio=round(ratio, 4))
        assert ratio < 1.05, (
            f"single-threaded eval_many is {ratio:.3f}x the plain "
            f"sequential loop (must be < 1.05)")
