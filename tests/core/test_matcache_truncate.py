"""Window-truncated insertion: narrow requests must not evict wide entries.

A streaming pipeline evaluates its pushed-down chain once per reference
interval, each time over a tiny per-reference window.  Those requests
flow through the shared materialisation cache; before the narrow-bypass
policy, each disjoint narrow install *replaced* the wide shared entry
under the same key, so a pipeline run would thrash the cache that every
other evaluation depends on.  These tests pin the policy: a narrower
disjoint request is served off its own materialisation and the stored
wide entry survives untouched; a *wider* request still wins the slot.
"""

import pytest

from repro.core import CalendarSystem
from repro.core.matcache import MaterialisationCache


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


@pytest.fixture
def cache():
    return MaterialisationCache()


class TestNarrowBypass:
    def test_narrow_disjoint_request_preserves_wide_entry(self, sys87,
                                                          cache):
        wide = cache.generate(sys87, "MONTHS", "DAYS", (1, 3000), "cover")
        before = cache.stats()
        # Far beyond the wide window (not near -> no extension) and much
        # narrower: the pipeline's per-reference shape.
        got = cache.generate(sys87, "MONTHS", "DAYS", (9000, 9030), "cover")
        after = cache.stats()
        assert after["narrow_bypass"] == before["narrow_bypass"] + 1
        want = sys87.generate("MONTHS", "DAYS", (9000, 9030), mode="cover")
        assert got.to_pairs() == want.to_pairs()
        assert got.labels == want.labels
        # The wide entry still serves sub-windows as hits.
        hits_before = cache.stats()["hits"]
        again = cache.generate(sys87, "MONTHS", "DAYS", (100, 400), "clip")
        assert cache.stats()["hits"] == hits_before + 1
        assert again.to_pairs() == sys87.generate(
            "MONTHS", "DAYS", (100, 400), mode="clip").to_pairs()
        assert len(wide) > len(got)

    def test_repeated_narrow_requests_never_install(self, sys87, cache):
        cache.generate(sys87, "WEEKS", "DAYS", (1, 4000), "cover")
        entries_before = cache.stats()["entries"]
        for lo in (9000, 9100, 9200, 9300):
            cache.generate(sys87, "WEEKS", "DAYS", (lo, lo + 30), "cover")
        stats = cache.stats()
        assert stats["entries"] == entries_before
        assert stats["narrow_bypass"] >= 4

    def test_wider_disjoint_request_still_replaces(self, sys87, cache):
        cache.generate(sys87, "MONTHS", "DAYS", (9000, 9030), "cover")
        before = cache.stats()
        # Disjoint and wider: the keep-whichever-is-wider policy applies.
        got = cache.generate(sys87, "MONTHS", "DAYS", (1, 3000), "cover")
        after = cache.stats()
        assert after["narrow_bypass"] == before["narrow_bypass"]
        want = sys87.generate("MONTHS", "DAYS", (1, 3000), mode="cover")
        assert got.to_pairs() == want.to_pairs()
        # And the new wide entry now serves its sub-windows as hits.
        hits_before = cache.stats()["hits"]
        cache.generate(sys87, "MONTHS", "DAYS", (500, 700), "clip")
        assert cache.stats()["hits"] == hits_before + 1

    def test_near_narrow_request_extends_instead(self, sys87, cache):
        """Adjacent narrow windows keep the extension path (no bypass)."""
        cache.generate(sys87, "MONTHS", "DAYS", (1, 1000), "cover")
        before = cache.stats()
        got = cache.generate(sys87, "MONTHS", "DAYS", (1001, 1031), "cover")
        after = cache.stats()
        assert after["narrow_bypass"] == before["narrow_bypass"]
        assert after["extensions"] == before["extensions"] + 1
        want = sys87.generate("MONTHS", "DAYS", (1001, 1031), mode="cover")
        assert got.to_pairs() == want.to_pairs()

    def test_bypass_counter_in_stat_keys(self, cache):
        assert "narrow_bypass" in cache.stats()
