"""Transaction-time (no-overwrite) storage and the ``as of`` clause."""

import pytest

from repro.db import ExecutionError


@pytest.fixture()
def history_db(db):
    db.create_table("prices", [("symbol", "text"), ("price", "float8")])
    db.execute('append prices (symbol = "XYZ", price = 100.0)')
    db.execute('append prices (symbol = "ABC", price = 50.0)')
    db.execute('replace p (price = 110.0) from p in prices '
               'where p.symbol = "XYZ"')
    db.execute('delete p from p in prices where p.symbol = "ABC"')
    return db


class TestVersioning:
    def test_live_view_reflects_mutations(self, history_db):
        rows = history_db.execute(
            "retrieve (p.symbol, p.price) from p in prices")
        assert [(r["symbol"], r["price"]) for r in rows.rows] == \
            [("XYZ", 110.0)]

    def test_dead_versions_retained(self, history_db):
        relation = history_db.relation("prices")
        assert len(relation) == 1
        assert relation.version_count() == 3  # 1 live + 2 dead

    def test_tuples_carry_stamps(self, history_db):
        row = next(history_db.relation("prices").scan())
        assert row["_tmin"] > 1
        assert "_tmax" not in row

    def test_vacuum_reclaims(self, history_db):
        assert history_db.vacuum() == 2
        assert history_db.relation("prices").version_count() == 1

    def test_truncate_clears_history(self, history_db):
        history_db.relation("prices").truncate()
        assert history_db.relation("prices").version_count() == 0


class TestAsOfQueries:
    def test_state_before_any_change(self, db):
        db.create_table("t", [("x", "int4")])
        xact0 = db.current_xact()
        db.execute("append t (x = 1)")
        rows = db.execute(
            f"retrieve (r.x) from r in t as of {xact0}")
        assert rows.rows == []

    def test_state_between_mutations(self, history_db):
        relation = history_db.relation("prices")
        # Find the stamp of the original XYZ version (first dead row).
        original = relation._history[0]
        assert original["price"] == 100.0
        xact = original["_tmin"]
        rows = history_db.execute(
            f'retrieve (p.price) from p in prices as of {xact} '
            'where p.symbol = "XYZ"')
        assert rows.column("price") == [100.0]

    def test_deleted_tuple_visible_historically(self, history_db):
        relation = history_db.relation("prices")
        abc = next(r for r in relation._history if r["symbol"] == "ABC")
        xact = abc["_tmax"] - 1
        rows = history_db.execute(
            f"retrieve (p.symbol) from p in prices as of {xact} "
            "order by symbol")
        assert rows.column("symbol") == ["ABC", "XYZ"]

    def test_current_xact_sees_live_state(self, history_db):
        now = history_db.current_xact()
        live = history_db.execute(
            "retrieve (p.symbol, p.price) from p in prices")
        historical = history_db.execute(
            f"retrieve (p.symbol, p.price) from p in prices as of {now}")
        assert live.rows == historical.rows

    def test_as_of_must_be_integer(self, history_db):
        with pytest.raises(ExecutionError):
            history_db.execute(
                'retrieve (p.price) from p in prices as of "yesterday"')

    def test_join_current_with_historical(self, history_db):
        """Rule conditions can compare current vs historical state."""
        relation = history_db.relation("prices")
        old_xact = relation._history[0]["_tmin"]
        rows = history_db.execute(
            "retrieve (now.symbol, now.price as current_price, "
            "old.price as old_price) "
            f"from now in prices, old in prices as of {old_xact} "
            "where now.symbol = old.symbol")
        (row,) = rows.rows
        assert row["current_price"] == 110.0
        assert row["old_price"] == 100.0


class TestRuleOverHistory:
    def test_event_rule_checking_historical_state(self, history_db):
        """Section 4: a condition inspecting a past state of the object."""
        from repro.rules import RuleManager
        manager = RuleManager(history_db)
        history_db.create_table("spikes", [("symbol", "text")])
        baseline_xact = history_db.relation(
            "prices")._history[0]["_tmin"]
        manager.define_event_rule(
            "spike_watch", "replace", "prices",
            condition=None,
            callback=lambda d, e: d.execute(
                f'retrieve into spikes (p.symbol) from p in prices '
                f'as of {baseline_xact} '
                f'where p.symbol = "{e.new["symbol"]}" '
                f'and p.price * 2 < {e.new["price"]}'))
        history_db.execute(
            'replace p (price = 250.0) from p in prices '
            'where p.symbol = "XYZ"')
        spikes = history_db.execute(
            "retrieve (s.symbol) from s in spikes")
        assert spikes.column("symbol") == ["XYZ"]
