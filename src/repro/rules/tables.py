"""The RULE-INFO and RULE-TIME database tables (section 4, Figure 4).

``RULE_INFO`` stores, per temporal rule, the calendar expression text, the
factorized expression, and the rendered evaluation plan.  ``RULE_TIME``
stores the *next* time point at which each rule must trigger; DBCRON
probes it every T time units.  Both are ordinary relations of the host
database, so they are themselves queryable with Postquel.
"""

from __future__ import annotations

from repro.db.database import Database
from repro.db.errors import RuleError

__all__ = ["RuleTables"]

RULE_INFO = "rule_info"
RULE_TIME = "rule_time"


class RuleTables:
    """Creates and maintains RULE_INFO / RULE_TIME in a database."""

    def __init__(self, database: Database) -> None:
        self.db = database
        #: RULE_TIME tid per rulename — O(1) next-fire maintenance at
        #: alerting scale (the relation update keeps a row's tid stable).
        #: Purely a cache: every read validates against the live row and
        #: falls back to a scan, so direct Postquel mutation of the
        #: catalog tables stays legal.
        self._time_tids: dict[str, int] = {}
        if RULE_INFO not in database:
            database.create_table(RULE_INFO, [
                ("rulename", "text"),
                ("expression", "text"),
                ("factorized", "text"),
                ("eval_plan", "text"),
            ], key=("rulename",))
        if RULE_TIME not in database:
            database.create_table(RULE_TIME, [
                ("rulename", "text"),
                ("next_fire", "abstime"),
            ], key=("rulename",))
            database.create_index(RULE_TIME, "next_fire")

    # -- maintenance ------------------------------------------------------------

    def register(self, rule, next_fire: int | None) -> None:
        """Insert catalog rows for a newly declared temporal rule."""
        info = self.db.relation(RULE_INFO)
        info.insert({
            "rulename": rule.name,
            "expression": rule.expression_text,
            "factorized": str(rule.expression),
            "eval_plan": rule.plan.text() if rule.plan is not None else "",
        }, fire_hooks=False)
        if next_fire is not None:
            row = self.db.relation(RULE_TIME).insert(
                {"rulename": rule.name, "next_fire": next_fire},
                fire_hooks=False)
            self._time_tids[rule.name] = row["_tid"]

    def register_many(self, entries) -> None:
        """Catalog a batch of ``(rule, next_fire)`` pairs at once.

        Equivalent to ``register`` per pair, but both catalog relations
        take the rows through :meth:`~repro.db.storage.Relation.
        insert_many`, so the ordered ``next_fire`` index absorbs the
        whole batch with one sort + merge instead of one O(n) shuffle
        per rule — the difference between quadratic and linear catalog
        registration at alerting scale.
        """
        entries = list(entries)
        if not entries:
            return
        info_rows = [{
            "rulename": rule.name,
            "expression": rule.expression_text,
            "factorized": str(rule.expression),
            "eval_plan": rule.plan.text() if rule.plan is not None else "",
        } for rule, _ in entries]
        self.db.relation(RULE_INFO).insert_many(info_rows,
                                                fire_hooks=False)
        timed = [(rule, next_fire) for rule, next_fire in entries
                 if next_fire is not None]
        if timed:
            rows = self.db.relation(RULE_TIME).insert_many(
                [{"rulename": rule.name, "next_fire": next_fire}
                 for rule, next_fire in timed], fire_hooks=False)
            for (rule, _), row in zip(timed, rows):
                self._time_tids[rule.name] = row["_tid"]

    def _time_row(self, name: str) -> dict | None:
        """The live RULE_TIME row of ``name`` (cached tid, scan fallback)."""
        relation = self.db.relation(RULE_TIME)
        tid = self._time_tids.get(name)
        if tid is not None:
            row = relation.get(tid)
            if row is not None and row["rulename"] == name:
                return row
            del self._time_tids[name]  # stale: mutated behind our back
        for row in relation.scan():
            if row["rulename"] == name:
                self._time_tids[name] = row["_tid"]
                return row
        return None

    def unregister(self, name: str) -> None:
        """Delete a rule's RULE_INFO / RULE_TIME rows."""
        relation = self.db.relation(RULE_INFO)
        for row in list(relation.scan()):
            if row["rulename"] == name:
                relation.delete(row["_tid"], fire_hooks=False)
        row = self._time_row(name)
        if row is not None:
            self.db.relation(RULE_TIME).delete(row["_tid"],
                                               fire_hooks=False)
            self._time_tids.pop(name, None)

    def set_next_fire(self, name: str, next_fire: int | None) -> None:
        """Upsert (or clear, with None) a rule's next trigger point."""
        relation = self.db.relation(RULE_TIME)
        row = self._time_row(name)
        if row is not None:
            if next_fire is None:
                relation.delete(row["_tid"], fire_hooks=False)
                self._time_tids.pop(name, None)
            else:
                relation.update(row["_tid"], {"next_fire": next_fire},
                                fire_hooks=False)
            return
        if next_fire is not None:
            row = relation.insert({"rulename": name, "next_fire": next_fire},
                                  fire_hooks=False)
            self._time_tids[name] = row["_tid"]

    def next_fire_of(self, name: str) -> int | None:
        """The stored next trigger point of a rule, or None."""
        row = self._time_row(name)
        return row["next_fire"] if row is not None else None

    def all_next_fires(self) -> list[tuple[str, int]]:
        """Every (rulename, next_fire) pair — the wheel's one-time sync."""
        return [(row["rulename"], row["next_fire"])
                for row in self.db.relation(RULE_TIME).scan()]

    def due_within(self, now: int, horizon: int) -> list[tuple[int, str]]:
        """(next_fire, rulename) pairs with next_fire <= now + horizon.

        Uses the ordered index on ``next_fire`` — this is DBCRON's probe.
        """
        relation = self.db.relation(RULE_TIME)
        index = relation.indexes.get("next_fire")
        bound = now + horizon
        pairs: list[tuple[int, str]] = []
        if index is not None:
            for tid in index.lookup_range(hi=bound):
                row = relation.get(tid)
                if row is not None:
                    pairs.append((row["next_fire"], row["rulename"]))
        else:
            for row in relation.scan():
                if row["next_fire"] <= bound:
                    pairs.append((row["next_fire"], row["rulename"]))
        pairs.sort()
        return pairs
