"""Tokenizer for the Postquel-like query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.db.errors import QueryError

__all__ = ["QlTokenType", "QlToken", "ql_tokenize"]


class QlTokenType(enum.Enum):
    """Token kinds of the query language."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OP = "OP"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    EOF = "EOF"


#: Reserved words (case-insensitive); they lex as IDENT and the parser
#: inspects the lowered text.
KEYWORDS = frozenset({
    "retrieve", "append", "replace", "delete", "from", "in", "where",
    "and", "or", "not", "on", "within", "as", "true", "false", "new",
    "current",
})

_TWO_CHAR_OPS = ("<=", ">=", "!=", "||")
_ONE_CHAR_OPS = "=<>+-*/%"


@dataclass(frozen=True, slots=True)
class QlToken:
    type: QlTokenType
    text: str
    line: int
    column: int

    @property
    def lowered(self) -> str:
        return self.text.lower()


def ql_tokenize(source: str) -> list[QlToken]:
    """Tokenize query text; the list always ends with an EOF token."""
    tokens: list[QlToken] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def advance(count: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == "-" and i + 1 < n and source[i + 1] == "-":
            while i < n and source[i] != "\n":
                advance()
            continue
        start_line, start_col = line, col
        if ch == '"' or ch == "'":
            quote = ch
            advance()
            chars: list[str] = []
            while i < n and source[i] != quote:
                if source[i] == "\\" and i + 1 < n:
                    advance()
                chars.append(source[i])
                advance()
            if i >= n:
                raise QueryError("unterminated string", start_line,
                                 start_col)
            advance()
            tokens.append(QlToken(QlTokenType.STRING, "".join(chars),
                                  start_line, start_col))
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n and \
                    source[j + 1].isdigit():
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(QlToken(QlTokenType.NUMBER, text, start_line,
                                  start_col))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(QlToken(QlTokenType.IDENT, text, start_line,
                                  start_col))
            continue
        two = source[i:i + 2]
        if two in _TWO_CHAR_OPS:
            advance(2)
            tokens.append(QlToken(QlTokenType.OP, two, start_line,
                                  start_col))
            continue
        if ch == "(":
            advance()
            tokens.append(QlToken(QlTokenType.LPAREN, ch, start_line,
                                  start_col))
            continue
        if ch == ")":
            advance()
            tokens.append(QlToken(QlTokenType.RPAREN, ch, start_line,
                                  start_col))
            continue
        if ch == ",":
            advance()
            tokens.append(QlToken(QlTokenType.COMMA, ch, start_line,
                                  start_col))
            continue
        if ch == ".":
            advance()
            tokens.append(QlToken(QlTokenType.DOT, ch, start_line,
                                  start_col))
            continue
        if ch in _ONE_CHAR_OPS:
            advance()
            tokens.append(QlToken(QlTokenType.OP, ch, start_line,
                                  start_col))
            continue
        raise QueryError(f"unexpected character {ch!r}", start_line,
                         start_col)
    tokens.append(QlToken(QlTokenType.EOF, "", line, col))
    return tokens
