"""Columnar/object parity: both representations compute identical results.

Every kernel with a columnar sweep path dispatches per-operand on
``calendar.columns``, so each property builds the *same* interval list
twice — once column-backed, once object-backed — and asserts the two
representations agree for every registered listop (strict and relaxed,
interval and calendar references), the set operations (including mixed
representations), selection and ``caloperate``.  Deterministic edge
cases — empty calendars, adjacent and touching intervals — are pinned
explicitly at the bottom.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core import (
    Calendar,
    Interval,
    LAST,
    LISTOPS,
    SelectionPredicate,
    caloperate,
    foreach,
    select,
)
from repro.core import columnar

ALL_OPS = sorted(LISTOPS)

axis_point = st.integers(min_value=-60, max_value=60).filter(
    lambda t: t != 0)


@st.composite
def interval_pairs(draw, min_size=0, max_size=10):
    pairs = []
    for _ in range(draw(st.integers(min_value=min_size,
                                    max_value=max_size))):
        a = draw(axis_point)
        b = draw(axis_point)
        pairs.append((min(a, b), max(a, b)))
    pairs.sort()
    return pairs


@st.composite
def intervals(draw):
    a = draw(axis_point)
    b = draw(axis_point)
    return Interval(min(a, b), max(a, b))


def both_representations(pairs):
    """The same calendar column-backed and object-backed."""
    previous = columnar.enabled()
    try:
        columnar.set_enabled(True)
        col = Calendar.from_intervals(pairs)
        columnar.set_enabled(False)
        obj = Calendar.from_intervals(pairs)
    finally:
        columnar.set_enabled(previous)
    assert obj.columns is None
    return col, obj


class TestForeachParity:
    @settings(max_examples=60)
    @given(interval_pairs(), intervals(), st.sampled_from(ALL_OPS),
           st.booleans())
    def test_interval_reference(self, pairs, ref, op, strict):
        col, obj = both_representations(pairs)
        sweep = foreach(op, col, ref, strict=strict)
        scan = foreach(op, obj, ref, strict=strict)
        assert sweep.to_pairs() == scan.to_pairs()

    @settings(max_examples=60)
    @given(interval_pairs(), interval_pairs(min_size=1),
           st.sampled_from(ALL_OPS), st.booleans())
    def test_calendar_reference_grouping(self, pairs, ref_pairs, op,
                                         strict):
        col, obj = both_representations(pairs)
        ref_col, ref_obj = both_representations(ref_pairs)
        grouped_sweep = foreach(op, col, ref_col, strict=strict)
        grouped_scan = foreach(op, obj, ref_obj, strict=strict)
        assert grouped_sweep == grouped_scan
        # Mixed representations must agree too.
        assert foreach(op, col, ref_obj, strict=strict) == grouped_scan

    @settings(max_examples=40)
    @given(interval_pairs(), interval_pairs(min_size=1), st.booleans())
    def test_filtering_parity(self, pairs, ref_pairs, strict):
        # "intersects" is the one filtering-shaped builtin: the result
        # stays order-1 and members are kept (or clipped) when they
        # relate to *any* reference.
        col, obj = both_representations(pairs)
        ref, _ = both_representations(ref_pairs)
        kept_sweep = foreach("intersects", col, ref, strict=strict)
        kept_scan = foreach("intersects", obj, ref, strict=strict)
        assert kept_sweep.to_pairs() == kept_scan.to_pairs()


class TestSetOperationParity:
    @settings(max_examples=60)
    @given(interval_pairs(), interval_pairs(),
           st.sampled_from(["union", "intersection", "difference"]))
    def test_all_representation_mixes(self, a_pairs, b_pairs, op_name):
        a_col, a_obj = both_representations(a_pairs)
        b_col, b_obj = both_representations(b_pairs)
        expected = getattr(a_obj, op_name)(b_obj).to_pairs()
        for left, right in ((a_col, b_col), (a_col, b_obj),
                            (a_obj, b_col)):
            result = getattr(left, op_name)(right)
            assert result.to_pairs() == expected


class TestSelectionParity:
    @settings(max_examples=40)
    @given(interval_pairs(min_size=1), interval_pairs(min_size=1))
    def test_select_parity(self, pairs, ref_pairs):
        col, obj = both_representations(pairs)
        ref, _ = both_representations(ref_pairs)
        grouped_sweep = foreach("during", col, ref)
        grouped_scan = foreach("during", obj, ref)
        for predicate in (SelectionPredicate.of(1),
                          SelectionPredicate.of(1, 3),
                          SelectionPredicate.of(LAST)):
            assert (select(grouped_sweep, predicate)
                    == select(grouped_scan, predicate))


class TestCaloperateParity:
    @settings(max_examples=40)
    @given(interval_pairs(min_size=1),
           st.lists(st.integers(min_value=1, max_value=4),
                    min_size=1, max_size=3))
    def test_caloperate_parity(self, pairs, pattern):
        col, obj = both_representations(pairs)
        try:
            expected = caloperate(obj, tuple(pattern))
        except Exception as error:
            with pytest.raises(type(error)):
                caloperate(col, tuple(pattern))
            return
        assert caloperate(col, tuple(pattern)) == expected


class TestEdgeCases:
    """Pinned empty / adjacent / touching behaviours, both paths."""

    def test_empty_calendar_round_trip(self):
        col, obj = both_representations([])
        days, _ = both_representations([(1, 1), (2, 2)])
        for empty in (col, obj):
            assert (empty & days).to_pairs() == ()
            assert (empty - days).to_pairs() == ()
            assert (days - empty).to_pairs() == ((1, 1), (2, 2))
            assert (empty + days).to_pairs() == ((1, 1), (2, 2))
            assert foreach("during", empty, Interval(1, 5)).to_pairs() == ()

    def test_adjacent_intervals_stay_separate(self):
        # Adjacent (touching endpoints differ by one tick) intervals
        # never merge; only genuine overlaps do.
        col, obj = both_representations([(1, 2), (3, 4)])
        other, _ = both_representations([(1, 4)])
        for cal in (col, obj):
            union = cal + other
            assert union.to_pairs() == ((1, 4),)
            assert (cal & other).to_pairs() == ((1, 2), (3, 4))

    def test_touching_intervals(self):
        # Sharing an endpoint is an overlap of exactly one tick.
        col, obj = both_representations([(1, 5), (5, 9)])
        probe, _ = both_representations([(5, 5)])
        for cal in (col, obj):
            assert (cal & probe).to_pairs() == ((5, 5),)
            assert (cal - probe).to_pairs() == ((1, 4), (6, 9))

    def test_zero_skipping_difference(self):
        # Cutting across the (nonexistent) zero tick: the remainder
        # endpoints must skip 0 in both representations.
        col, obj = both_representations([(-3, 3)])
        cut, _ = both_representations([(-1, 1)])
        for cal in (col, obj):
            assert (cal - cut).to_pairs() == ((-3, -2), (2, 3))
