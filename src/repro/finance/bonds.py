"""Bond arithmetic under user-defined date conventions.

Demonstrates the paper's point about date semantics: the same bond gives
different accrued interest and yields depending on the day-count calendar,
so date functions must take the convention as an argument rather than
assuming the civil calendar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chrono import CivilDate, days_in_month
from repro.core.errors import CalendarError
from repro.finance.conventions import DayCountConvention, Thirty360

__all__ = ["Bond", "discount_yield", "simple_yield"]


def _add_months(date: CivilDate, months: int) -> CivilDate:
    total = date.year * 12 + (date.month - 1) + months
    year, month0 = divmod(total, 12)
    month = month0 + 1
    day = min(date.day, days_in_month(year, month))
    return CivilDate(year, month, day)


@dataclass(frozen=True)
class Bond:
    """A fixed-coupon bullet bond."""

    face: float
    coupon_rate: float          # annual, e.g. 0.08
    maturity: CivilDate
    frequency: int = 2          # coupons per year

    def __post_init__(self) -> None:
        if self.frequency not in (1, 2, 4, 12):
            raise CalendarError(
                f"unsupported coupon frequency {self.frequency}")

    # -- schedule -----------------------------------------------------------------

    def coupon_dates(self, settlement: CivilDate) -> list[CivilDate]:
        """Coupon dates strictly after ``settlement``, ending at maturity."""
        step = 12 // self.frequency
        dates: list[CivilDate] = []
        current = self.maturity
        while current > settlement:
            dates.append(current)
            current = _add_months(current, -step)
        dates.reverse()
        return dates

    def previous_coupon_date(self, settlement: CivilDate) -> CivilDate:
        """The coupon date at or before ``settlement``."""
        step = 12 // self.frequency
        current = self.maturity
        while current > settlement:
            current = _add_months(current, -step)
        return current

    def coupon_amount(self) -> float:
        """Cash paid per coupon (face * rate / frequency)."""
        return self.face * self.coupon_rate / self.frequency

    # -- valuation -----------------------------------------------------------------

    def accrued_interest(self, settlement: CivilDate,
                         convention: DayCountConvention | None = None
                         ) -> float:
        """Accrued coupon since the previous coupon date.

        The convention controls the day counting — the paper's 30/360
        months vs. actual days give different answers.
        """
        convention = convention or Thirty360()
        prev = self.previous_coupon_date(settlement)
        nxt = _add_months(prev, 12 // self.frequency)
        accrual_days = convention.days(prev, settlement)
        period_days = convention.days(prev, nxt)
        if period_days <= 0:
            return 0.0
        return self.coupon_amount() * accrual_days / period_days

    def price(self, settlement: CivilDate, annual_yield: float,
              convention: DayCountConvention | None = None) -> float:
        """Dirty price at a given annual yield (compounded per coupon)."""
        convention = convention or Thirty360()
        period_rate = annual_yield / self.frequency
        price = 0.0
        for date in self.coupon_dates(settlement):
            periods = (convention.year_fraction(settlement, date)
                       * self.frequency)
            discount = (1.0 + period_rate) ** periods
            price += self.coupon_amount() / discount
            if date == self.maturity:
                price += self.face / discount
        return price

    def yield_to_maturity(self, settlement: CivilDate, dirty_price: float,
                          convention: DayCountConvention | None = None,
                          tolerance: float = 1e-10,
                          max_iterations: int = 200) -> float:
        """Solve price(yield) = dirty_price by bisection."""
        convention = convention or Thirty360()
        lo, hi = -0.5, 5.0
        price_lo = self.price(settlement, lo, convention)
        price_hi = self.price(settlement, hi, convention)
        if not (price_hi <= dirty_price <= price_lo):
            raise CalendarError(
                f"price {dirty_price} outside solvable yield range")
        for _ in range(max_iterations):
            mid = (lo + hi) / 2.0
            price_mid = self.price(settlement, mid, convention)
            if abs(price_mid - dirty_price) < tolerance:
                return mid
            if price_mid > dirty_price:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0


def discount_yield(face: float, price: float, settlement: CivilDate,
                   maturity: CivilDate,
                   convention: DayCountConvention | None = None) -> float:
    """Bank-discount yield of a zero (e.g. a T-bill) under a convention."""
    convention = convention or Thirty360()
    fraction = convention.year_fraction(settlement, maturity)
    if fraction <= 0:
        raise CalendarError("maturity must follow settlement")
    return (face - price) / face / fraction


def simple_yield(face: float, price: float, settlement: CivilDate,
                 maturity: CivilDate,
                 convention: DayCountConvention | None = None) -> float:
    """Simple money-market yield (on price) under a convention."""
    convention = convention or Thirty360()
    fraction = convention.year_fraction(settlement, maturity)
    if fraction <= 0:
        raise CalendarError("maturity must follow settlement")
    return (face - price) / price / fraction
