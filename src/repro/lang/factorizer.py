"""Expression expansion and factorization (the parser steps of section 3.4).

The paper's parsing algorithm processes every calendar expression right to
left and

1. **expands** derived calendar names into their derivation scripts (and
   script temporaries into their defining expressions), then
2. **factorizes** the result: an expression ``{(X :Op1: Y) :Op2: Z}`` with
   ``granularity(Y) == granularity(Z)`` and ``Z ⊆ Y`` reduces to
   ``{X :Op1: Z}`` — except when both operators are ``<=``, in which case
   it reduces to ``{X :Op2: Z}``.

Containment ``Z ⊆ Y`` is established *structurally*: ``Y`` must resolve to
a full basic calendar (YEARS, MONTHS, …) and the base calendar of ``Z`` —
found by descending through selections and the left arms of foreach nodes —
must be that same basic calendar.  Any restriction (selection, label
selection, foreach filtering) of a basic calendar is a subset of it, so the
check is sound; it exactly covers the paper's two worked examples.

:func:`factorize` rewrites to a fixpoint and reports the applied rewrites
so experiments can count them (Figures 2 and 3 compare the initial and
factorized parse trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.granularity import Granularity
from repro.lang import ast
from repro.lang.defs import BasicDef, DerivedDef, ExplicitDef, Resolver
from repro.lang.errors import CircularDefinitionError

__all__ = ["expand", "factorize", "granularity_of", "base_calendar_of",
           "FactorizationResult"]


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------

def expand(node: ast.Expr, resolver: Resolver,
           temporaries: dict[str, ast.Expr] | None = None,
           _depth: int = 0) -> ast.Expr:
    """Inline derived calendar names and script temporaries.

    Only single-expression derivation scripts are inlined; calendars defined
    by multi-statement scripts (with ``if``/``while``) keep their name and
    are evaluated through the catalog at run time.
    """
    if _depth > 32:
        raise CircularDefinitionError("calendar definition expansion too "
                                      "deep (circular derivation?)")
    temporaries = temporaries or {}
    if isinstance(node, ast.Name):
        key = node.ident.lower()
        if key in temporaries:
            return expand(temporaries[key], resolver, temporaries, _depth + 1)
        definition = resolver(node.ident)
        if isinstance(definition, DerivedDef):
            script = definition.script
            if isinstance(script, ast.Script) and script.is_single_expression():
                return expand(script.single_expression(), resolver,
                              temporaries, _depth + 1)
        return node
    if isinstance(node, ast.ForEach):
        return ast.ForEach(expand(node.left, resolver, temporaries, _depth),
                           node.op,
                           expand(node.right, resolver, temporaries, _depth),
                           node.strict)
    if isinstance(node, ast.Select):
        return ast.Select(node.predicate,
                          expand(node.child, resolver, temporaries, _depth))
    if isinstance(node, ast.LabelSelect):
        return ast.LabelSelect(node.label,
                               expand(node.child, resolver, temporaries,
                                      _depth))
    if isinstance(node, ast.SetOp):
        return ast.SetOp(node.op,
                         expand(node.left, resolver, temporaries, _depth),
                         expand(node.right, resolver, temporaries, _depth))
    if isinstance(node, ast.FunCall):
        args = tuple(expand(a, resolver, temporaries, _depth)
                     if isinstance(a, ast.Expr) and not isinstance(
                         a, (ast.StringLit, ast.NumberLit))
                     else a
                     for a in node.args)
        return ast.FunCall(node.name, args)
    return node


# ---------------------------------------------------------------------------
# Granularity and base-calendar inference
# ---------------------------------------------------------------------------

def granularity_of(node: ast.Expr, resolver: Resolver) -> Granularity | None:
    """Granularity of the calendar an expression denotes, if inferable."""
    if isinstance(node, ast.Name):
        definition = resolver(node.ident)
        if isinstance(definition, BasicDef):
            return definition.granularity
        if isinstance(definition, (DerivedDef, ExplicitDef)):
            if definition.granularity is not None:
                return definition.granularity
            if isinstance(definition, DerivedDef) and \
                    isinstance(definition.script, ast.Script) and \
                    definition.script.is_single_expression():
                return granularity_of(definition.script.single_expression(),
                                      resolver)
        return None
    if isinstance(node, ast.ForEach):
        return granularity_of(node.left, resolver)
    if isinstance(node, (ast.Select, ast.LabelSelect)):
        return granularity_of(node.child, resolver)
    if isinstance(node, ast.SetOp):
        return (granularity_of(node.left, resolver)
                or granularity_of(node.right, resolver))
    if isinstance(node, ast.FunCall) and node.name == "generate" and \
            node.args and isinstance(node.args[0], ast.Name):
        try:
            return Granularity.parse(node.args[0].ident)
        except Exception:
            return None
    return None


def base_calendar_of(node: ast.Expr, resolver: Resolver) -> str | None:
    """The basic calendar an expression is carved out of, if any.

    Descends through selections and the *left* arm of foreach nodes; a plain
    basic-calendar name is its own base.  Used for the structural
    ``Z ⊆ Y`` containment check.
    """
    if isinstance(node, ast.Name):
        definition = resolver(node.ident)
        if isinstance(definition, BasicDef):
            return definition.granularity.name
        return None
    if isinstance(node, (ast.Select, ast.LabelSelect)):
        return base_calendar_of(node.child, resolver)
    if isinstance(node, ast.ForEach):
        return base_calendar_of(node.left, resolver)
    return None


def _is_full_basic(node: ast.Expr, resolver: Resolver) -> str | None:
    """Name of the basic calendar when ``node`` denotes it *unrestricted*."""
    if isinstance(node, ast.Name):
        definition = resolver(node.ident)
        if isinstance(definition, BasicDef):
            return definition.granularity.name
    return None


# ---------------------------------------------------------------------------
# Factorization
# ---------------------------------------------------------------------------

@dataclass
class FactorizationResult:
    """Outcome of :func:`factorize`."""

    expression: ast.Expr
    rewrites: list[str] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return len(self.rewrites)


def _peel_selections(node: ast.Expr) -> tuple[list, ast.Expr]:
    """Strip Select/LabelSelect wrappers, outermost first."""
    wrappers: list = []
    while isinstance(node, (ast.Select, ast.LabelSelect)):
        wrappers.append(node)
        node = node.child
    return wrappers, node


def _rewrap(wrappers: list, core: ast.Expr) -> ast.Expr:
    for wrapper in reversed(wrappers):
        if isinstance(wrapper, ast.Select):
            core = ast.Select(wrapper.predicate, core)
        else:
            core = ast.LabelSelect(wrapper.label, core)
    return core


def _selects_one(predicate) -> bool:
    """True when a ``[x]/`` predicate picks exactly one element per group."""
    items = predicate.items
    return len(items) == 1 and not isinstance(items[0], tuple)


def _is_singleton(node: ast.Expr, resolver: Resolver) -> bool:
    """Statically guaranteed to denote at most one interval.

    Anchored years (``1993/YEARS`` — year labels are globally unique)
    and single-index selections within them
    (``[1]/MONTHS:during:1993/YEARS``) qualify; anything else is
    conservatively not a singleton.
    """
    if isinstance(node, ast.LabelSelect):
        return (isinstance(node.label, int)
                and not isinstance(node.label, bool)
                and _is_full_basic(node.child, resolver) is not None
                and granularity_of(node.child, resolver)
                == Granularity.YEARS)
    if isinstance(node, ast.Select):
        if not _selects_one(node.predicate):
            return False
        child = node.child
        if isinstance(child, ast.ForEach):
            # [k]/ keeps one element per group; there is one group in
            # total when the grouping reference is itself a singleton.
            return _is_singleton(child.right, resolver)
        return _is_singleton(child, resolver)
    return False


def _try_rule(node: ast.ForEach, resolver: Resolver) -> ast.Expr | None:
    """Apply the paper's rewrite once at ``node`` if its shape matches.

    The left operand may carry selection wrappers (the paper's Example 1
    factors ``([1]/MONTHS:during:YEARS):during:Z`` with X = [1]/MONTHS):
    selections commute with replacing the grouping reference Y by its
    subset Z, so they are peeled off, the core foreach rewritten, and the
    wrappers reapplied.
    """
    wrappers, inner = _peel_selections(node.left)
    if not isinstance(inner, ast.ForEach):
        return None
    x, op1, y = inner.left, inner.op, inner.right
    op2, z = node.op, node.right
    basic_y = _is_full_basic(y, resolver)
    if basic_y is None:
        return None
    gran_y = granularity_of(y, resolver)
    gran_z = granularity_of(z, resolver)
    if gran_y is None or gran_y != gran_z:
        return None
    if base_calendar_of(z, resolver) != basic_y:
        return None
    if not _is_singleton(z, resolver):
        # Dropping the outer regrouping pass is only shape-preserving
        # when Z contributes at most one group (singleton groupings
        # normalise away): ``(Tuesdays):during:WEEKS`` must stay order-2.
        return None
    if op1 == "<=" and op2 == "<=":
        # The paper's ≤/≤ exception rewrites to ``X :Op2: Z`` — sound
        # only when both passes are strict: in relaxed mode ``<=`` does
        # not clip, so regrouping changes membership multiplicity and
        # the window of surviving days (audited empirically; see
        # tests/lang/test_factorizer.py TestLeqLeqSemanticEquivalence).
        if not (node.strict and inner.strict):
            return None
        core: ast.Expr = ast.ForEach(x, op2, z, node.strict)
    else:
        core = ast.ForEach(x, op1, z, inner.strict)
    return _rewrap(wrappers, core)


def _factorize_once(node: ast.Expr, resolver: Resolver,
                    rewrites: list[str]) -> ast.Expr:
    """One bottom-up pass; records textual descriptions of rewrites."""
    if isinstance(node, ast.ForEach):
        left = _factorize_once(node.left, resolver, rewrites)
        right = _factorize_once(node.right, resolver, rewrites)
        node = ast.ForEach(left, node.op, right, node.strict)
        rewritten = _try_rule(node, resolver)
        if rewritten is not None:
            rewrites.append(f"{node}  =>  {rewritten}")
            return rewritten
        return node
    if isinstance(node, ast.Select):
        return ast.Select(node.predicate,
                          _factorize_once(node.child, resolver, rewrites))
    if isinstance(node, ast.LabelSelect):
        return ast.LabelSelect(node.label,
                               _factorize_once(node.child, resolver,
                                               rewrites))
    if isinstance(node, ast.SetOp):
        return ast.SetOp(node.op,
                         _factorize_once(node.left, resolver, rewrites),
                         _factorize_once(node.right, resolver, rewrites))
    return node


def factorize(node: ast.Expr, resolver: Resolver,
              expand_names: bool = True,
              temporaries: dict[str, ast.Expr] | None = None,
              max_passes: int = 16) -> FactorizationResult:
    """Expand (optionally) and factorize ``node`` to a fixpoint."""
    expr = expand(node, resolver, temporaries) if expand_names else node
    rewrites: list[str] = []
    for _ in range(max_passes):
        before = expr
        expr = _factorize_once(expr, resolver, rewrites)
        if expr == before:
            break
    return FactorizationResult(expr, rewrites)
