"""Hierarchical timing-wheel scheduling for DBCRON at alerting scale.

The legacy DBCRON schedule (a binary heap refilled by periodic RULE_TIME
probes) pays ``O(log n)`` per push/pop *plus* a full catalog probe every
period — per probe it walks the RULE_TIME index, materialises a row dict
per due rule and sorts the result.  At 10⁵–10⁶ registered rules the probe
dominates everything else the daemon does.

This module replaces that schedule with a **hierarchical timing wheel**
(Varghese & Lauck): time is bucketed into slots whose span grows
geometrically per level, so arming a trigger is an O(1) list append and
advancing the clock one tick touches exactly one level-0 slot (plus an
amortised-O(1) cascade when a coarser slot's window opens).  Because the
wheel holds *arbitrarily* far futures — coarse levels plus a far-future
overflow heap — DBCRON no longer needs a probe horizon at all: rule
(re)arms go straight into a bucket and RULE_TIME becomes a durability
record instead of the scheduling hot path.

Scale-out is by **hash sharding**: rule names are distributed across N
independent shards (stable CRC32, so runs are reproducible under hash
randomisation), each shard owning its own wheel, its own lock and its
own liveness maps.  Same-tick waves are assembled per shard, which is
what lets :class:`~repro.rules.dbcron.DBCron` fire one batch per shard
across the :class:`~repro.runtime.WorkerPool`.

Staleness is handled by **generation counters**, shared with the fixed
heap schedule (see ``docs/IMPLEMENTATION_NOTES.md`` §11): every push
records a per-name generation, cancel/redefine bumps it, and dead
entries are simply skipped when their slot comes up (lazy deletion —
cancelling never searches a bucket).  A per-name *fired-at* watermark
additionally refuses re-arms at or before the last popped tick, closing
the probe-vs-in-flight-fire double-fire race of the legacy daemon.

All wheel arithmetic happens in linear coordinates (``t - 1`` for
positive axis ticks), removing the axis' zero skip exactly like
:mod:`repro.core.periodic` does.
"""

from __future__ import annotations

import heapq
import threading
import zlib

from repro.core.errors import AxisError

__all__ = ["HierarchicalWheel", "WheelSchedule", "DEFAULT_SLOTS"]

#: Default slot counts per level: 512 one-tick slots, then 64 slots of
#: 512 ticks, then 64 slots of 32 768 ticks — ~2.1M day ticks (~5 700
#: years) of native coverage before the overflow heap is touched.
DEFAULT_SLOTS = (512, 64, 64)


def _lin(tick: int) -> int:
    """Axis tick -> linear coordinate (removes the zero skip)."""
    return tick - 1 if tick > 0 else tick


def _unlin(lin: int) -> int:
    """Linear coordinate -> axis tick."""
    return lin + 1 if lin >= 0 else lin


class HierarchicalWheel:
    """One shard's wheel: slotted time, cascading, far-future overflow.

    Entries are opaque ``(seq, name, gen)`` triples keyed by a linear
    tick; the wheel never inspects them beyond the tick.  Not
    thread-safe — the owning :class:`WheelSchedule` shard serialises
    access.
    """

    def __init__(self, now_lin: int,
                 slots: tuple[int, ...] = DEFAULT_SLOTS) -> None:
        if len(slots) < 2 or any(s < 2 for s in slots):
            raise AxisError("wheel levels need at least 2 slots each")
        self._slots = tuple(slots)
        #: Per-slot tick span of each level: 1, s0, s0*s1, ...
        self._spans = [1]
        for count in slots[:-1]:
            self._spans.append(self._spans[-1] * count)
        #: Ticks covered by the slotted levels before overflow kicks in.
        self.capacity = self._spans[-1] * slots[-1]
        self._levels: list[list[list]] = [
            [[] for _ in range(count)] for count in slots]
        #: Far-future entries as a (tick, seq, name, gen) min-heap.
        self._overflow: list[tuple] = []
        #: Everything at or before the cursor has been handed out.
        self.cursor = now_lin
        #: Due entries waiting to be popped: tick -> [(seq, name, gen)].
        self._ripe: dict[int, list] = {}
        self._ripe_ticks: list[int] = []
        #: Cascade operations performed (observability).
        self.cascades = 0

    # -- arming ---------------------------------------------------------------

    def push(self, tick_lin: int, seq: int, name: str, gen: int) -> None:
        """File one entry under its linear tick (O(1) amortised)."""
        delta = tick_lin - self.cursor
        if delta <= 0:
            self._ripen(tick_lin, (seq, name, gen))
            return
        if delta >= self.capacity:
            heapq.heappush(self._overflow, (tick_lin, seq, name, gen))
            return
        # delta < capacity guarantees some level accepts the entry:
        # capacity is exactly the last level's span * slot count.
        for level in range(len(self._slots)):
            span = self._spans[level]
            if delta < span * self._slots[level]:
                slot = (tick_lin // span) % self._slots[level]
                self._levels[level][slot].append(
                    (tick_lin, seq, name, gen))
                return

    def _ripen(self, tick_lin: int, entry: tuple) -> None:
        bucket = self._ripe.get(tick_lin)
        if bucket is None:
            self._ripe[tick_lin] = [entry]
            heapq.heappush(self._ripe_ticks, tick_lin)
        else:
            bucket.append(entry)

    # -- advancing ------------------------------------------------------------

    def advance_to(self, now_lin: int) -> None:
        """Move the cursor to ``now_lin``, ripening every due entry.

        Walks tick by tick; each step is one level-0 slot take plus a
        boundary check per coarser level, so a jump of K ticks costs
        O(K) regardless of how many rules are registered.
        """
        while self.cursor < now_lin:
            self.cursor += 1
            cursor = self.cursor
            # Cascade coarse slots whose window opens at this tick,
            # coarsest first so re-pushed entries can land a level down
            # and still be re-examined by the finer cascade below.
            for level in range(len(self._slots) - 1, 0, -1):
                span = self._spans[level]
                if cursor % span == 0:
                    self._cascade(level, (cursor // span)
                                  % self._slots[level])
            if self._overflow and cursor % self._spans[-1] == 0:
                self._drain_overflow()
            slot = self._levels[0][cursor % self._slots[0]]
            if slot:
                self._levels[0][cursor % self._slots[0]] = []
                for tick_lin, seq, name, gen in slot:
                    self._ripen(tick_lin, (seq, name, gen))

    def _cascade(self, level: int, slot: int) -> None:
        entries = self._levels[level][slot]
        if not entries:
            return
        self._levels[level][slot] = []
        self.cascades += 1
        for tick_lin, seq, name, gen in entries:
            self.push(tick_lin, seq, name, gen)

    def _drain_overflow(self) -> None:
        bound = self.cursor + self.capacity
        while self._overflow and self._overflow[0][0] < bound:
            tick_lin, seq, name, gen = heapq.heappop(self._overflow)
            self.push(tick_lin, seq, name, gen)

    # -- popping --------------------------------------------------------------

    def peek_tick(self) -> int | None:
        """The earliest ripe linear tick, or None."""
        return self._ripe_ticks[0] if self._ripe_ticks else None

    def take_tick(self, tick_lin: int) -> list:
        """Remove and return the ripe ``(seq, name, gen)`` entries of a tick."""
        entries = self._ripe.pop(tick_lin, [])
        if self._ripe_ticks and self._ripe_ticks[0] == tick_lin:
            heapq.heappop(self._ripe_ticks)
        return entries

    @property
    def overflow_size(self) -> int:
        return len(self._overflow)


class _Shard:
    """One wheel plus its liveness maps, guarded by one lock."""

    __slots__ = ("wheel", "lock", "scheduled", "fired_at", "arm_counter")

    def __init__(self, now_lin: int, slots: tuple[int, ...]) -> None:
        self.wheel = HierarchicalWheel(now_lin, slots)
        self.lock = threading.Lock()
        #: Monotonic generation source: every arm gets a fresh value, so
        #: a dead wheel entry can never impersonate a later incarnation.
        self.arm_counter = 0
        #: Live armament per rule name: (axis tick, generation).  An
        #: entry in the wheel is real only while its (tick, gen) pair is
        #: recorded here — cancel/redefine just re-points or drops the
        #: record and the wheel entry dies in place.
        self.scheduled: dict[str, tuple[int, int]] = {}
        #: Last tick actually handed to the daemon per rule name; arms
        #: at or before it are refused (anti double-fire watermark).
        self.fired_at: dict[str, int] = {}


class WheelSchedule:
    """The sharded wheel behind :class:`~repro.rules.dbcron.DBCron`.

    Implements the schedule strategy protocol shared with
    :class:`~repro.rules.dbcron.HeapSchedule`:

    * ``schedule(name, tick)`` — arm (idempotent; False when refused),
    * ``cancel(name)`` — disarm and forget the fired-at watermark,
    * ``pop_wave(now)`` — the earliest due same-tick wave, as
      ``(tick, name, shard)`` triples in global arm order,
    * ``len()`` — live armed rules.

    Unlike the heap, the wheel holds the *entire* future: DBCRON's probe
    horizon does not apply (``bounded_horizon`` is False) and the only
    RULE_TIME scan ever performed is the one-time synchronisation of
    rules declared before the daemon existed.
    """

    #: The daemon must not filter arms through its probe horizon.
    bounded_horizon = False

    def __init__(self, now: int, shards: int = 1,
                 slots: tuple[int, ...] = DEFAULT_SLOTS) -> None:
        if shards < 1:
            raise AxisError("a wheel needs at least one shard")
        now_lin = _lin(now)
        self._slots = slots
        self._shards = [_Shard(now_lin, slots) for _ in range(shards)]
        self._seq = 0
        self._seq_lock = threading.Lock()

    # -- sharding -------------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._shards)

    def shard_of(self, name: str) -> int:
        """Stable shard index of a rule name (CRC32, not ``hash``)."""
        return zlib.crc32(name.encode("utf-8")) % len(self._shards)

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    # -- strategy protocol ----------------------------------------------------

    def schedule(self, name: str, tick: int) -> bool:
        """Arm ``name`` at axis ``tick``; False when dup or watermarked."""
        shard = self._shards[self.shard_of(name)]
        seq = self._next_seq()
        with shard.lock:
            current = shard.scheduled.get(name)
            if current is not None and current[0] == tick:
                return False  # already armed at this tick
            fired = shard.fired_at.get(name)
            if fired is not None and tick <= fired:
                return False  # stale re-arm at/before the last fire
            shard.arm_counter += 1
            gen = shard.arm_counter
            shard.scheduled[name] = (tick, gen)
            shard.wheel.push(_lin(tick), seq, name, gen)
        return True

    def cancel(self, name: str) -> None:
        """Disarm ``name``; its wheel entries die in place."""
        shard = self._shards[self.shard_of(name)]
        with shard.lock:
            shard.scheduled.pop(name, None)
            shard.fired_at.pop(name, None)

    def pop_wave(self, now: int) -> list[tuple[int, str, int]]:
        """All live entries of the earliest due tick, in arm order.

        Advances every shard's wheel to ``now``, filters dead entries
        (generation or armament mismatch), picks the minimum due tick
        across shards and returns that tick's entries as
        ``(tick, name, shard)`` sorted by global arm sequence — the
        same deterministic order the heap's (tick, seq) comparator
        yields.  A ripe tick whose entries all died (cancelled or
        re-pointed rules) is consumed and the next tick examined, so a
        graveyard tick never masks a live later one.
        """
        now_lin = _lin(now)
        while True:
            wave_tick: int | None = None
            # Pass 1: advance and find the earliest ripe tick across
            # shards.
            for shard in self._shards:
                with shard.lock:
                    shard.wheel.advance_to(now_lin)
                    tick_lin = shard.wheel.peek_tick()
                if tick_lin is not None and \
                        (wave_tick is None or tick_lin < wave_tick):
                    wave_tick = tick_lin
            if wave_tick is None:
                return []
            tick = _unlin(wave_tick)
            # Pass 2: take that tick's bucket from each shard, dropping
            # entries whose generation no longer matches the live
            # armament.
            wave: list[tuple[int, int, str, int]] = []
            for index, shard in enumerate(self._shards):
                with shard.lock:
                    if shard.wheel.peek_tick() != wave_tick:
                        continue
                    for seq, name, gen in shard.wheel.take_tick(wave_tick):
                        if shard.scheduled.get(name) != (tick, gen):
                            continue  # cancelled or re-pointed: dead
                        del shard.scheduled[name]
                        shard.fired_at[name] = tick
                        wave.append((seq, tick, name, index))
            if wave:
                wave.sort()
                return [(tick, name, index)
                        for _, tick, name, index in wave]
            # All entries of wave_tick were dead: try the next tick.

    def __len__(self) -> int:
        return sum(len(shard.scheduled) for shard in self._shards)

    # -- introspection --------------------------------------------------------

    def due_within(self, now: int, horizon: int) -> int:
        """Live armed rules with tick <= now + horizon (probe report)."""
        bound = now + horizon
        count = 0
        for shard in self._shards:
            with shard.lock:
                count += sum(1 for tick, _ in shard.scheduled.values()
                             if tick <= bound)
        return count

    def cascades(self) -> int:
        """Total cascade operations across all shards."""
        return sum(shard.wheel.cascades for shard in self._shards)

    def shard_lags(self, now: int) -> list[int]:
        """Per-shard scheduling lag in ticks (0 = keeping up).

        A shard's lag is how far behind ``now`` its earliest live
        armament sits; a persistently non-zero shard means its wave
        batches are not draining — the signal behind the
        ``dbcron.wheel.shard_lag_ticks`` histogram.
        """
        lags: list[int] = []
        for shard in self._shards:
            with shard.lock:
                earliest = min(
                    (tick for tick, _ in shard.scheduled.values()),
                    default=None)
            lags.append(max(0, now - earliest)
                        if earliest is not None else 0)
        return lags

    def shard_sizes(self) -> list[int]:
        """Live armed rules per shard (rebalances as rules drop)."""
        return [len(shard.scheduled) for shard in self._shards]

    def overflow_size(self) -> int:
        """Far-future entries parked beyond the slotted capacity."""
        return sum(shard.wheel.overflow_size for shard in self._shards)

    def stats(self) -> dict:
        """Snapshot for ``Session.rules.stats()`` / the CLI."""
        sizes = self.shard_sizes()
        return {
            "kind": "wheel",
            "shards": len(self._shards),
            "scheduled": sum(sizes),
            "shard_sizes": sizes,
            "cascades": self.cascades(),
            "overflow": self.overflow_size(),
            "slots": list(self._slots),
        }
