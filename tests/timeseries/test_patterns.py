"""Unit tests for pattern selection (E13: future-work section 6a)."""

import pytest

from repro.core import Calendar
from repro.db.errors import ExecutionError
from repro.timeseries import (
    Pattern,
    RegularTimeSeries,
    decreases,
    increases,
    local_maxima,
    local_minima,
    match_pattern,
    runs_of,
)


@pytest.fixture()
def prices():
    days = Calendar.from_intervals([(d, d) for d in range(1, 11)])
    #          t=1   2    3    4    5    6    7    8    9   10
    values = [100, 102, 101, 105, 107, 107, 103, 104, 108, 106]
    return RegularTimeSeries(days, values, name="close")


class TestPaperExample:
    def test_successive_increase(self, prices):
        """'Time points at which two successive closes showed an
        increase' — the S_t < Next(S_t) pattern, verbatim."""
        points = increases(prices)
        assert points == [1, 3, 4, 7, 8]

    def test_increase_equals_text_pattern(self, prices):
        assert increases(prices) == match_pattern(prices, "s(t) < s(t+1)")


class TestTextPatterns:
    def test_decrease(self, prices):
        assert decreases(prices) == [2, 6, 9]

    def test_flat(self, prices):
        assert match_pattern(prices, "s(t) = s(t+1)") == [5]

    def test_jump_threshold(self, prices):
        assert match_pattern(prices, "s(t+1) - s(t) > 3") == [3, 8]

    def test_negative_offset(self, prices):
        assert match_pattern(prices, "s(t) > s(t-1)") == [2, 4, 5, 8, 9]

    def test_timepoint_variable_available(self, prices):
        assert match_pattern(prices, "s(t) > 100 and t > 8") == [9, 10]

    def test_abs_function(self, prices):
        assert match_pattern(prices, "abs(s(t+1) - s(t)) >= 4") == \
            [3, 6, 8]

    def test_window_clipped_at_boundaries(self, prices):
        # A three-point pattern cannot match the first or last instant.
        points = match_pattern(prices, "s(t-1) < s(t) and s(t) < s(t+1)")
        assert 1 not in points and 10 not in points


class TestCombinators:
    def test_local_maxima(self, prices):
        assert local_maxima(prices) == [2, 9]

    def test_local_minima(self, prices):
        assert local_minima(prices) == [3, 7]

    def test_runs_of(self, prices):
        # Two consecutive increases anchor at t where S_t<S_{t+1}<S_{t+2}.
        assert runs_of(prices, "s(t) < s(t+1)", 2) == [3, 7]

    def test_runs_of_length_one(self, prices):
        assert runs_of(prices, "s(t) < s(t+1)", 1) == increases(prices)


class TestPatternParsing:
    def test_offsets_collected(self):
        pattern = Pattern.parse("s(t-2) < s(t) and s(t) < s(t+3)")
        assert pattern.offsets == (-2, 0, 3)

    def test_bad_index_expression(self):
        with pytest.raises(ExecutionError):
            Pattern.parse("s(q) < 1")

    def test_bad_arity(self):
        with pytest.raises(ExecutionError):
            Pattern.parse("s(t, t) < 1")

    def test_unknown_function(self, prices):
        with pytest.raises(ExecutionError):
            match_pattern(prices, "median(s(t)) > 1")

    def test_unknown_variable(self, prices):
        with pytest.raises(ExecutionError):
            match_pattern(prices, "s(t) < x")
