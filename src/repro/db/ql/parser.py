"""Parser for the Postquel-like query language.

Grammar (informal):

.. code-block:: text

   statement := retrieve | append | replace | delete
   retrieve  := 'retrieve' '(' target (',' target)* ')'
                ['from' rangevar (',' rangevar)*]
                ['where' expr]
                ['on' (IDENT | STRING)]
   append    := 'append' IDENT '(' IDENT '=' expr (',' IDENT '=' expr)* ')'
   replace   := 'replace' IDENT '(' assignments ')'
                ['from' rangevars] ['where' expr]
   delete    := 'delete' IDENT ['from' rangevars] ['where' expr]
   target    := expr ['as' IDENT]
   rangevar  := IDENT 'in' IDENT
   expr      := disjunction of conjunctions of (not)? comparisons;
                comparison ops: = != < <= > >= within
                additive ops: + - ||   multiplicative: * / %
   primary   := NUMBER | STRING | true | false | IDENT '.' IDENT
              | IDENT '(' args ')' | IDENT | '(' expr ')'

``x within y`` is the calendar-membership operator: ``x`` is an abstime
tick and ``y`` a calendar value, a calendar name (string) or an expression
producing one.
"""

from __future__ import annotations

from repro.db.errors import QueryError
from repro.db.ql.ast import (
    Append,
    BinOp,
    ColumnRef,
    Const,
    CreateIndex,
    CreateTable,
    DefineCalendar,
    DefineRule,
    Delete,
    DropRule,
    DropTable,
    FuncCall,
    QlExpr,
    RangeVar,
    Replace,
    Retrieve,
    Statement,
    Target,
    UnOp,
)
from repro.db.ql.lexer import QlToken, QlTokenType, ql_tokenize

__all__ = ["QlParser", "parse_statement", "parse_ql_expression"]

_T = QlTokenType

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class QlParser:
    """A single-use recursive-descent parser over one statement."""

    def __init__(self, source: str) -> None:
        self._tokens = ql_tokenize(source)
        self._pos = 0

    # -- plumbing ----------------------------------------------------------------

    def _peek(self, offset: int = 0) -> QlToken:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> QlToken:
        token = self._tokens[self._pos]
        if token.type is not _T.EOF:
            self._pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.type is _T.IDENT and token.lowered in words

    def _expect_keyword(self, word: str) -> QlToken:
        token = self._peek()
        if not self._at_keyword(word):
            raise QueryError(f"expected {word!r}, found {token.text!r}",
                             token.line, token.column)
        return self._advance()

    def _expect(self, token_type: QlTokenType, what: str) -> QlToken:
        token = self._peek()
        if token.type is not token_type:
            raise QueryError(f"expected {what}, found "
                             f"{token.text or 'end of input'!r}",
                             token.line, token.column)
        return self._advance()

    def _expect_op(self, op: str) -> QlToken:
        token = self._peek()
        if token.type is not _T.OP or token.text != op:
            raise QueryError(f"expected {op!r}, found {token.text!r}",
                             token.line, token.column)
        return self._advance()

    def _ident(self, what: str) -> str:
        return self._expect(_T.IDENT, what).text

    # -- statements ----------------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse exactly one statement (rejects trailing input)."""
        token = self._peek()
        if token.type is not _T.IDENT:
            raise QueryError("expected a statement", token.line,
                             token.column)
        keyword = token.lowered
        if keyword == "retrieve":
            stmt = self._retrieve()
        elif keyword == "append":
            stmt = self._append()
        elif keyword == "replace":
            stmt = self._replace()
        elif keyword == "delete":
            stmt = self._delete()
        elif keyword == "create":
            stmt = self._create()
        elif keyword == "drop":
            stmt = self._drop()
        elif keyword == "define":
            stmt = self._define()
        else:
            raise QueryError(f"unknown statement {token.text!r}",
                             token.line, token.column)
        trailing = self._peek()
        if trailing.type is not _T.EOF:
            raise QueryError(f"unexpected trailing input {trailing.text!r}",
                             trailing.line, trailing.column)
        return stmt

    def _retrieve(self) -> Retrieve:
        self._expect_keyword("retrieve")
        unique = False
        if self._at_keyword("unique"):
            self._advance()
            unique = True
        into = None
        if self._at_keyword("into"):
            self._advance()
            into = self._ident("target relation")
        self._expect(_T.LPAREN, "'('")
        targets = [self._target()]
        while self._peek().type is _T.COMMA:
            self._advance()
            targets.append(self._target())
        self._expect(_T.RPAREN, "')'")
        range_vars = self._from_clause()
        where = self._where_clause()
        on_calendar = None
        if self._at_keyword("on"):
            self._advance()
            token = self._peek()
            if token.type in (_T.IDENT, _T.STRING):
                self._advance()
                on_calendar = token.text
            else:
                raise QueryError("expected a calendar name after 'on'",
                                 token.line, token.column)
        order_by = self._order_by_clause()
        return Retrieve(tuple(targets), tuple(range_vars), where,
                        on_calendar, unique=unique, order_by=order_by,
                        into=into)

    def _order_by_clause(self) -> tuple:
        if not self._at_keyword("order"):
            return ()
        self._advance()
        self._expect_keyword("by")
        keys = []
        while True:
            expr = self._expression()
            ascending = True
            if self._at_keyword("asc"):
                self._advance()
            elif self._at_keyword("desc"):
                self._advance()
                ascending = False
            keys.append((expr, ascending))
            if self._peek().type is _T.COMMA:
                self._advance()
                continue
            return tuple(keys)

    def _target(self) -> Target:
        expr = self._expression()
        alias = None
        if self._at_keyword("as"):
            self._advance()
            alias = self._ident("target alias")
        return Target(expr, alias)

    def _from_clause(self) -> list[RangeVar]:
        range_vars: list[RangeVar] = []
        if self._at_keyword("from"):
            self._advance()
            range_vars.append(self._range_var())
            while self._peek().type is _T.COMMA:
                self._advance()
                range_vars.append(self._range_var())
        return range_vars

    def _range_var(self) -> RangeVar:
        var = self._ident("range variable")
        self._expect_keyword("in")
        relation = self._ident("relation name")
        as_of = None
        if self._at_keyword("as") and self._peek(1).lowered == "of":
            self._advance()
            self._advance()
            as_of = self._primary()
        return RangeVar(var, relation, as_of)

    def _where_clause(self) -> QlExpr | None:
        if self._at_keyword("where"):
            self._advance()
            return self._expression()
        return None

    def _append(self) -> Append:
        self._expect_keyword("append")
        relation = self._ident("relation name")
        assignments = self._assignment_list()
        return Append(relation, assignments)

    def _replace(self) -> Replace:
        self._expect_keyword("replace")
        var = self._ident("tuple variable")
        assignments = self._assignment_list()
        range_vars = self._from_clause()
        where = self._where_clause()
        return Replace(var, assignments, tuple(range_vars), where)

    def _delete(self) -> Delete:
        self._expect_keyword("delete")
        var = self._ident("tuple variable")
        range_vars = self._from_clause()
        where = self._where_clause()
        return Delete(var, tuple(range_vars), where)

    def _assignment_list(self) -> tuple:
        self._expect(_T.LPAREN, "'('")
        assignments = [self._assignment()]
        while self._peek().type is _T.COMMA:
            self._advance()
            assignments.append(self._assignment())
        self._expect(_T.RPAREN, "')'")
        return tuple(assignments)

    def _assignment(self) -> tuple:
        column = self._ident("column name")
        self._expect_op("=")
        return (column, self._expression())

    def _create(self) -> Statement:
        self._expect_keyword("create")
        if self._at_keyword("table"):
            self._advance()
            name = self._ident("relation name")
            self._expect(_T.LPAREN, "'('")
            columns = [self._column_def()]
            while self._peek().type is _T.COMMA:
                self._advance()
                columns.append(self._column_def())
            self._expect(_T.RPAREN, "')'")
            key: tuple = ()
            valid_time = None
            while True:
                if self._at_keyword("key"):
                    self._advance()
                    self._expect(_T.LPAREN, "'('")
                    cols = [self._ident("key column")]
                    while self._peek().type is _T.COMMA:
                        self._advance()
                        cols.append(self._ident("key column"))
                    self._expect(_T.RPAREN, "')'")
                    key = tuple(cols)
                elif self._at_keyword("valid"):
                    self._advance()
                    self._expect_keyword("time")
                    valid_time = self._ident("valid-time column")
                else:
                    break
            return CreateTable(name, tuple(columns), key, valid_time)
        if self._at_keyword("index"):
            self._advance()
            self._expect_keyword("on")
            relation = self._ident("relation name")
            self._expect(_T.LPAREN, "'('")
            column = self._ident("column name")
            self._expect(_T.RPAREN, "')'")
            return CreateIndex(relation, column)
        token = self._peek()
        raise QueryError(f"expected 'table' or 'index' after create, "
                         f"found {token.text!r}", token.line, token.column)

    def _column_def(self) -> tuple:
        name = self._ident("column name")
        type_name = self._ident("type name")
        return (name, type_name)

    def _drop(self) -> Statement:
        self._expect_keyword("drop")
        if self._at_keyword("table"):
            self._advance()
            return DropTable(self._ident("relation name"))
        if self._at_keyword("rule"):
            self._advance()
            return DropRule(self._ident("rule name"))
        token = self._peek()
        raise QueryError(f"expected 'table' or 'rule' after drop, "
                         f"found {token.text!r}", token.line, token.column)

    def _define(self) -> Statement:
        self._expect_keyword("define")
        if self._at_keyword("calendar"):
            self._advance()
            name = self._ident("calendar name")
            script = None
            values = None
            if self._at_keyword("as"):
                self._advance()
                script = self._expect(_T.STRING, "derivation script").text
            elif self._at_keyword("values"):
                self._advance()
                values = self._value_pairs()
            else:
                token = self._peek()
                raise QueryError(
                    "expected 'as \"<script>\"' or 'values ((lo,hi),...)'",
                    token.line, token.column)
            granularity = None
            if self._at_keyword("granularity"):
                self._advance()
                granularity = self._ident("granularity name")
            return DefineCalendar(name, script, granularity, values)
        if self._at_keyword("rule"):
            self._advance()
            return self._define_rule()
        token = self._peek()
        raise QueryError(f"expected 'calendar' or 'rule' after define, "
                         f"found {token.text!r}", token.line, token.column)

    def _value_pairs(self) -> tuple:
        self._expect(_T.LPAREN, "'(' before value list")
        pairs = [self._value_pair()]
        while self._peek().type is _T.COMMA:
            self._advance()
            pairs.append(self._value_pair())
        self._expect(_T.RPAREN, "')' after value list")
        return tuple(pairs)

    def _value_pair(self) -> tuple:
        self._expect(_T.LPAREN, "'(' before interval pair")
        lo = self._signed_int()
        self._expect(_T.COMMA, "',' between interval endpoints")
        hi = self._signed_int()
        self._expect(_T.RPAREN, "')' after interval pair")
        return (lo, hi)

    def _signed_int(self) -> int:
        negative = False
        token = self._peek()
        if token.type is _T.OP and token.text == "-":
            self._advance()
            negative = True
        number = self._expect(_T.NUMBER, "integer")
        value = int(number.text)
        return -value if negative else value

    def _define_rule(self) -> DefineRule:
        name = self._ident("rule name")
        self._expect_keyword("on")
        event = relation = calendar = None
        condition = None
        if self._at_keyword("calendar"):
            self._advance()
            calendar = self._expect(_T.STRING,
                                    "calendar expression string").text
        else:
            token = self._expect(_T.IDENT, "event kind")
            event = token.lowered
            self._expect_keyword("to")
            relation = self._ident("relation name")
            if self._at_keyword("where"):
                self._advance()
                condition = self._expression()
        self._expect_keyword("do")
        self._expect(_T.LPAREN, "'(' before rule actions")
        actions = [self.parse_substatement()]
        while self._at_keyword("retrieve", "append", "replace", "delete"):
            actions.append(self.parse_substatement())
        self._expect(_T.RPAREN, "')' after rule actions")
        return DefineRule(name, event, relation, calendar, condition,
                          tuple(actions))

    def parse_substatement(self) -> Statement:
        """Parse one nested statement (rule action), no EOF check."""
        token = self._peek()
        keyword = token.lowered if token.type is _T.IDENT else ""
        if keyword == "retrieve":
            return self._retrieve()
        if keyword == "append":
            return self._append()
        if keyword == "replace":
            return self._replace()
        if keyword == "delete":
            return self._delete()
        raise QueryError(f"expected a rule action statement, found "
                         f"{token.text!r}", token.line, token.column)

    # -- expressions ---------------------------------------------------------------

    def _expression(self) -> QlExpr:
        return self._or_expr()

    def _or_expr(self) -> QlExpr:
        left = self._and_expr()
        while self._at_keyword("or"):
            self._advance()
            left = BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> QlExpr:
        left = self._not_expr()
        while self._at_keyword("and"):
            self._advance()
            left = BinOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> QlExpr:
        if self._at_keyword("not"):
            self._advance()
            return UnOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> QlExpr:
        left = self._additive()
        token = self._peek()
        if token.type is _T.OP and token.text in _COMPARISON_OPS:
            self._advance()
            return BinOp(token.text, left, self._additive())
        if self._at_keyword("within"):
            self._advance()
            return BinOp("within", left, self._additive())
        return left

    def _additive(self) -> QlExpr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type is _T.OP and token.text in ("+", "-", "||"):
                self._advance()
                left = BinOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> QlExpr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.type is _T.OP and token.text in ("*", "/", "%"):
                self._advance()
                left = BinOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> QlExpr:
        token = self._peek()
        if token.type is _T.OP and token.text == "-":
            self._advance()
            return UnOp("-", self._unary())
        return self._primary()

    def _primary(self) -> QlExpr:
        token = self._peek()
        if token.type is _T.NUMBER:
            self._advance()
            text = token.text
            return Const(float(text) if "." in text else int(text))
        if token.type is _T.STRING:
            self._advance()
            return Const(token.text)
        if token.type is _T.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(_T.RPAREN, "')'")
            return expr
        if token.type is _T.IDENT:
            if token.lowered == "true":
                self._advance()
                return Const(True)
            if token.lowered == "false":
                self._advance()
                return Const(False)
            self._advance()
            name = token.text
            if self._peek().type is _T.DOT:
                self._advance()
                column = self._ident("column name")
                return ColumnRef(name, column)
            if self._peek().type is _T.LPAREN:
                self._advance()
                args: list[QlExpr] = []
                if self._peek().type is not _T.RPAREN:
                    args.append(self._expression())
                    while self._peek().type is _T.COMMA:
                        self._advance()
                        args.append(self._expression())
                self._expect(_T.RPAREN, "')'")
                return FuncCall(name.lower(), tuple(args))
            return ColumnRef(name, "")  # bare variable, resolved later
        raise QueryError(f"expected an expression, found "
                         f"{token.text or 'end of input'!r}",
                         token.line, token.column)


def parse_statement(source: str) -> Statement:
    """Parse one Postquel statement from text."""
    return QlParser(source).parse_statement()


def parse_ql_expression(source: str) -> QlExpr:
    """Parse a standalone query-language expression."""
    parser = QlParser(source)
    expr = parser._expression()
    trailing = parser._peek()
    if trailing.type is not _T.EOF:
        raise QueryError(f"unexpected trailing input {trailing.text!r}",
                         trailing.line, trailing.column)
    return expr
