"""Parallel DBCRON firing: same-tick waves, determinism, metrics.

Rules due at the *same* fire tick form a wave and may fire on the worker
pool concurrently; waves for different ticks stay strictly ordered, so
the observable firing sequence matches the sequential daemon exactly.
"""

import threading

import pytest

from repro.db import Database
from repro.obs.instrument import Instrumentation
from repro.rules import DBCron, RuleManager, SimulatedClock
from repro.runtime import WorkerPool
from repro.session import Session


@pytest.fixture()
def parallel_cron(db):
    """(db, manager, clock, cron) whose cron owns a 4-thread pool."""
    manager = RuleManager(db)
    clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
    pool = WorkerPool(4)
    cron = DBCron(manager, clock, period=7, pool=pool)
    yield db, manager, clock, cron
    pool.close()


def _define(manager, clock, name, expr, log):
    manager.define_temporal_rule(
        name, expr,
        callback=lambda d, t, n=name: log.append((n, t)),
        after=clock.now)


class TestSameTickWave:
    def test_same_tick_rules_all_fire_once(self, parallel_cron):
        db, manager, clock, cron = parallel_cron
        log = []
        # Six rules sharing one trigger calendar: a single wave per tick.
        for i in range(6):
            _define(manager, clock, f"tue_{i}",
                    "[2]/DAYS:during:WEEKS", log)
        cron.run_until(db.system.day_of("Feb 1 1993"))
        by_rule = {}
        for name, tick in log:
            by_rule.setdefault(name, []).append(tick)
        assert len(by_rule) == 6
        ticks = list(by_rule.values())
        # Every rule fired on exactly the same tick sequence, once each.
        assert all(t == ticks[0] for t in ticks)
        assert len(ticks[0]) == len(set(ticks[0]))

    def test_wave_actually_runs_on_workers(self, parallel_cron):
        db, manager, clock, cron = parallel_cron
        threads = set()
        for i in range(4):
            manager.define_temporal_rule(
                f"r{i}", "[2]/DAYS:during:WEEKS",
                callback=lambda d, t: threads.add(
                    threading.current_thread().name),
                after=clock.now)
        cron.run_until(clock.now + 7)
        assert any(name.startswith("repro-worker") for name in threads)


class TestParallelEqualsSequential:
    EXPRS = [
        "[2]/DAYS:during:WEEKS",          # Tuesdays
        "[5]/DAYS:during:WEEKS",          # Fridays
        "[1]/DAYS:during:MONTHS",         # month firsts
        "[15]/DAYS:during:MONTHS",        # mid-month
    ]

    def _run(self, registry, pool):
        # A fresh database per run: rule state lives in its tables.
        db = Database(calendars=registry)
        manager = RuleManager(db)
        clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
        cron = DBCron(manager, clock, period=7, pool=pool)
        log = []
        for i, expr in enumerate(self.EXPRS):
            _define(manager, clock, f"rule_{i}", expr, log)
        cron.run_until(db.system.day_of("Apr 1 1993"))
        return log, cron.stats

    def test_fire_sets_and_tick_order_match(self, registry):
        sequential_log, seq_stats = self._run(registry, WorkerPool(1))
        pool = WorkerPool(4)
        try:
            parallel_log, par_stats = self._run(registry, pool)
        finally:
            pool.close()
        assert par_stats.fires == seq_stats.fires
        # Same (rule, tick) multiset...
        assert sorted(parallel_log) == sorted(sequential_log)
        # ...and the tick sequence is still monotone (waves in order).
        ticks = [tick for _, tick in parallel_log]
        assert ticks == sorted(ticks)


class TestMetricsUnderParallelFiring:
    def test_fire_seconds_counted_per_fire(self):
        # A 4-worker session: the cron fires waves on the session pool.
        session = Session("Jan 1 1987", holiday_years=(1993, 1994),
                          workers=4, instrumentation=Instrumentation())
        log = []
        for i in range(3):
            _define(session.manager, session.clock, f"m{i}",
                    "[2]/DAYS:during:WEEKS", log)
        session.cron.run_until(session.system.day_of("Feb 1 1993"))
        assert log
        snap = session.metrics()
        assert snap["dbcron.fires"] == len(log)
        assert snap["dbcron.fire_seconds"]["count"] == len(log)
