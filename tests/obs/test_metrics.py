"""Metrics instruments: counters, gauges, histograms, the registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_add_and_reset(self):
        g = Gauge("depth")
        g.set(7)
        assert g.value == 7
        g.add(-3)
        assert g.value == 4
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_default_bounds_are_sorted_and_span_1us_to_10s(self):
        assert list(DEFAULT_LATENCY_BOUNDS) == \
            sorted(DEFAULT_LATENCY_BOUNDS)
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(10.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_count_sum_min_max(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(0.006)
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(0.003)
        assert s["mean"] == pytest.approx(0.002)

    def test_quantile_is_conservative_upper_bound(self):
        h = Histogram("h")
        for _ in range(100):
            h.observe(0.0009)  # falls in the (0.0005, 0.001] bucket
        # The estimate is the bucket's upper bound, clamped to max.
        assert h.quantile(0.5) == pytest.approx(0.0009)
        h.observe(5.0)
        assert h.quantile(0.99) <= 5.0

    def test_empty_quantile_is_none(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        assert h.summary()["p50"] is None

    def test_quantile_range_checked(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_reset(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.summary()["max"] is None


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_snapshot_maps_values_and_summaries(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert reg.get("a") is not None
        assert reg.get("missing") is None

    def test_reset_all(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.snapshot()["c"] == 0
        assert reg.snapshot()["h"]["count"] == 0
