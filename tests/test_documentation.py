"""Documentation quality gates.

Every public module, class, function and method in :mod:`repro` must
carry a docstring (deliverable: "doc comments on every public item"),
and the repo-level documents must exist and mention what they promise.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their source
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module.__name__} has no module docstring"

    @staticmethod
    def _inherited_doc(cls, attr_name) -> bool:
        """True when a base class documents the same method (an override
        inherits its contract)."""
        for base in cls.__mro__[1:]:
            base_attr = getattr(base, attr_name, None)
            if base_attr is not None and getattr(base_attr, "__doc__",
                                                 None):
                return True
        return False

    @pytest.mark.parametrize(
        "module", MODULES, ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, member in _public_members(module):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(member):
                for attr_name, attr in vars(member).items():
                    if attr_name.startswith("_"):
                        continue
                    if not inspect.isfunction(attr):
                        continue
                    if attr.__doc__ and attr.__doc__.strip():
                        continue
                    if self._inherited_doc(member, attr_name):
                        continue
                    undocumented.append(
                        f"{module.__name__}.{name}.{attr_name}")
        assert not undocumented, \
            "undocumented public items:\n  " + "\n  ".join(undocumented)


class TestRepoDocuments:
    @pytest.mark.parametrize("filename,needle", [
        ("README.md", "ICDE 1994"),
        ("DESIGN.md", "system inventory"),
        ("EXPERIMENTS.md", "Figure"),
        ("docs/LANGUAGE.md", "calendar expression language"),
        ("docs/IMPLEMENTATION_NOTES.md", "padding"),
    ])
    def test_document_exists_with_content(self, filename, needle):
        path = REPO_ROOT / filename
        assert path.exists(), f"{filename} is missing"
        text = path.read_text(encoding="utf-8")
        assert needle.lower() in text.lower(), \
            f"{filename} does not mention {needle!r}"

    def test_every_example_has_module_docstring_and_main(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 8
        for path in examples:
            text = path.read_text(encoding="utf-8")
            assert text.lstrip().startswith('"""'), \
                f"{path.name} lacks a module docstring"
            assert "def main()" in text, f"{path.name} lacks main()"
            assert '__main__' in text, f"{path.name} is not runnable"

    def test_design_lists_every_package(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for package in ("repro.core", "repro.lang", "repro.catalog",
                        "repro.db", "repro.rules", "repro.timeseries",
                        "repro.finance", "repro.multical",
                        "repro.interop", "repro.obs", "repro.session",
                        "repro.errors"):
            assert package in design, f"DESIGN.md misses {package}"
