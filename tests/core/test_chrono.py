"""Unit tests for the proleptic-Gregorian chronology."""

import datetime

import pytest

from repro.core import ChronologyError, CivilDate, Epoch, parse_date, weekday
from repro.core.chrono import (
    civil_from_rata_die,
    days_in_month,
    days_in_year,
    is_leap_year,
    rata_die,
)


class TestLeapYears:
    def test_ordinary_leap(self):
        assert is_leap_year(1988)
        assert is_leap_year(1992)

    def test_non_leap(self):
        assert not is_leap_year(1987)
        assert not is_leap_year(1993)

    def test_century_rule(self):
        assert not is_leap_year(1900)
        assert is_leap_year(2000)
        assert not is_leap_year(2100)

    def test_year_lengths(self):
        assert days_in_year(1987) == 365
        assert days_in_year(1988) == 366


class TestMonthLengths:
    def test_february(self):
        assert days_in_month(1988, 2) == 29
        assert days_in_month(1987, 2) == 28

    def test_thirty_day_months(self):
        for m in (4, 6, 9, 11):
            assert days_in_month(1993, m) == 30

    def test_bad_month(self):
        with pytest.raises(ChronologyError):
            days_in_month(1993, 13)


class TestCivilDate:
    def test_valid(self):
        d = CivilDate(1993, 11, 19)
        assert (d.year, d.month, d.day) == (1993, 11, 19)

    def test_invalid_day(self):
        with pytest.raises(ChronologyError):
            CivilDate(1993, 2, 29)

    def test_ordering(self):
        assert CivilDate(1993, 1, 2) < CivilDate(1993, 1, 3)
        assert CivilDate(1992, 12, 31) < CivilDate(1993, 1, 1)

    def test_str_matches_paper_spelling(self):
        assert str(CivilDate(1987, 1, 1)) == "Jan 1 1987"

    def test_replace(self):
        assert CivilDate(1993, 5, 31).replace(day=28) == \
            CivilDate(1993, 5, 28)


class TestRataDie:
    def test_epoch_1970(self):
        assert rata_die(CivilDate(1970, 1, 1)) == 0

    def test_roundtrip_against_datetime(self):
        base = datetime.date(1970, 1, 1)
        for offset in [-100000, -365, -1, 0, 1, 59, 365, 10000, 100000]:
            d = base + datetime.timedelta(days=offset)
            civil = CivilDate(d.year, d.month, d.day)
            assert rata_die(civil) == offset
            assert civil_from_rata_die(offset) == civil


class TestWeekday:
    def test_known_weekdays(self):
        # Jan 1 1993 was a Friday; Jan 1 1987 a Thursday.
        assert weekday(CivilDate(1993, 1, 1)) == 5
        assert weekday(CivilDate(1987, 1, 1)) == 4

    def test_matches_datetime(self):
        for ymd in [(1993, 11, 19), (2000, 2, 29), (1987, 7, 4)]:
            assert weekday(CivilDate(*ymd)) == \
                datetime.date(*ymd).isoweekday()


class TestParseDate:
    def test_paper_spelling(self):
        assert parse_date("Jan 1 1987") == CivilDate(1987, 1, 1)
        assert parse_date("Nov 19 1993") == CivilDate(1993, 11, 19)

    def test_full_month_and_comma(self):
        assert parse_date("January 1, 1987") == CivilDate(1987, 1, 1)

    def test_iso(self):
        assert parse_date("1993-11-19") == CivilDate(1993, 11, 19)

    def test_bad_month(self):
        with pytest.raises(ChronologyError):
            parse_date("Janx 1 1987")

    def test_garbage(self):
        with pytest.raises(ChronologyError):
            parse_date("tomorrow")


class TestEpoch:
    def test_day_one_is_epoch_date(self):
        epoch = Epoch.of("Jan 1 1987")
        assert epoch.day_number("Jan 1 1987") == 1

    def test_no_day_zero(self):
        epoch = Epoch.of("Jan 1 1987")
        assert epoch.day_number("Dec 31 1986") == -1
        with pytest.raises(ChronologyError):
            epoch.date_of(0)

    def test_paper_generate_anchors(self):
        # Day 366 is Jan 1 1988; day 1827 is Jan 1 1992 (paper, 3.2).
        epoch = Epoch.of("Jan 1 1987")
        assert epoch.day_number("Jan 1 1988") == 366
        assert epoch.day_number("Jan 1 1992") == 1827
        assert epoch.day_number("Jan 3 1992") == 1829

    def test_date_of_roundtrip(self):
        epoch = Epoch.of("Jan 1 1987")
        for day in [-400, -1, 1, 59, 366, 1829, 5000]:
            assert epoch.day_number(epoch.date_of(day)) == day

    def test_weekday_of(self):
        epoch = Epoch.of("Jan 1 1993")
        assert epoch.weekday_of(1) == 5       # Friday
        assert epoch.weekday_of(4) == 1       # Monday Jan 4
        assert epoch.weekday_of(-4) == 1      # Monday Dec 28 1992

    def test_days_of_year_and_month(self):
        epoch = Epoch.of("Jan 1 1987")
        assert epoch.days_of_year(1987) == (1, 365)
        assert epoch.days_of_year(1988) == (366, 731)
        assert epoch.days_of_month(1987, 2) == (32, 59)

    def test_add_and_diff_days(self):
        epoch = Epoch.of("Jan 1 1987")
        assert epoch.add_days(-1, 1) == 1
        assert epoch.diff_days(1, -1) == 1

    def test_iter_days_skips_zero(self):
        epoch = Epoch.of("Jan 1 1987")
        assert list(epoch.iter_days(-2, 2)) == [-2, -1, 1, 2]
