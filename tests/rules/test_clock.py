"""Unit tests for the simulated clock."""

import pytest

from repro.core import AxisError
from repro.rules import SimulatedClock


class TestClock:
    def test_starts_at_given_tick(self):
        assert SimulatedClock(now=100).now == 100

    def test_cannot_start_at_zero(self):
        with pytest.raises(AxisError):
            SimulatedClock(now=0)

    def test_advance(self):
        clock = SimulatedClock(now=1)
        assert clock.advance(3) == 4

    def test_advance_skips_zero(self):
        clock = SimulatedClock(now=-2)
        assert clock.advance(2) == 1

    def test_advance_zero_is_noop(self):
        clock = SimulatedClock(now=5)
        listener_calls = []
        clock.subscribe(listener_calls.append)
        clock.advance(0)
        assert clock.now == 5 and listener_calls == []

    def test_no_backwards(self):
        clock = SimulatedClock(now=5)
        with pytest.raises(AxisError):
            clock.advance(-1)
        with pytest.raises(AxisError):
            clock.advance_to(3)

    def test_advance_to(self):
        clock = SimulatedClock(now=5)
        assert clock.advance_to(9) == 9

    def test_advance_to_zero_rejected(self):
        clock = SimulatedClock(now=-5)
        with pytest.raises(AxisError):
            clock.advance_to(0)

    def test_listeners_notified(self):
        clock = SimulatedClock(now=1)
        seen = []
        clock.subscribe(seen.append)
        clock.advance(2)
        clock.advance_to(10)
        assert seen == [3, 10]
