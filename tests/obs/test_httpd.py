"""The embedded telemetry HTTP endpoint, scraped over real sockets."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, TelemetryServer
from repro.obs.instrument import Instrumentation
from repro.session import Session


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture()
def session():
    # A private instrumentation bundle so enabling tracing or forcing
    # drift in one test cannot leak through the process-wide default.
    session = Session(slow_query_threshold=0.0,
                      instrumentation=Instrumentation())
    session.start_telemetry_server(0)
    yield session
    session.close()


class TestEndpoints:
    def test_metrics_scrape_is_parseable_exposition(self, session):
        session.eval("[1]/MONTHS:during:1993/YEARS")
        status, headers, body = _get(session.server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        from tests.obs.test_promexport import _parse_exposition
        parsed = _parse_exposition(text)
        assert any(name.startswith("repro_matcache") for name in parsed)
        for metric in parsed.values():
            assert "type" in metric and "help" in metric

    def test_healthz_ok(self, session):
        status, _, body = _get(session.server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["problems"] == []
        assert payload["pool"]["alive"] is True
        assert 0.0 <= payload["cache"]["fill"] <= 1.0

    def test_healthz_degraded_closed_pool_is_503(self, session):
        session.pool.close()
        status = None
        try:
            status, _, body = _get(session.server.url + "/healthz")
        except urllib.error.HTTPError as exc:
            status, body = exc.code, exc.read()
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert any("pool" in problem for problem in payload["problems"])

    def test_healthz_degraded_on_excess_drift(self, session):
        gauge = session.instrumentation.metrics.gauge(
            "dbcron.fire_drift_ticks")
        gauge.set(10 * session.cron.period)
        try:
            status, _, body = _get(session.server.url + "/healthz")
        except urllib.error.HTTPError as exc:
            status, body = exc.code, exc.read()
        assert status == 503
        assert any("behind schedule" in problem
                   for problem in json.loads(body)["problems"])

    def test_slowlog_endpoint(self, session):
        session.eval("[1]/MONTHS:during:1993/YEARS")
        status, headers, body = _get(session.server.url + "/slowlog")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        records = json.loads(body)
        assert len(records) == 1
        assert records[0]["source"] == "[1]/MONTHS:during:1993/YEARS"
        assert records[0]["threshold_s"] == 0.0

    def test_traces_endpoint(self, session):
        session.instrumentation.enable_tracing()
        session.eval("WEEKS:during:1993/YEARS")
        _, _, body = _get(session.server.url + "/traces")
        doc = json.loads(body)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans, "tracing on: the scrape must see spans"

    def test_events_endpoint(self, session):
        session.eval("WEEKS:during:1993/YEARS")
        _, _, body = _get(session.server.url + "/events")
        events = json.loads(body)
        kinds = {event["kind"] for event in events}
        assert "eval.start" in kinds and "eval.finish" in kinds

    def test_unknown_path_is_404(self, session):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(session.server.url + "/nope")
        assert excinfo.value.code == 404

    def test_trailing_slash_and_query_string_accepted(self, session):
        status, _, _ = _get(session.server.url + "/healthz/?verbose=1")
        assert status == 200


class TestServerLifecycle:
    def test_provider_failure_is_500(self):
        server = TelemetryServer(
            metrics_text=lambda: (_ for _ in ()).throw(RuntimeError("x")),
            health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {})
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/metrics")
            assert excinfo.value.code == 500
            assert b"provider error" in excinfo.value.read()
            # The server survives the failing provider.
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
        finally:
            server.close()

    def test_ephemeral_port_resolved(self):
        server = TelemetryServer(
            metrics_text=lambda: "", health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {}, port=0)
        try:
            assert server.port > 0
            assert str(server.port) in server.url
        finally:
            server.close()

    def test_close_releases_socket(self):
        server = TelemetryServer(
            metrics_text=lambda: "", health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {})
        url = server.url
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(url + "/healthz")

    def test_session_env_port(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_PORT", "0")
        session = Session()
        try:
            assert session.server is not None
            assert session.telemetry is not None
            status, _, _ = _get(session.server.url + "/metrics")
            assert status == 200
        finally:
            session.close()

    def test_start_is_idempotent(self):
        session = Session()
        try:
            first = session.start_telemetry_server(0)
            assert session.start_telemetry_server(0) is first
        finally:
            session.close()
