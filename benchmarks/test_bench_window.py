"""B2: window narrowing via selection look-ahead (section 3.4).

The paper's planner picks, per parse-tree node, the smallest time interval
within which calendar values must be generated.  This bench sweeps the
context-window length (5 / 10 / 20 / 40 years) for a year-anchored
expression and compares the narrowed plan against naive full-window
generation: the naive cost grows linearly with the horizon while the
narrowed plan stays flat.
"""

from __future__ import annotations

import time

import pytest

from repro.core.matcache import MaterialisationCache
from repro.lang import (
    EvalContext,
    Interpreter,
    PlanVM,
    compile_expression,
    factorize,
    parse_expression,
)
from repro.lang.defs import basic_resolver

EXPRESSION = "[2]/DAYS:during:WEEKS:during:[1]/MONTHS:during:1993/YEARS"
HORIZONS = (5, 10, 20, 40)

#: B2b sliding-window sweep: a year-long window advanced month by month.
SLIDE_EXPRESSION = "[2]/DAYS:during:WEEKS"
SLIDE_MONTHS = 24
SLIDE_SPAN_DAYS = 365


def window_for(registry, horizon_years):
    lo, _ = registry.system.epoch.days_of_year(1987)
    _, hi = registry.system.epoch.days_of_year(1987 + horizon_years - 1)
    return lo, hi


def naive(registry, expr, window):
    ctx = EvalContext(system=registry.system, resolver=basic_resolver,
                      window=window)
    return Interpreter(ctx).evaluate(expr), ctx.stats


def narrowed(registry, expr, window):
    plan = compile_expression(expr, registry.system, basic_resolver,
                              context_window=window)
    ctx = EvalContext(system=registry.system, resolver=basic_resolver,
                      window=window)
    return PlanVM(ctx).run(plan), ctx.stats


@pytest.mark.parametrize("horizon", HORIZONS)
class TestWindowSweep:
    def test_naive_full_window(self, benchmark, registry, horizon):
        window = window_for(registry, horizon)
        expr = parse_expression(EXPRESSION)
        benchmark(lambda: naive(registry, expr, window))

    def test_narrowed_plan(self, benchmark, registry, horizon):
        window = window_for(registry, horizon)
        expr = factorize(parse_expression(EXPRESSION),
                         basic_resolver).expression
        benchmark(lambda: narrowed(registry, expr, window))


def sliding_windows(registry):
    """Month-by-month start ticks for a sliding one-year window."""
    windows = []
    for index in range(SLIDE_MONTHS):
        year, month = divmod(index, 12)
        lo = registry.system.day_of(f"{1990 + year}-{month + 1:02d}-01")
        windows.append((lo, lo + SLIDE_SPAN_DAYS - 1))
    return windows


def run_sliding(registry, expr, cache):
    """Evaluate the sliding expression over every window with ``cache``."""
    results = []
    for window in sliding_windows(registry):
        ctx = EvalContext(system=registry.system, resolver=basic_resolver,
                          window=window, matcache=cache)
        results.append(Interpreter(ctx).evaluate(expr).to_pairs())
    return results


class TestSlidingWindow:
    """B2b: repeated evaluation over overlapping windows.

    With the shared materialisation cache each slide re-generates only
    the newly exposed month; without it every window re-tiles the full
    year.  ``test_bench_sliding_*`` feed BENCH_core.json so the driver
    can diff cached vs uncached wall times.
    """

    def test_bench_sliding_cached(self, benchmark, registry):
        expr = parse_expression(SLIDE_EXPRESSION)
        cache = MaterialisationCache()
        run_sliding(registry, expr, cache)  # warm once
        benchmark(lambda: run_sliding(registry, expr, cache))

    def test_bench_sliding_uncached(self, benchmark, registry):
        expr = parse_expression(SLIDE_EXPRESSION)
        cache = MaterialisationCache(maxsize=0)
        benchmark(lambda: run_sliding(registry, expr, cache))


def test_report_sliding_window(registry):
    """The B2b table: cold vs warm vs disabled cache on sliding windows."""
    expr = parse_expression(SLIDE_EXPRESSION)

    cold_cache = MaterialisationCache()
    t0 = time.perf_counter()
    cold = run_sliding(registry, expr, cold_cache)
    t_cold = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    warm = run_sliding(registry, expr, cold_cache)
    t_warm = (time.perf_counter() - t0) * 1e3

    t0 = time.perf_counter()
    off = run_sliding(registry, expr, MaterialisationCache(maxsize=0))
    t_off = (time.perf_counter() - t0) * 1e3

    stats = cold_cache.stats()
    print(f"\n=== B2b: sliding window ({SLIDE_MONTHS} monthly slides of a "
          f"{SLIDE_SPAN_DAYS}-day window)")
    print(f"  disabled {t_off:8.2f} ms   cold {t_cold:8.2f} ms   "
          f"warm {t_warm:8.2f} ms")
    print(f"  cache: hits {stats['hits']}  misses {stats['misses']}  "
          f"extensions {stats['extensions']}  "
          f"hit ratio {stats['hit_ratio']:.1%}")
    # Correctness: the cache is invisible in results.
    assert cold == warm == off
    # The overlapping slides must be served by subsumption + extension,
    # not re-materialised from scratch.
    assert stats["hits"] > 0
    assert stats["extensions"] > 0
    assert stats["generated_intervals"] < stats["served_intervals"]


def test_report_window_narrowing(registry):
    """The B2 table: naive vs narrowed across horizons."""
    expr_naive = parse_expression(EXPRESSION)
    expr_plan = factorize(parse_expression(EXPRESSION),
                          basic_resolver).expression
    print("\n=== B2: window narrowing (Tuesdays of January 1993)")
    print(f"{'horizon':>8} | {'naive ivals':>12} | {'plan ivals':>11} | "
          f"{'naive ms':>9} | {'plan ms':>8} | ratio")
    narrowed_counts = []
    naive_counts = []
    for horizon in HORIZONS:
        window = window_for(registry, horizon)
        t0 = time.perf_counter()
        ref, naive_stats = naive(registry, expr_naive, window)
        t_naive = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        fast, plan_stats = narrowed(registry, expr_plan, window)
        t_plan = (time.perf_counter() - t0) * 1e3
        assert fast.to_pairs() == ref.to_pairs()
        ratio = naive_stats["intervals_generated"] / max(
            1, plan_stats["intervals_generated"])
        print(f"{horizon:>7}y | {naive_stats['intervals_generated']:>12} |"
              f" {plan_stats['intervals_generated']:>11} | "
              f"{t_naive:>9.2f} | {t_plan:>8.2f} | {ratio:5.1f}x")
        naive_counts.append(naive_stats["intervals_generated"])
        narrowed_counts.append(plan_stats["intervals_generated"])
    # Shape claims: naive grows with the horizon, narrowed stays flat
    # (up to a few boundary intervals from context-window clamping).
    assert naive_counts[-1] > naive_counts[0] * 4
    assert abs(narrowed_counts[-1] - narrowed_counts[0]) <= \
        narrowed_counts[0] * 0.02
    assert naive_counts[-1] > narrowed_counts[-1] * 10
