"""Concurrency stress tests for the tracer's clear()/publish epoch fence.

The race PR 4 closed: a root span *started* before ``Tracer.clear()``
but finishing after it used to re-populate the supposedly emptied ring —
under ``eval_many``, a ``\\trace``-driven clear could observe dropped
traces resurfacing moments later.  ``clear()`` now bumps an epoch under
the ring lock and ``_publish`` discards stale-epoch roots, so after
``clear()`` returns no span that began before the call can enter the
ring.

Run with ``PYTHONFAULTHANDLER=1`` in CI so a deadlock dumps stacks
instead of timing out silently.
"""

from __future__ import annotations

import threading

from repro.obs.instrument import Instrumentation
from repro.obs.tracer import Tracer
from repro.session import Session

THREADS = 8


def _hammer(n_threads: int, worker) -> list:
    """Run ``worker(thread_index)`` on n threads; re-raise first failure."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def run(index: int) -> None:
        try:
            barrier.wait()
            results[index] = worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestClearPublishRace:
    def test_in_flight_spans_do_not_resurface_after_clear(self):
        """Spans started before clear() never publish into the new epoch.

        Publisher threads continuously open/close root spans; a clearer
        thread interleaves clear() calls and immediately samples the
        ring.  Every sampled span must belong to the *current* epoch:
        its identity must not be one the clearer already observed being
        started before its clear (we approximate by checking the ring
        is empty at the moment clear() returns, repeatedly, while
        publishers run full tilt).
        """
        tracer = Tracer(ring_size=256)
        stop = threading.Event()

        def publisher(index: int) -> int:
            published = 0
            while not stop.is_set():
                with tracer.span(f"work-{index}", n=published):
                    pass
                published += 1
            return published

        failures: list[str] = []

        def clearer(_index: int) -> int:
            clears = 0
            for _ in range(400):
                tracer.clear()
                # The fence: nothing started before the clear may be
                # visible now or later under this epoch *unless* it
                # started after the clear — which is fine; what must
                # never happen is a pre-clear epoch value in the ring.
                for span in tracer.recent():
                    if span._epoch < tracer._epoch:
                        failures.append(
                            f"stale epoch {span._epoch} in ring at "
                            f"epoch {tracer._epoch}")
                clears += 1
            stop.set()
            return clears

        def worker(index: int):
            if index == 0:
                return clearer(index)
            return publisher(index)

        results = _hammer(THREADS, worker)
        assert not failures, failures[:5]
        assert results[0] == 400
        assert sum(results[1:]) > 0, "publishers must have run"

    def test_clear_empties_ring_under_load(self):
        """clear() returning implies the pre-clear traces are gone."""
        tracer = Tracer(ring_size=64)
        for _ in range(50):
            with tracer.span("warm"):
                pass
        stop = threading.Event()

        def publisher(_index: int) -> None:
            while not stop.is_set():
                with tracer.span("noise"):
                    pass

        threads = [threading.Thread(target=publisher, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                before = tracer._epoch
                tracer.clear()
                for span in tracer.recent():
                    assert span._epoch > before
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_epoch_survives_span_reuse_patterns(self):
        """event() and nested spans respect the epoch fence too."""
        tracer = Tracer()
        with tracer.span("root"):
            tracer.clear()  # root is now stale
        assert tracer.recent() == []
        tracer.event("point")
        (published,) = tracer.recent()
        assert published.name == "point"


class TestEvalManyInteraction:
    def test_clear_between_batches_stays_empty(self):
        """The user-visible symptom: \\trace clear during eval_many."""
        # Private bundle: enabling tracing here must not leak into the
        # process-default instrumentation other tests share.
        session = Session(workers=4, instrumentation=Instrumentation())
        session.instrumentation.enable_tracing()
        scripts = [f"[{i}]/WEEKS:during:1993/YEARS" for i in range(1, 9)]
        session.eval_many(scripts)
        assert session.recent_traces(), "tracing produced a batch trace"
        tracer = session.instrumentation.raw_tracer

        stop = threading.Event()
        stale: list = []

        def clearing(_index: int) -> None:
            while not stop.is_set():
                tracer.clear()
                for span in tracer.recent():
                    if span._epoch < tracer._epoch:
                        stale.append(span)

        def evaluating(index: int) -> None:
            try:
                for _ in range(3):
                    session.eval_many(scripts)
            finally:
                if index == 1:
                    stop.set()

        _hammer(3, lambda i: clearing(i) if i == 0 else evaluating(i))
        assert not stale
