"""Failure injection: malformed inputs must fail cleanly, never crash.

Every input below must raise a library error (never a bare TypeError /
AttributeError / RecursionError escape), with the original text context
preserved where applicable.
"""

import pytest

from repro.core.errors import CalendarError
from repro.db import Database, DatabaseError
from repro.lang import LanguageError, parse_expression, parse_script

BAD_CEL_SYNTAX = [
    "",                                   # empty
    "[",                                  # dangling bracket
    "[]/DAYS",                            # empty predicate
    "[0]/DAYS",                           # index zero
    "DAYS:during",                        # incomplete foreach
    "DAYS:during:",                       # missing right operand
    "DAYS::WEEKS",                        # missing listop
    ":during:WEEKS",                      # missing left operand
    "DAYS.during:WEEKS",                  # mixed separators
    "(DAYS",                              # unbalanced paren
    "DAYS)",                              # trailing paren
    "DAYS WEEKS",                         # juxtaposition
    "1993/",                              # dangling label select
    '"unterminated',                      # bad string
    "/* unterminated comment",            # bad comment
    "DAYS + ",                            # dangling setop
    "caloperate(",                        # dangling call
    "interval(1)",                        # wrong arity
    "interval(a, b)",                     # non-numeric endpoints
    "[4-2]/DAYS",                         # inverted range
]

BAD_CEL_SCRIPTS = [
    "{x = DAYS}",                         # missing semicolon
    "{return DAYS;}",                     # return without parens
    "{if DAYS return(DAYS);}",            # if without parens
    "{while (DAYS) }",                    # while without body or ';'
    "{x = ;}",                            # empty right side
    "{return(x);",                        # missing closing brace
]

BAD_CEL_SEMANTIC = [
    "NO_SUCH_CALENDAR",                   # unknown name
    "DAYS:zigzag:WEEKS",                  # unknown listop
    "mystery(DAYS)",                      # unknown function
    "today",                              # today unbound
    "5 + DAYS",                           # number as calendar
    "generate(DAYS)",                     # bad arity
    'generate(DAYS, MONTHS, "Jan 1 1993", "Dec 31 1993")',  # coarser unit
    "caloperate(DAYS, *; 0)",             # zero group size
    "(WEEKS:during:MONTHS) + DAYS",       # setop on order-2
    "1993/Mondays",                       # label select needs labels
]

BAD_QL = [
    "",                                    # empty
    "select * from t",                     # wrong dialect
    "retrieve s.name from s in t",         # missing parens
    "retrieve (s.name) from s t",          # missing 'in'
    "retrieve (s.name) where",             # dangling where
    "append t (x = )",                     # empty expression
    "append t (x 5)",                      # missing '='
    "delete",                              # missing variable
    "create table t (x)",                  # missing type
    "create table t (x int4) key x",       # key without parens
    "define rule r on append to t do append t (x = 1)",  # actions parens
    "retrieve (s.x) from s in t order by", # dangling order by
    'retrieve (s.x) from s in t on',       # dangling on
]

BAD_QL_SEMANTIC = [
    "retrieve (s.x) from s in no_such_relation",
    "retrieve (s.missing_col) from s in pg_class",
    "retrieve (t.relname) from s in pg_class",     # unbound var
    "append pg_class (nope = 1)",                  # unknown column
    "create table pg_class (x int4)",              # duplicate relation
    "drop table no_such",
    'retrieve (member("a", "Mondays"))',           # wrong member arg
    "retrieve (s.relname) from s in pg_class as of \"abc\"",
]


class TestCelSyntaxErrors:
    @pytest.mark.parametrize("text", BAD_CEL_SYNTAX)
    def test_expression_raises_language_error(self, text):
        with pytest.raises(LanguageError):
            parse_expression(text)

    @pytest.mark.parametrize("text", BAD_CEL_SCRIPTS)
    def test_script_raises_language_error(self, text):
        with pytest.raises(LanguageError):
            parse_script(text)


class TestCelSemanticErrors:
    @pytest.mark.parametrize("text", BAD_CEL_SEMANTIC)
    def test_evaluation_raises_calendar_error(self, registry, text):
        with pytest.raises(CalendarError):
            registry.eval_expression(text,
                                     window=("Jan 1 1993", "Dec 31 1993"))


class TestQlErrors:
    @pytest.mark.parametrize("text", BAD_QL)
    def test_parse_raises_database_error(self, db, text):
        with pytest.raises(DatabaseError):
            db.execute(text)

    @pytest.mark.parametrize("text", BAD_QL_SEMANTIC)
    def test_execution_raises_database_error(self, db, text):
        with pytest.raises(DatabaseError):
            db.execute(text)


class TestErrorQuality:
    def test_cel_error_carries_position(self):
        try:
            parse_expression("DAYS:during:\n   :")
        except LanguageError as exc:
            assert exc.line is not None
        else:
            pytest.fail("expected a LanguageError")

    def test_unknown_name_mentions_the_name(self, registry):
        with pytest.raises(CalendarError, match="NO_SUCH"):
            registry.eval_expression("NO_SUCH")

    def test_rule_action_failure_propagates(self, db):
        from repro.rules import RuleManager
        manager = RuleManager(db)
        db.create_table("src5", [("x", "int4")])
        manager.define_event_rule(
            "broken", "append", "src5",
            actions=['append no_such_sink (x = new.x)'])
        with pytest.raises(DatabaseError):
            db.insert("src5", x=1)

    def test_script_error_does_not_poison_registry(self, registry):
        with pytest.raises(CalendarError):
            registry.eval_expression("NOPE_1")
        # The registry still works afterwards.
        cal = registry.eval_expression(
            "[2]/DAYS:during:[1]/WEEKS:during:1993/YEARS")
        assert len(cal) == 1
