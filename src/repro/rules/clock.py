"""Clocks driving DBCRON.

The paper's DBCRON daemon is modelled on UNIX cron: a process that wakes
every T time units.  For deterministic tests and benchmarks we replace
wall-clock time with :class:`SimulatedClock`, whose "now" is an axis day
tick advanced explicitly.  The probe/fire logic is unchanged — only the
source of time differs (documented substitution in DESIGN.md).

:class:`WallClock` is the production adapter: its "now" is derived from
real time (an injectable ``time_source`` keeps it testable); callers
``poll()`` it — from a scheduler loop, a thread, or an external cron —
and listeners fire whenever the axis tick has moved.
"""

from __future__ import annotations

import time as _time
from typing import Callable

from repro.core.basis import CalendarSystem
from repro.core.chrono import CivilDate
from repro.core.errors import AxisError
from repro.core.interval import axis_add

__all__ = ["SimulatedClock", "WallClock"]


class SimulatedClock:
    """An axis-tick clock with subscribable advancement."""

    def __init__(self, now: int = 1) -> None:
        if now == 0:
            raise AxisError("the clock cannot start at tick 0")
        self._now = now
        self._listeners: list[Callable[[int], None]] = []

    @property
    def now(self) -> int:
        return self._now

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked after every advancement."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[int], None]) -> None:
        """Remove a listener (daemon detach); unknown = no-op."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def advance(self, ticks: int = 1) -> int:
        """Move forward ``ticks`` axis points (skipping 0)."""
        if ticks < 0:
            raise AxisError("the clock cannot move backwards")
        if ticks:
            self._now = axis_add(self._now, ticks)
            for listener in self._listeners:
                listener(self._now)
        return self._now

    def advance_to(self, tick: int) -> int:
        """Advance to an absolute tick (must not be in the past)."""
        if tick == 0:
            raise AxisError("tick 0 does not exist")
        if tick < self._now:
            raise AxisError(
                f"cannot move the clock backwards ({self._now} -> {tick})")
        if tick != self._now:
            self._now = tick
            for listener in self._listeners:
                listener(self._now)
        return self._now


class WallClock:
    """An axis-tick clock derived from real (epoch-seconds) time.

    ``time_source`` returns seconds since the UNIX epoch (defaults to
    :func:`time.time`); the current axis day is computed through the
    calendar system's chronology.  Call :meth:`poll` periodically — when
    the computed tick has advanced past the last observed one, listeners
    are notified exactly as with :class:`SimulatedClock`.
    """

    def __init__(self, system: CalendarSystem,
                 time_source: Callable[[], float] = _time.time) -> None:
        self._system = system
        self._time_source = time_source
        self._listeners: list[Callable[[int], None]] = []
        self._now = self._compute_now()

    def _compute_now(self) -> int:
        seconds = self._time_source()
        days_since_unix_epoch = int(seconds // 86_400)
        unix_day = self._system.epoch.day_number(CivilDate(1970, 1, 1))
        return self._system.epoch.add_days(unix_day,
                                           days_since_unix_epoch)

    @property
    def now(self) -> int:
        return self._now

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked when the day tick advances."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[int], None]) -> None:
        """Remove a listener (daemon detach); unknown = no-op."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def poll(self) -> bool:
        """Re-read real time; notify listeners if the day tick moved."""
        current = self._compute_now()
        if current < self._now:
            raise AxisError("wall time moved backwards")
        if current == self._now:
            return False
        self._now = current
        for listener in self._listeners:
            listener(current)
        return True

    def advance(self, ticks: int = 1) -> int:
        """Wall clocks cannot be advanced manually."""
        raise AxisError("a WallClock advances only with real time; "
                        "call poll()")
