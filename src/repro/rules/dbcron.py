"""DBCRON: the daemon that triggers temporal rules (section 4, Figure 4).

Modelled on the UNIX ``cron`` utility: every ``period`` time units DBCRON
*probes* the RULE_TIME table for rules that trigger within the next period
and loads them into a main-memory schedule (a binary heap).  As the clock
advances, due entries are popped and fired; each fired rule computes its
next trigger point (via the calendar pipeline), RULE_TIME is updated, and
— when the next point falls inside the current probe horizon — the entry
re-enters the heap immediately.

Driven by a :class:`~repro.rules.clock.SimulatedClock` for determinism;
``run_until`` steps the clock probe-by-probe the way the real daemon
sleeps between wake-ups.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter

from repro.core.errors import AxisError
from repro.core.interval import axis_add
from repro.db.database import Database
from repro.rules.clock import SimulatedClock
from repro.rules.manager import RuleManager

__all__ = ["DBCron"]


@dataclass
class _Stats:
    probes: int = 0
    fires: int = 0
    reschedules: int = 0
    max_heap_size: int = 0


class DBCron:
    """The temporal-rule daemon."""

    def __init__(self, manager: RuleManager, clock: SimulatedClock,
                 period: int = 7) -> None:
        if period < 1:
            raise AxisError("the probe period must be at least 1 tick")
        self.manager = manager
        self.db: Database = manager.db
        self.clock = clock
        self.period = period
        #: Main-memory schedule: (fire_tick, sequence, rulename).
        self._heap: list[tuple[int, int, str]] = []
        self._scheduled: dict[str, int] = {}
        self._sequence = 0
        self._horizon = clock.now  # end of the currently probed window
        self.stats = _Stats()
        manager.clock = clock
        manager.subscribe_schedule(self._on_schedule_change)
        clock.subscribe(self._on_clock)

    # -- probing -----------------------------------------------------------------

    def probe(self) -> int:
        """Load rules due within the next period into the schedule.

        Returns the number of heap entries loaded.  This is the periodic
        RULE_TIME scan of Figure 4.
        """
        now = self.clock.now
        self._horizon = axis_add(now, self.period)
        self.stats.probes += 1
        loaded = 0
        for fire_tick, name in self.manager.tables.due_within(
                now, self.period):
            if self._scheduled.get(name) == fire_tick:
                continue
            self._push(fire_tick, name)
            loaded += 1
        self.stats.max_heap_size = max(self.stats.max_heap_size,
                                       len(self._heap))
        metrics = self.db.instrumentation.metrics
        metrics.counter("dbcron.probes").inc()
        metrics.gauge("dbcron.heap_size").set(len(self._heap))
        return loaded

    def _push(self, fire_tick: int, name: str) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (fire_tick, self._sequence, name))
        self._scheduled[name] = fire_tick

    def _on_schedule_change(self, name: str, next_fire: int | None) -> None:
        """A rule was declared/dropped/rescheduled while we are awake."""
        if next_fire is None:
            self._scheduled.pop(name, None)
            return
        if next_fire <= self._horizon and \
                self._scheduled.get(name) != next_fire:
            self._push(next_fire, name)

    # -- firing ------------------------------------------------------------------

    def _on_clock(self, now: int) -> None:
        self.fire_due()

    def fire_due(self) -> int:
        """Fire every scheduled entry whose time has come; count fired.

        Records per-fire latency (``dbcron.fire_seconds``) and how far
        behind schedule the daemon is running (``dbcron.fire_drift_ticks``
        — the gap between the clock and the entry's fire tick); with
        tracing on, each fire gets a ``rule.fire`` span.
        """
        now = self.clock.now
        inst = self.db.instrumentation
        tracer = inst.tracer
        fire_hist = inst.metrics.histogram("dbcron.fire_seconds")
        drift_gauge = inst.metrics.gauge("dbcron.fire_drift_ticks")
        fired = 0
        while self._heap and self._heap[0][0] <= now:
            fire_tick, _, name = heapq.heappop(self._heap)
            if self._scheduled.get(name) != fire_tick:
                continue  # stale entry (rule dropped or rescheduled)
            del self._scheduled[name]
            drift_gauge.set(now - fire_tick)
            t0 = perf_counter()
            if tracer is not None:
                with tracer.span("rule.fire", rule=name, tick=fire_tick,
                                 drift=now - fire_tick):
                    next_fire = self.manager.fire_temporal(name, fire_tick)
            else:
                next_fire = self.manager.fire_temporal(name, fire_tick)
            fire_hist.observe(perf_counter() - t0)
            inst.metrics.counter("dbcron.fires").inc()
            fired += 1
            self.stats.fires += 1
            if next_fire is not None:
                self.stats.reschedules += 1
                # _on_schedule_change pushed it back if inside the horizon.
        return fired

    # -- driving ------------------------------------------------------------------

    def run_until(self, tick: int) -> int:
        """Advance the clock to ``tick`` probe-by-probe; count fires.

        Mirrors the daemon loop: probe, sleep one period (advancing the
        clock fires due rules), repeat.
        """
        before = self.stats.fires
        self.probe()
        while self.clock.now < tick:
            step = min(self.period, tick - self.clock.now)
            self.clock.advance(step)
            self.probe()
        self.fire_due()
        return self.stats.fires - before
