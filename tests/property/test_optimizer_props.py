"""Property: the optimizer is invisible — results are byte-identical.

For any expression the language strategy can produce, evaluating with
the plan optimizer enabled must yield exactly the result of evaluating
with it disabled (same pairs, same order, same labels, same error if
any).  This is the soundness contract of every rewrite rule: CSE,
select fusion, foreach merging, selection push-down and DCE.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import ReproError, Session
from repro.obs.instrument import Instrumentation

from tests.property.test_lang_props import cel_expressions

WINDOW = ("Jan 1 1992", "Dec 31 1994")

_sessions = None


def _shared_sessions():
    global _sessions
    if _sessions is None:
        pair = []
        for optimize in (True, False):
            session = Session("Jan 1 1987", holiday_years=(1987, 1996),
                              instrumentation=Instrumentation(),
                              optimize=optimize)
            session.registry.define(
                "Jan-1993",
                script="return ([1]/MONTHS:during:1993/YEARS)")
            pair.append(session)
        _sessions = tuple(pair)
    return _sessions


def _outcome(session, text):
    try:
        return ("ok", session.eval(text, window=WINDOW))
    except ReproError as exc:
        return ("error", type(exc).__name__)


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cel_expressions())
def test_optimized_equals_unoptimized(text):
    on, off = _shared_sessions()
    kind_on, value_on = _outcome(on, text)
    kind_off, value_off = _outcome(off, text)
    assert kind_on == kind_off, (text, value_on, value_off)
    if kind_on == "ok" and hasattr(value_on, "to_pairs"):
        assert value_on == value_off, text
        assert value_on.flatten().to_pairs() == \
            value_off.flatten().to_pairs(), text
        assert value_on.granularity == value_off.granularity
    else:
        assert value_on == value_off, text


@pytest.mark.parametrize("text", [
    # The canonical push-down chain (figure-2 style).
    "Mondays:during:([1]/(MONTHS:during:YEARS))",
    # Negative and last-element selection through the fused kernel.
    "[-1]/(WEEKS:during:MONTHS)",
    "[n]/(DAYS:during:MONTHS)",
    "Mondays:during:([n]/(MONTHS:during:YEARS))",
    "Mondays:during:([-2]/(MONTHS:during:YEARS))",
    # Ranges and multi-picks keep order-2 shape through fusion.
    "[2-4]/(WEEKS:during:MONTHS)",
    "[1;3]/(WEEKS:during:MONTHS)",
    # Merged adjacent foreach.
    "(DAYS:during:WEEKS):during:MONTHS",
    # Label anchoring inside and outside the chain.
    "Mondays:during:1993/YEARS",
    "WEEKS:during:[1-2]/MONTHS:during:1993/YEARS",
    # Set ops downstream of rewritten subplans.
    "([1]/(WEEKS:during:MONTHS)) + HOLIDAYS",
    "([n]/(DAYS:during:MONTHS)) - HOLIDAYS",
])
def test_known_rewrite_shapes_are_identical(text):
    on, off = _shared_sessions()
    kind_on, value_on = _outcome(on, text)
    kind_off, value_off = _outcome(off, text)
    assert kind_on == kind_off == "ok"
    assert value_on == value_off
    assert value_on.flatten().to_pairs() == value_off.flatten().to_pairs()
