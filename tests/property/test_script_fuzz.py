"""Fuzzing the full script pipeline: random scripts never crash.

Hypothesis builds random (mostly well-formed) calendar scripts from the
grammar and runs them through parse -> factorize -> plan/interpret.  The
invariant: the pipeline either produces a calendar/string/None or raises
a *library* error (CalendarError and friends) — never a bare TypeError,
AttributeError or IndexError escaping an internal layer.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import CalendarRegistry, install_standard_calendars
from repro.core import Calendar, CalendarSystem
from repro.core.errors import CalendarError

REGISTRY = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                            default_horizon_years=4)
install_standard_calendars(REGISTRY)
REGISTRY.define("HOLIDAYS", values=[(31, 31), (90, 90)],
                granularity="DAYS")

names = st.sampled_from(["DAYS", "WEEKS", "MONTHS", "YEARS", "HOLIDAYS",
                         "Tuesdays", "Weekdays", "LDOM", "temp1",
                         "UNKNOWN_CAL"])
ops = st.sampled_from(["during", "overlaps", "meets", "<", "<=",
                       "intersects", "bogus_op"])
selectors = st.sampled_from(["", "[1]/", "[n]/", "[-2]/", "[1;3]/",
                             "[2-4]/"])
funcs = st.sampled_from(["", "flatten", "hull", "instants"])


@st.composite
def expressions(draw, depth=0):
    kind = draw(st.integers(min_value=0, max_value=5 if depth < 2 else 1))
    if kind <= 1:
        return f"{draw(selectors)}{draw(names)}"
    if kind == 2:
        left = draw(expressions(depth + 1))
        right = draw(expressions(depth + 1))
        sep = draw(st.sampled_from([":", "."]))
        op = draw(ops)
        if sep == "." and op in ("<", "<="):
            op = "during"
        return f"{left}{sep}{op}{sep}{right}"
    if kind == 3:
        left = draw(expressions(depth + 1))
        right = draw(expressions(depth + 1))
        setop = draw(st.sampled_from(["+", "-", "&"]))
        return f"({left} {setop} {right})"
    if kind == 4:
        inner = draw(expressions(depth + 1))
        func = draw(funcs)
        return f"{func}({inner})" if func else f"({inner})"
    year = draw(st.sampled_from([1987, 1988, 1989, 2050]))
    return f"{year}/YEARS"


@st.composite
def scripts(draw):
    statements = []
    n = draw(st.integers(min_value=1, max_value=4))
    for i in range(n - 1):
        statements.append(f"temp{i} = {draw(expressions())};")
    closing = draw(st.integers(min_value=0, max_value=2))
    if closing == 0:
        statements.append(f"return({draw(expressions())});")
    elif closing == 1:
        statements.append(
            f"if ({draw(expressions())}) return({draw(expressions())}); "
            f"else return({draw(expressions())});")
    else:
        statements.append(f"{draw(expressions())};")
    return "{" + " ".join(statements) + "}"


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(scripts())
def test_script_pipeline_never_crashes(text):
    try:
        result = REGISTRY.eval_script(text, window=(1, 500))
    except CalendarError:
        return  # library errors are the contract
    assert result is None or isinstance(result, (Calendar, str))


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expressions())
def test_expression_pipeline_never_crashes(text):
    try:
        optimized = REGISTRY.eval_expression(text, window=(1, 500),
                                             optimize=True)
        reference = REGISTRY.eval_expression(text, window=(1, 500),
                                             optimize=False)
    except CalendarError:
        return
    assert isinstance(optimized, Calendar)
    # The optimised pipeline must agree with the reference interpreter.
    assert optimized.to_pairs() == reference.to_pairs()
