"""Property-based test: factorization preserves expression semantics.

Random expressions over the basic calendars are factorized and evaluated
both ways (reference interpreter, unfactorized vs factorized + compiled
plan); the results must be identical.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import CalendarSystem
from repro.lang import (
    EvalContext,
    Interpreter,
    PlanVM,
    compile_expression,
    factorize,
    parse_expression,
)
from repro.lang.defs import basic_resolver

SYSTEM = CalendarSystem.starting("Jan 1 1987")
WINDOW = (SYSTEM.epoch.days_of_year(1991)[0],
          SYSTEM.epoch.days_of_year(1995)[1])

ops = st.sampled_from(["during", "overlaps", "<", "<=", "meets"])
selectors = st.sampled_from(["[1]/", "[2]/", "[n]/", "[-1]/", ""])
bases = st.sampled_from(["DAYS", "WEEKS", "MONTHS"])
years = st.sampled_from([1992, 1993, 1994])


@st.composite
def expressions(draw):
    """Build chains like [k]/X:op:[j]/Y:op:1993/YEARS."""
    depth = draw(st.integers(min_value=1, max_value=3))
    parts = []
    for _ in range(depth):
        parts.append(f"{draw(selectors)}{draw(bases)}")
    anchor_year = draw(years)
    tail = draw(st.sampled_from(
        [f"[1]/MONTHS:during:{anchor_year}/YEARS",
         f"{anchor_year}/YEARS"]))
    chain = parts + [tail]
    op_list = [draw(ops) for _ in range(len(chain) - 1)]
    text = chain[0]
    for op, part in zip(op_list, chain[1:]):
        text += f":{op}:{part}"
    return text


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expressions())
def test_factorized_plan_equals_reference(text):
    expr = parse_expression(text)
    factored = factorize(expr, basic_resolver).expression

    ctx_ref = EvalContext(system=SYSTEM, resolver=basic_resolver,
                          window=WINDOW)
    reference = Interpreter(ctx_ref).evaluate(expr)

    ctx_fact = EvalContext(system=SYSTEM, resolver=basic_resolver,
                           window=WINDOW)
    factored_result = Interpreter(ctx_fact).evaluate(factored)
    assert factored_result.to_pairs() == reference.to_pairs(), \
        f"factorization changed semantics of {text}"

    plan = compile_expression(factored, SYSTEM, basic_resolver,
                              context_window=WINDOW)
    ctx_plan = EvalContext(system=SYSTEM, resolver=basic_resolver,
                           window=WINDOW)
    plan_result = PlanVM(ctx_plan).run(plan)
    assert plan_result.to_pairs() == reference.to_pairs(), \
        f"compiled plan changed semantics of {text}"


@settings(max_examples=30, deadline=None)
@given(expressions())
def test_factorization_never_grows_tree(text):
    from repro.lang import count_nodes
    expr = parse_expression(text)
    result = factorize(expr, basic_resolver)
    assert count_nodes(result.expression) <= count_nodes(expr)
