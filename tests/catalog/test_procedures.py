"""Parameterised calendar procedures and data-to-calendar conversion."""

import pytest

from repro.core import CalendarError
from repro.db import Database, ExecutionError
from repro.finance import EXPIRATION_SCRIPT
from repro.lang.errors import EvaluationError


class TestProcedures:
    def test_expiration_script_as_procedure(self, registry):
        registry.define_procedure("expiration", ["Expiration-Month"],
                                  EXPIRATION_SCRIPT)
        cal = registry.eval_expression(
            "expiration([11]/MONTHS:during:1993/YEARS)")
        assert str(registry.system.date_of(cal.elements[0].lo)) == \
            "Nov 19 1993"

    def test_procedure_composes_with_setops(self, registry):
        registry.define_procedure("expiration", ["Expiration-Month"],
                                  EXPIRATION_SCRIPT)
        cal = registry.eval_expression(
            "expiration([3]/MONTHS:during:1993/YEARS) + "
            "expiration([6]/MONTHS:during:1993/YEARS)")
        months = {registry.system.date_of(iv.lo).month
                  for iv in cal.elements}
        assert months == {3, 6}

    def test_multi_parameter_procedure(self, registry):
        registry.define_procedure(
            "between", ["LOW", "HIGH"],
            "{return(flatten([1-5]/DAYS:during:WEEKS) & (LOW + HIGH));}")
        cal = registry.eval_expression(
            "between(interval(%d, %d), interval(%d, %d))" % (
                registry.system.day_of("Jan 4 1993"),
                registry.system.day_of("Jan 8 1993"),
                registry.system.day_of("Jan 18 1993"),
                registry.system.day_of("Jan 22 1993")))
        assert len(cal) == 10

    def test_wrong_arity(self, registry):
        registry.define_procedure("one_arg", ["X"], "{return(X);}")
        with pytest.raises(EvaluationError):
            registry.eval_expression("one_arg(DAYS, WEEKS)")

    def test_non_calendar_argument_rejected(self, registry):
        registry.define_procedure("one_arg", ["X"], "{return(X);}")
        with pytest.raises(EvaluationError):
            registry.eval_expression('one_arg("not a calendar")')

    def test_name_collision_with_builtin(self, registry):
        with pytest.raises(CalendarError):
            registry.define_procedure("generate", ["X"], "{return(X);}")

    def test_name_collision_with_calendar(self, registry):
        with pytest.raises(CalendarError):
            registry.define_procedure("Tuesdays", ["X"], "{return(X);}")

    def test_duplicate_and_replace(self, registry):
        registry.define_procedure("p1", ["X"], "{return(X);}")
        with pytest.raises(CalendarError):
            registry.define_procedure("p1", ["X"], "{return(X);}")
        registry.define_procedure("p1", ["X"], "{return(X + X);}",
                                  replace=True)

    def test_listing_and_drop(self, registry):
        registry.define_procedure("p2", ["X"], "{return(X);}")
        assert "p2" in registry.procedures()
        registry.drop_procedure("p2")
        assert "p2" not in registry.procedures()
        with pytest.raises(CalendarError):
            registry.drop_procedure("p2")

    def test_procedure_in_temporal_rule(self, registry):
        from repro.rules import DBCron, RuleManager, SimulatedClock
        registry.define_procedure("expiration", ["Expiration-Month"],
                                  EXPIRATION_SCRIPT)
        db = Database(calendars=registry)
        manager = RuleManager(db)
        clock = SimulatedClock(now=db.system.day_of("Nov 1 1993"))
        cron = DBCron(manager, clock, period=7)
        fired = []
        manager.define_temporal_rule(
            "exp_alert", "expiration([11]/MONTHS:during:1993/YEARS)",
            callback=lambda d, t: fired.append(t), after=clock.now)
        cron.run_until(db.system.day_of("Dec 1 1993"))
        assert [str(db.system.date_of(t)) for t in fired] == \
            ["Nov 19 1993"]


class TestCalendarFromQuery:
    @pytest.fixture()
    def trade_db(self, db):
        db.create_table("fills", [("day", "abstime"), ("qty", "int4")])
        base = db.system.day_of("Jan 4 1993")
        for offset, qty in [(0, 10), (1, 0), (2, 25), (2, 5), (4, 40)]:
            db.insert("fills", day=base + offset, qty=qty)
        return db, base

    def test_column_collected_sorted_unique(self, trade_db):
        db, base = trade_db
        cal = db.calendar_from_query(
            "retrieve (f.day) from f in fills where f.qty > 0")
        assert cal.to_pairs() == ((base, base), (base + 2, base + 2),
                                  (base + 4, base + 4))

    def test_explicit_column(self, trade_db):
        db, base = trade_db
        cal = db.calendar_from_query(
            "retrieve (f.day, f.qty) from f in fills where f.qty > 20",
            column="day")
        assert len(cal) == 2

    def test_ambiguous_columns_rejected(self, trade_db):
        db, _ = trade_db
        with pytest.raises(ExecutionError):
            db.calendar_from_query(
                "retrieve (f.day, f.qty) from f in fills")

    def test_non_abstime_rejected(self, trade_db):
        db, _ = trade_db
        with pytest.raises(ExecutionError):
            db.calendar_from_query("retrieve (f.qty * 0) from f in fills")

    def test_result_drives_a_rule(self, trade_db):
        db, base = trade_db
        cal = db.calendar_from_query(
            "retrieve (f.day) from f in fills where f.qty > 20")
        db.calendars.define("BIG_FILL_DAYS", values=cal,
                            granularity="DAYS")
        nxt = db.calendars.next_occurrence("BIG_FILL_DAYS", base)
        assert nxt == base + 2
