"""Exception hierarchy for the mini-POSTGRES substrate."""

from __future__ import annotations

__all__ = [
    "DatabaseError",
    "SchemaError",
    "DataTypeError",
    "QueryError",
    "ExecutionError",
    "IntegrityError",
    "RuleError",
]


class DatabaseError(Exception):
    """Base class of all database-substrate errors."""


class SchemaError(DatabaseError):
    """Bad DDL: duplicate relation, unknown column, bad schema."""


class DataTypeError(DatabaseError):
    """A value does not conform to its declared column type."""


class QueryError(DatabaseError):
    """The query text does not parse."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ExecutionError(DatabaseError):
    """A well-formed query failed during execution."""


class IntegrityError(DatabaseError):
    """A constraint (e.g. key uniqueness) was violated."""


class RuleError(DatabaseError):
    """Bad rule definition or a rule action failure."""
