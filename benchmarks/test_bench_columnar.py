"""Columnar sweep kernels vs the object path: the ISSUE-8 speedup rows.

Builds the same calendars twice — once object-backed (``set_enabled(False)``
during construction), once column-backed — and times the hot kernels on
both.  Kernel dispatch is per-operand (a calendar built while the flag was
off keeps its tuple representation forever), so both representations can
be exercised in one process regardless of the global default.

Rows land in BENCH_core.json via :func:`record_benchmark` under the
``columnar/`` prefix, each carrying the measured ``speedup`` (object time
divided by columnar time).  The acceptance thresholds asserted here:

* ``foreach("during", days, weeks)`` at 20k days: >= 3x;
* at least two of union / difference / intersection at 30-year day
  scale: >= 2x.

A final row records the retained bytes of a 100k-interval calendar in
both representations (tracemalloc), the memory half of the story: two
int64 lanes instead of a tuple of interval objects.
"""

from __future__ import annotations

import gc
import time
import tracemalloc

from conftest import record_benchmark

from repro.core import Calendar, Interval, foreach
from repro.core import columnar

#: Days in the 30-year benchmark horizon (1987..2016, matching the
#: registry fixtures' generation span).
DAYS_30Y = 10_958


def _build(pairs, *, columns: bool) -> Calendar:
    """Build a calendar in the requested representation."""
    previous = columnar.enabled()
    columnar.set_enabled(columns)
    try:
        cal = Calendar.from_intervals(pairs)
    finally:
        columnar.set_enabled(previous)
    assert (cal.columns is not None) is columns
    return cal


def _time(fn, rounds: int = 5, warmup: int = 1) -> list[float]:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def _versus(name: str, obj_fn, col_fn, intervals: int,
            rounds: int = 5) -> float:
    """Time both paths, record one row, return the speedup."""
    obj_samples = _time(obj_fn, rounds)
    col_samples = _time(col_fn, rounds)
    speedup = min(obj_samples) / max(min(col_samples), 1e-9)
    record_benchmark(name, col_samples, intervals=intervals,
                     object_min_s=min(obj_samples), speedup=speedup)
    return speedup


def _day_pairs(n):
    return [(d, d) for d in range(1, n + 1)]


def _week_pairs(n_days):
    return [(lo, lo + 6) for lo in range(1, n_days - 5, 7)]


class TestForeachSweeps:
    def test_foreach_during(self):
        speedups = {}
        for size in (1_000, 20_000):
            days_obj = _build(_day_pairs(size), columns=False)
            days_col = _build(_day_pairs(size), columns=True)
            weeks_obj = _build(_week_pairs(size), columns=False)
            weeks_col = _build(_week_pairs(size), columns=True)
            speedups[size] = _versus(
                f"columnar/foreach_during_{size}",
                lambda: foreach("during", days_obj, weeks_obj),
                lambda: foreach("during", days_col, weeks_col),
                intervals=size)
        # Acceptance: the 20k grouping sweep must beat the object path 3x.
        assert speedups[20_000] >= 3.0, speedups

    def test_foreach_overlaps(self):
        for size in (1_000, 20_000):
            days_obj = _build(_day_pairs(size), columns=False)
            days_col = _build(_day_pairs(size), columns=True)
            ref = Interval(size // 4, size // 2)
            speedup = _versus(
                f"columnar/foreach_overlaps_{size}",
                lambda: foreach("overlaps", days_obj, ref),
                lambda: foreach("overlaps", days_col, ref),
                intervals=size)
            assert speedup > 0


class TestSetOperationSweeps:
    """Union/difference/intersection over 30 years of day tiles."""

    def test_set_operations(self):
        odd = _day_pairs(DAYS_30Y)[0::2]
        even = _day_pairs(DAYS_30Y)[1::2]
        holidays = [(d, d) for d in range(100, DAYS_30Y, 97)]
        weeks = _week_pairs(DAYS_30Y)

        odd_obj, odd_col = (_build(odd, columns=False),
                            _build(odd, columns=True))
        even_obj, even_col = (_build(even, columns=False),
                              _build(even, columns=True))
        days_obj, days_col = (_build(_day_pairs(DAYS_30Y), columns=False),
                              _build(_day_pairs(DAYS_30Y), columns=True))
        hol_obj, hol_col = (_build(holidays, columns=False),
                            _build(holidays, columns=True))
        weeks_obj, weeks_col = (_build(weeks, columns=False),
                                _build(weeks, columns=True))

        speedups = {
            "union": _versus(
                "columnar/union_30y",
                lambda: odd_obj + even_obj,
                lambda: odd_col + even_col,
                intervals=DAYS_30Y),
            "difference": _versus(
                "columnar/difference_30y",
                lambda: days_obj - hol_obj,
                lambda: days_col - hol_col,
                intervals=DAYS_30Y),
            "intersection": _versus(
                "columnar/intersection_30y",
                lambda: days_obj & weeks_obj,
                lambda: days_col & weeks_col,
                intervals=DAYS_30Y),
        }
        # Acceptance: at least two of the three set kernels must be 2x.
        at_least_2x = [op for op, s in speedups.items() if s >= 2.0]
        assert len(at_least_2x) >= 2, speedups


class TestMemoryFootprint:
    def test_calendar_100k_retained_bytes(self):
        """Two int64 lanes vs a tuple of Interval objects at 100k."""
        pairs = _day_pairs(100_000)

        def _retained(columns: bool) -> tuple[int, float]:
            gc.collect()
            tracemalloc.start()
            t0 = time.perf_counter()
            cal = _build(pairs, columns=columns)
            if not columns:
                assert len(cal.elements) == 100_000
            elapsed = time.perf_counter() - t0
            gc.collect()
            retained, _peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert len(cal) == 100_000
            return retained, elapsed

        object_bytes, object_s = _retained(columns=False)
        columnar_bytes, columnar_s = _retained(columns=True)
        record_benchmark(
            "columnar/memory_100k_intervals", [columnar_s],
            intervals=100_000,
            object_build_s=object_s,
            object_bytes=object_bytes,
            columnar_bytes=columnar_bytes,
            bytes_ratio=object_bytes / max(columnar_bytes, 1))
        # Lanes store 16 bytes per interval; the object tuple holds a
        # pointer plus an Interval object each (~56 bytes observed).
        assert object_bytes >= 3 * columnar_bytes
