"""Heap storage: schemas, relations, and the database object.

Relations are in-memory heaps of dict-shaped tuples with a hidden ``_tid``.
Every mutating operation routes through event hooks so the rule system can
observe ``append`` / ``delete`` / ``replace`` / ``retrieve`` events exactly
like the POSTGRES rule system does (section 4).

A relation may declare a *valid-time column* (type ``abstime``); the query
language's ``on <calendar>`` clause and ``within`` operator use it for
temporal restriction, and regular time series use it to avoid storing time
points at all.

Storage is **no-overwrite** in the POSTGRES tradition: deleted and
superseded tuple versions are retained with hidden transaction stamps
``_tmin`` / ``_tmax`` (the transaction ids that created/invalidated the
version), so queries can inspect the historical state of a relation
("as of" transaction t) — the paper's section 4 notes rule conditions may
check "the current or historical (with respect to transaction time)
state of database objects".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.db.errors import IntegrityError, SchemaError
from repro.db.types import TypeRegistry

__all__ = ["Column", "Schema", "Relation", "EVENT_KINDS"]

EVENT_KINDS = ("append", "delete", "replace", "retrieve")


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type_name: str

    def __str__(self) -> str:
        return f"{self.name} : {self.type_name}"


class Schema:
    """An ordered set of columns with optional key and valid-time column."""

    def __init__(self, columns: Sequence[Column | tuple[str, str]],
                 key: Sequence[str] = (),
                 valid_time_column: str | None = None) -> None:
        self.columns: list[Column] = [
            c if isinstance(c, Column) else Column(*c) for c in columns]
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._by_name = {c.name: c for c in self.columns}
        for k in key:
            if k not in self._by_name:
                raise SchemaError(f"key column {k!r} is not in the schema")
        self.key = tuple(key)
        if valid_time_column is not None and \
                valid_time_column not in self._by_name:
            raise SchemaError(
                f"valid-time column {valid_time_column!r} is not in the "
                "schema")
        self.valid_time_column = valid_time_column

    def column(self, name: str) -> Column:
        """The column named ``name`` (raises SchemaError if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.columns) + ")"


class Relation:
    """An in-memory heap relation with event hooks and secondary indexes.

    ``xact_source`` supplies the current transaction id for version
    stamping (the database wires its transaction counter in); standalone
    relations default to a constant id 1.
    """

    def __init__(self, name: str, schema: Schema,
                 types: TypeRegistry,
                 xact_source: "Callable[[], int] | None" = None) -> None:
        self.name = name
        self.schema = schema
        self._types = types
        self._rows: dict[int, dict] = {}
        #: Dead tuple versions (no-overwrite storage), in burial order.
        self._history: list[dict] = []
        self._tid_counter = itertools.count(1)
        self._xact_source = xact_source or (lambda: 1)
        #: kind -> list of callables(event) — wired up by the rule manager.
        self.hooks: dict[str, list[Callable]] = {k: [] for k in EVENT_KINDS}
        #: column name -> index object (see repro.db.index).
        self.indexes: dict[str, object] = {}
        #: key tuple -> live tid, maintained on every mutation, so key
        #: uniqueness is O(1) instead of a full scan per insert — at
        #: alerting scale (10^5 temporal rules) the scan made catalog
        #: registration quadratic.  None when the schema has no key.
        self._key_map: dict[tuple, int] | None = \
            {} if schema.key else None
        #: Bumped on every mutation (insert/delete/update/truncate).
        #: Extracted column lanes (see :meth:`extract_lane`) are only
        #: valid while this stays unchanged — the executor extracts per
        #: statement and never caches lanes across statements.
        self._version = 0

    @property
    def data_version(self) -> int:
        """Monotone mutation counter governing extracted-lane lifetime."""
        return self._version

    # -- basic properties ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def version_count(self) -> int:
        """Total stored tuple versions, live and dead."""
        return len(self._rows) + len(self._history)

    def scan(self, as_of: int | None = None) -> Iterator[dict]:
        """Iterate over tuples (dicts including ``_tid``).

        With ``as_of``, yields the versions visible to transaction
        ``as_of``: created at or before it and not invalidated by it.
        """
        if as_of is None:
            yield from list(self._rows.values())
            return
        for row in self._history:
            if row["_tmin"] <= as_of and row["_tmax"] > as_of:
                yield row
        for row in self._rows.values():
            if row["_tmin"] <= as_of:
                yield row

    def get(self, tid: int) -> dict | None:
        """The live tuple with id ``tid``, or None."""
        return self._rows.get(tid)

    # -- validation ---------------------------------------------------------------

    def _validate(self, values: dict) -> dict:
        row: dict = {}
        for column in self.schema.columns:
            value = values.get(column.name)
            row[column.name] = self._types.get(column.type_name).validate(
                value)
        unknown = set(values) - {c.name for c in self.schema.columns} - {
            "_tid", "_tmin", "_tmax"}
        if unknown:
            raise SchemaError(
                f"unknown columns for {self.name}: {sorted(unknown)}")
        return row

    def _key_of(self, row: dict) -> tuple:
        return tuple(row[k] for k in self.schema.key)

    def _check_key(self, row: dict, ignore_tid: int | None = None) -> None:
        if self._key_map is None:
            return
        key_value = self._key_of(row)
        holder = self._key_map.get(key_value)
        if holder is not None and holder != ignore_tid:
            raise IntegrityError(
                f"duplicate key {key_value!r} in {self.name}")

    # -- mutation -----------------------------------------------------------------

    def insert(self, values: dict, fire_hooks: bool = True) -> dict:
        """Append a tuple (validated, key-checked, version-stamped)."""
        row = self._validate(values)
        self._check_key(row)
        row["_tid"] = next(self._tid_counter)
        row["_tmin"] = self._xact_source()
        self._version += 1
        self._rows[row["_tid"]] = row
        if self._key_map is not None:
            self._key_map[self._key_of(row)] = row["_tid"]
        for index in self.indexes.values():
            index.insert(row)
        if fire_hooks:
            self._fire("append", new=row)
        return row

    def insert_many(self, values_batch: "Sequence[dict]",
                    fire_hooks: bool = True) -> list[dict]:
        """Append a batch of tuples with bulk index maintenance.

        Semantically ``[self.insert(v) for v in values_batch]`` — same
        validation, key checks (including duplicates *within* the
        batch), version stamps and append events in order — but
        secondary indexes are fed the whole batch at once through
        :meth:`~repro.db.index.OrderedIndex.insert_batch` (sort once,
        one merge) instead of one O(n) ``list.insert`` per row.
        Validation failures raise before any row is stored, so a bad
        batch never half-applies.
        """
        rows: list[dict] = []
        batch_keys: set[tuple] = set()
        for values in values_batch:
            row = self._validate(values)
            self._check_key(row)
            if self._key_map is not None:
                key_value = self._key_of(row)
                if key_value in batch_keys:
                    raise IntegrityError(
                        f"duplicate key {key_value!r} in {self.name}")
                batch_keys.add(key_value)
            rows.append(row)
        xact = self._xact_source()
        self._version += 1
        for row in rows:
            row["_tid"] = next(self._tid_counter)
            row["_tmin"] = xact
            self._rows[row["_tid"]] = row
            if self._key_map is not None:
                self._key_map[self._key_of(row)] = row["_tid"]
        for index in self.indexes.values():
            if hasattr(index, "insert_batch"):
                index.insert_batch(rows)
            else:
                for row in rows:
                    index.insert(row)
        if fire_hooks:
            for row in rows:
                self._fire("append", new=row)
        return rows

    def extract_lane(self, column: str,
                     rows: "Sequence[dict] | None" = None) -> list:
        """One column's values as a flat list (the executor's lane pull).

        ``rows`` defaults to the live tuples in scan order; pass an
        explicit row list to extract over a filtered candidate set.
        The lane is a snapshot: it is only coherent with the relation
        while :attr:`data_version` is unchanged, which is why the
        vectorized executor extracts at statement start and never
        caches lanes across statements (notes §14).
        """
        if column not in self.schema:
            raise SchemaError(
                f"unknown column {column!r} in {self.name}")
        if rows is None:
            rows = list(self._rows.values())
        return [row.get(column) for row in rows]

    def delete(self, tid: int, fire_hooks: bool = True) -> dict:
        """Remove a live tuple; its version moves to history."""
        try:
            row = self._rows.pop(tid)
        except KeyError:
            raise IntegrityError(
                f"no tuple with tid {tid} in {self.name}") from None
        dead = dict(row)
        dead["_tmax"] = self._xact_source()
        self._version += 1
        self._history.append(dead)
        if self._key_map is not None:
            self._key_map.pop(self._key_of(row), None)
        for index in self.indexes.values():
            index.remove(row)
        if fire_hooks:
            self._fire("delete", current=row)
        return row

    def update(self, tid: int, changes: dict,
               fire_hooks: bool = True) -> dict:
        """Replace columns of a tuple; the old version moves to history."""
        old = self._rows.get(tid)
        if old is None:
            raise IntegrityError(f"no tuple with tid {tid} in {self.name}")
        merged = {k: v for k, v in old.items()
                  if k not in ("_tid", "_tmin", "_tmax")}
        merged.update(changes)
        row = self._validate(merged)
        self._check_key(row, ignore_tid=tid)
        row["_tid"] = tid
        row["_tmin"] = self._xact_source()
        self._version += 1
        dead = dict(old)
        dead["_tmax"] = self._xact_source()
        self._history.append(dead)
        if self._key_map is not None:
            self._key_map.pop(self._key_of(old), None)
        for index in self.indexes.values():
            index.remove(old)
        self._rows[tid] = row
        if self._key_map is not None:
            self._key_map[self._key_of(row)] = tid
        for index in self.indexes.values():
            index.insert(row)
        if fire_hooks:
            self._fire("replace", current=old, new=row)
        return row

    def notify_retrieve(self, row: dict) -> None:
        """Fire retrieve-event hooks for a tuple touched by a query."""
        self._fire("retrieve", current=row)

    def truncate(self) -> None:
        """Discard all tuples, live and historical."""
        self._version += 1
        self._rows.clear()
        self._history.clear()
        if self._key_map is not None:
            self._key_map.clear()
        for index in self.indexes.values():
            index.rebuild(self.scan())

    def vacuum(self, before_xact: int | None = None) -> int:
        """Discard dead versions (all, or those invalidated before a
        transaction id); returns how many were reclaimed."""
        if before_xact is None:
            reclaimed = len(self._history)
            self._history.clear()
            return reclaimed
        kept = [row for row in self._history
                if row["_tmax"] >= before_xact]
        reclaimed = len(self._history) - len(kept)
        self._history = kept
        return reclaimed

    # -- events ------------------------------------------------------------------

    def _fire(self, kind: str, current: dict | None = None,
              new: dict | None = None) -> None:
        if not self.hooks[kind]:
            return
        from repro.rules.events import Event  # local import, no cycle at load
        event = Event(kind=kind, relation=self.name, current=current,
                      new=new)
        for hook in self.hooks[kind]:
            hook(event)
