"""Property-based round-trip tests for persistence and the printer."""

import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import CalendarRegistry
from repro.core import CalendarSystem
from repro.db import Database
from repro.db.persist import dump_database, restore_database

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
ints = st.integers(min_value=-10_000, max_value=10_000)
texts = st.text(alphabet=string.ascii_letters + " ", max_size=20)


@st.composite
def table_specs(draw):
    n_int = draw(st.integers(min_value=1, max_value=3))
    n_text = draw(st.integers(min_value=0, max_value=2))
    columns = [(f"i{k}", "int4") for k in range(n_int)] + \
              [(f"t{k}", "text") for k in range(n_text)]
    rows = draw(st.lists(
        st.tuples(*([ints] * n_int + [texts] * n_text)),
        max_size=12))
    return columns, rows


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(table_specs(), min_size=1, max_size=3))
def test_relations_roundtrip(specs):
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    for i, (columns, rows) in enumerate(specs):
        db.create_table(f"rel{i}", columns)
        for row in rows:
            db.relation(f"rel{i}").insert(
                dict(zip((c for c, _ in columns), row)),
                fire_hooks=False)
    payload, _ = dump_database(db)
    loaded = restore_database(payload)
    for i, (columns, rows) in enumerate(specs):
        original = sorted(
            tuple(r[c] for c, _ in columns)
            for r in db.relation(f"rel{i}").scan())
        restored = sorted(
            tuple(r[c] for c, _ in columns)
            for r in loaded.relation(f"rel{i}").scan())
        assert original == restored


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    names,
    st.lists(st.tuples(st.integers(min_value=1, max_value=400),
                       st.integers(min_value=0, max_value=30)),
             min_size=1, max_size=8)),
    min_size=1, max_size=3, unique_by=lambda t: t[0]))
def test_explicit_calendars_roundtrip(calendars):
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    for name, raw in calendars:
        intervals = sorted((lo, lo + span) for lo, span in raw)
        registry.define(f"cal_{name}", values=intervals,
                        granularity="DAYS")
    payload, _ = dump_database(db)
    loaded = restore_database(payload)
    for name, _ in calendars:
        original = registry.record(f"cal_{name}").values.to_pairs()
        restored = loaded.calendars.record(f"cal_{name}").values.to_pairs()
        assert original == restored
