"""Day-count conventions: user-defined semantics for date arithmetic.

Section 1 of the paper (citing Stonebraker) motivates calendars whose date
arithmetic differs from the civil calendar: *"the yield calculation on
financial bonds uses a calendar that has 30 days in every month for date
arithmetic, but 365 days in the year for the actual yield calculation."*

Each convention pairs a day-counting rule with a year basis and yields the
``year_fraction`` used in interest formulas.  The 30/360 convention
reproduces the paper's example exactly (30-day months, 365-day year for
the yield divisor when constructed per the paper; the market-standard
360 basis is also available).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arithmetic import GregorianScheme, Thirty360Scheme
from repro.core.chrono import CivilDate, days_in_year

__all__ = [
    "DayCountConvention",
    "Thirty360",
    "Actual365Fixed",
    "ActualActual",
    "PAPER_BOND_CONVENTION",
]


class DayCountConvention:
    """Abstract day-count convention."""

    name = "abstract"

    def days(self, start: CivilDate, end: CivilDate) -> int:
        """Days from ``start`` to ``end`` under this convention."""
        raise NotImplementedError

    def year_fraction(self, start: CivilDate, end: CivilDate) -> float:
        """Fraction of a year from ``start`` to ``end``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Thirty360(DayCountConvention):
    """30/360: every month counts 30 days.

    ``year_basis`` is the denominator of the year fraction; the paper's
    bond example divides by 365 even though months count 30 days, which is
    the default here.  Pass 360 for the market-standard 30U/360.
    """

    year_basis: int = 365
    name = "30/360"

    def days(self, start: CivilDate, end: CivilDate) -> int:
        return Thirty360Scheme().days_between(start, end)

    def year_fraction(self, start: CivilDate, end: CivilDate) -> float:
        return self.days(start, end) / self.year_basis


@dataclass(frozen=True)
class Actual365Fixed(DayCountConvention):
    """Actual/365F: civil days divided by a fixed 365."""

    name = "actual/365F"

    def days(self, start: CivilDate, end: CivilDate) -> int:
        return GregorianScheme().days_between(start, end)

    def year_fraction(self, start: CivilDate, end: CivilDate) -> float:
        return self.days(start, end) / 365.0


@dataclass(frozen=True)
class ActualActual(DayCountConvention):
    """Actual/Actual (ISDA-style): per-year day counts over true year
    lengths."""

    name = "actual/actual"

    def days(self, start: CivilDate, end: CivilDate) -> int:
        return GregorianScheme().days_between(start, end)

    def year_fraction(self, start: CivilDate, end: CivilDate) -> float:
        if end < start:
            return -self.year_fraction(end, start)
        if start.year == end.year:
            return self.days(start, end) / days_in_year(start.year)
        scheme = GregorianScheme()
        fraction = 0.0
        # Remainder of the start year.
        end_of_start = CivilDate(start.year, 12, 31)
        fraction += (scheme.days_between(start, end_of_start) + 1) \
            / days_in_year(start.year)
        # Whole years in between.
        fraction += max(0, end.year - start.year - 1)
        # Beginning of the end year.
        start_of_end = CivilDate(end.year, 1, 1)
        fraction += scheme.days_between(start_of_end, end) \
            / days_in_year(end.year)
        return fraction


#: The convention the paper describes: 30-day months, 365-day year.
PAPER_BOND_CONVENTION = Thirty360(year_basis=365)
