"""Standard calendar definitions installed into a registry.

These are the calendars the paper's examples assume to exist: the weekday
calendars (``Tuesdays`` — Figure 1's worked catalog row — and friends),
``Weekdays``/``Weekends``, ``Quarters``, ``LDOM`` (last day of month), a
US-market ``HOLIDAYS`` calendar with explicitly stored values (the
``values`` catalog column), and the business-day calendar ``AM_BUS_DAYS``
derived from them.

The US federal holiday rules are computed from first principles (nth/last
weekday arithmetic on the chronology), including the Saturday→Friday and
Sunday→Monday observed shifts used by the markets.
"""

from __future__ import annotations

from repro.catalog.registry import CalendarRegistry
from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate, days_in_month, weekday
from repro.core.granularity import Granularity

__all__ = [
    "WEEKDAY_NAMES",
    "install_weekday_calendars",
    "install_standard_calendars",
    "us_federal_holidays",
    "install_us_holidays",
    "nth_weekday_of_month",
    "last_weekday_of_month",
]

#: Paper convention: Monday is day 1 of the week … Sunday is day 7.
WEEKDAY_NAMES = ("Mondays", "Tuesdays", "Wednesdays", "Thursdays",
                 "Fridays", "Saturdays", "Sundays")


def install_weekday_calendars(registry: CalendarRegistry,
                              replace: bool = False) -> None:
    """Define Mondays..Sundays as ``[k]/DAYS:during:WEEKS`` (Figure 1)."""
    for k, name in enumerate(WEEKDAY_NAMES, start=1):
        registry.define(name,
                        script=f"{{return([{k}]/DAYS:during:WEEKS);}}",
                        granularity="DAYS", replace=replace)


def install_standard_calendars(registry: CalendarRegistry,
                               replace: bool = False) -> None:
    """Install the weekday calendars plus Weekdays/Weekends/Quarters/LDOM."""
    install_weekday_calendars(registry, replace=replace)
    registry.define("Weekdays",
                    script="{return(flatten([1-5]/DAYS:during:WEEKS));}",
                    granularity="DAYS", replace=replace)
    registry.define("Weekends",
                    script="{return(flatten([6-7]/DAYS:during:WEEKS));}",
                    granularity="DAYS", replace=replace)
    registry.define("Quarters",
                    script="{return(caloperate(MONTHS, *; 3));}",
                    granularity="MONTHS", replace=replace)
    registry.define("LDOM",
                    script="{return([n]/DAYS:during:MONTHS);}",
                    granularity="DAYS", replace=replace)


# ---------------------------------------------------------------------------
# US federal holidays
# ---------------------------------------------------------------------------

def nth_weekday_of_month(year: int, month: int, wday: int,
                         n: int) -> CivilDate:
    """The n-th (1-based) ``wday`` (Mon=1..Sun=7) of a civil month."""
    first = CivilDate(year, month, 1)
    offset = (wday - weekday(first)) % 7
    day = 1 + offset + (n - 1) * 7
    return CivilDate(year, month, day)


def last_weekday_of_month(year: int, month: int, wday: int) -> CivilDate:
    """The last ``wday`` of a civil month."""
    last = CivilDate(year, month, days_in_month(year, month))
    offset = (weekday(last) - wday) % 7
    return CivilDate(year, month, last.day - offset)


def _observed(date: CivilDate) -> CivilDate | None:
    """Market-observed date: Sat -> preceding Fri, Sun -> following Mon."""
    wd = weekday(date)
    if wd == 6:
        if date.day > 1:
            return date.replace(day=date.day - 1)
        return None  # Sat Jan 1 observed Dec 31 of prior year; skip
    if wd == 7:
        if date.day < days_in_month(date.year, date.month):
            return date.replace(day=date.day + 1)
        return None
    return date


def us_federal_holidays(year: int, observed: bool = True) -> list[CivilDate]:
    """US federal holidays of ``year`` (the 1990s ten-holiday schedule)."""
    fixed = [
        CivilDate(year, 1, 1),    # New Year's Day
        CivilDate(year, 7, 4),    # Independence Day
        CivilDate(year, 11, 11),  # Veterans Day
        CivilDate(year, 12, 25),  # Christmas Day
    ]
    floating = [
        nth_weekday_of_month(year, 1, 1, 3),    # MLK Day: 3rd Mon Jan
        nth_weekday_of_month(year, 2, 1, 3),    # Presidents Day: 3rd Mon Feb
        last_weekday_of_month(year, 5, 1),      # Memorial Day: last Mon May
        nth_weekday_of_month(year, 9, 1, 1),    # Labor Day: 1st Mon Sep
        nth_weekday_of_month(year, 10, 1, 2),   # Columbus Day: 2nd Mon Oct
        nth_weekday_of_month(year, 11, 4, 4),   # Thanksgiving: 4th Thu Nov
    ]
    dates: list[CivilDate] = list(floating)
    for date in fixed:
        if observed:
            shifted = _observed(date)
            if shifted is not None:
                dates.append(shifted)
        else:
            dates.append(date)
    return sorted(set(dates))


def install_us_holidays(registry: CalendarRegistry, start_year: int,
                        end_year: int, name: str = "HOLIDAYS",
                        observed: bool = True,
                        replace: bool = False) -> Calendar:
    """Store a HOLIDAYS calendar with explicit values, plus AM_BUS_DAYS.

    ``AM_BUS_DAYS`` (the paper's American business days) is defined as the
    weekdays minus the holidays.
    """
    epoch = registry.system.epoch
    days = sorted(epoch.day_number(d)
                  for year in range(start_year, end_year + 1)
                  for d in us_federal_holidays(year, observed=observed))
    holidays = Calendar.from_intervals([(d, d) for d in days],
                                       Granularity.DAYS)
    registry.define(name, values=holidays, granularity="DAYS",
                    lifespan=(float(start_year), float(end_year)),
                    replace=replace)
    registry.define(
        "AM_BUS_DAYS",
        script=("{return(flatten([1-5]/DAYS:during:WEEKS) - "
                f"{name});}}"),
        granularity="DAYS",
        lifespan=(float(start_year), float(end_year)),
        replace=replace)
    return holidays
