"""Series-aware calendar expressions (section 6a, fully integrated).

The paper's future work asks to "modify the calendar language to allow
selection predicates on the time-series associated with calendars".  This
module does exactly that: registered series become queryable from inside
calendar expressions through the ``pattern`` function::

    registry.register_series? -- see register_series() below

    pattern("GNP", "s(t) < s(t+1)")     -- instants of successive increase
    pattern("close", "s(t) > s(t-1) and s(t) > s(t+1)")   -- local maxima

The function returns an order-1 calendar of matching instants, so the
result composes with the whole algebra — and, crucially, with temporal
rules: ``On pattern("close", "s(t) < s(t+1)") do Alert`` triggers on a
*data* condition, the paper's closing example ("the time points at which
the end-of-day closing prices for two successive days showed an
increase").
"""

from __future__ import annotations

from repro.catalog.registry import CalendarRegistry
from repro.core.calendar import Calendar
from repro.core.errors import CalendarError
from repro.core.granularity import Granularity
from repro.timeseries.patterns import Pattern, match_pattern
from repro.timeseries.series import RegularTimeSeries

__all__ = ["register_series", "registered_series", "drop_series"]

_ATTR = "_registered_series"


def _store(registry: CalendarRegistry) -> dict:
    store = getattr(registry, _ATTR, None)
    if store is None:
        store = {}
        setattr(registry, _ATTR, store)
        registry.functions["pattern"] = _make_pattern_function(registry)
    return store


def _make_pattern_function(registry: CalendarRegistry):
    def pattern_function(context, args):
        if len(args) != 2 or not all(isinstance(a, str) for a in args):
            raise CalendarError(
                'pattern("series", "predicate") takes two strings')
        series_name, predicate = args
        store = getattr(registry, _ATTR, {})
        series = store.get(series_name.lower())
        if series is None:
            raise CalendarError(
                f"unknown time series {series_name!r} "
                f"(registered: {sorted(store)})")
        instants = match_pattern(series, Pattern.parse(predicate))
        return Calendar.from_intervals([(t, t) for t in instants],
                                       Granularity.DAYS)
    return pattern_function


def register_series(registry: CalendarRegistry,
                    series: RegularTimeSeries,
                    name: str | None = None) -> None:
    """Make a series available to ``pattern(...)`` calendar expressions.

    Registration bumps the registry version, so cached expression results
    involving patterns are invalidated when the series is replaced.
    """
    _store(registry)[(name or series.name).lower()] = series
    registry.version += 1


def registered_series(registry: CalendarRegistry) -> list[str]:
    """Sorted names of series available to ``pattern(...)``."""
    return sorted(getattr(registry, _ATTR, {}))


def drop_series(registry: CalendarRegistry, name: str) -> None:
    """Unregister a series (raises if unknown)."""
    store = getattr(registry, _ATTR, {})
    try:
        del store[name.lower()]
    except KeyError:
        raise CalendarError(f"unknown time series {name!r}") from None
    registry.version += 1
