"""Manufacturing / process control: sub-day calendars (HOURS granularity).

The paper's opening sentence lists "manufacturing and process control"
among the motivating applications.  This example models a plant's shift
schedule at HOURS granularity — the same algebra, one level finer — and a
maintenance rule that must run in the first hour of the Monday day shift.

Run with::

    python examples/factory_shifts.py
"""

from repro import CalendarRegistry, CalendarSystem
from repro.catalog import install_standard_calendars
from repro.core import Granularity
from repro.lang import EvalContext, Interpreter, parse_expression


def hour_tick(system, day: int, hour: int) -> int:
    """Hour tick h (1-24) of axis day d (positive days)."""
    return (day - 1) * 24 + hour


def main() -> None:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1993"),
                                default_horizon_years=5)
    install_standard_calendars(registry)
    system = registry.system

    # Evaluate over one production week, in hour ticks.
    monday = system.day_of("Jan 4 1993")
    sunday = system.day_of("Jan 10 1993")
    window = (hour_tick(system, monday, 1), hour_tick(system, sunday, 24))
    ctx = EvalContext(system=system, resolver=registry.resolver,
                      window=window, unit=Granularity.HOURS)
    interp = Interpreter(ctx)

    def evaluate(text):
        return interp.evaluate(parse_expression(text))

    def show_hours(title, cal):
        print(f"{title}:")
        for iv in list(cal.iter_intervals())[:4]:
            day = (iv.lo - 1) // 24 + 1
            h_lo = iv.lo - (day - 1) * 24
            day_hi = (iv.hi - 1) // 24 + 1
            h_hi = iv.hi - (day_hi - 1) * 24
            print(f"   {system.date_of(day)} {h_lo - 1:02d}:00 .. "
                  f"{system.date_of(day_hi)} {h_hi:02d}:00")
        total = cal.leaf_count()
        if total > 4:
            print(f"   ... ({total} blocks total)")
        print()

    # Three 8-hour shifts: day (06-14), swing (14-22), night (22-06).
    day_shift = evaluate("caloperate(flatten([7-14]/HOURS:during:DAYS),"
                         " *; 8)")
    show_hours("Day shift blocks (06:00-14:00)", day_shift)

    swing_shift = evaluate(
        "caloperate(flatten([15-22]/HOURS:during:DAYS), *; 8)")
    show_hours("Swing shift blocks (14:00-22:00)", swing_shift)

    # Weekday day-shift only: intersect with the Weekdays calendar,
    # expressed in hours by nesting the day-level selection.
    weekday_day_shift = evaluate(
        "caloperate(flatten([7-14]/HOURS:during:"
        "flatten([1-5]/DAYS:during:WEEKS)), *; 8)")
    show_hours("Weekday day-shift blocks", weekday_day_shift)

    # Maintenance hour: the FIRST hour of the Monday day shift.
    maintenance = evaluate(
        "[7]/HOURS:during:[1]/DAYS:during:WEEKS")
    show_hours("Maintenance hour (Monday 06:00-07:00)", maintenance)

    # The same instants as day numbers for the rule scheduler:
    first = next(maintenance.iter_intervals())
    day = (first.lo - 1) // 24 + 1
    print(f"First maintenance instant: {system.date_of(day)}, "
          f"hour tick {first.lo}")


if __name__ == "__main__":
    main()
