"""Unit tests for the streaming interval kernels.

Each iterator form is compared against its eager twin on the same
input: identical pieces, identical order, bounded buffering.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core import Calendar, CalendarSystem, Granularity
from repro.core.algebra import _SortedView, _apply_over, foreach
from repro.core.interval import Interval, get_listop
from repro.core.stream import (
    PeakTracker,
    iter_difference,
    iter_intersection,
    iter_merge_overlapping,
    stream_foreach_grouped,
)


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


def lo_sorted_intervals(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    out, lo = [], 1
    for _ in range(n):
        lo += draw(st.integers(min_value=0, max_value=5))
        span = draw(st.integers(min_value=0, max_value=7))
        out.append(Interval(lo, lo + span))
    return sorted(out, key=lambda i: (i.lo, i.hi))


def disjoint_intervals(draw):
    # The shape of every real calendar tiling: strictly increasing and
    # non-overlapping — the contract of the streams the kernels consume
    # on their primary (probe) side.
    n = draw(st.integers(min_value=0, max_value=30))
    out, lo = [], 1
    for _ in range(n):
        span = draw(st.integers(min_value=0, max_value=7))
        out.append(Interval(lo, lo + span))
        lo += span + draw(st.integers(min_value=1, max_value=5))
    return out


class TestMergeOverlapping:
    @given(st.composite(lo_sorted_intervals)())
    def test_matches_eager_merge(self, intervals):
        eager = Calendar._merge_overlapping(list(intervals))
        lazy = list(iter_merge_overlapping(intervals))
        assert [(i.lo, i.hi) for i in lazy] == \
            [(i.lo, i.hi) for i in eager]

    def test_adjacent_preserved(self):
        stream = [Interval(1, 2), Interval(3, 4)]
        assert [(i.lo, i.hi) for i in iter_merge_overlapping(stream)] == \
            [(1, 2), (3, 4)]

    def test_overlap_merges(self):
        stream = [Interval(1, 5), Interval(3, 8), Interval(9, 9)]
        assert [(i.lo, i.hi) for i in iter_merge_overlapping(stream)] == \
            [(1, 8), (9, 9)]


class TestSetKernels:
    @given(st.composite(disjoint_intervals)(),
           st.composite(lo_sorted_intervals)())
    def test_intersection_matches_calendar(self, a, b):
        cal_a = Calendar.from_intervals([(i.lo, i.hi) for i in a])
        cal_b = Calendar.from_intervals([(i.lo, i.hi) for i in b])
        eager = cal_a.intersection(cal_b)
        pieces = iter_merge_overlapping(
            iter_intersection(cal_a.elements, cal_b.elements))
        lazy = Calendar.from_intervals([(i.lo, i.hi) for i in pieces])
        assert lazy.to_pairs() == eager.to_pairs()

    @given(st.composite(disjoint_intervals)(),
           st.composite(lo_sorted_intervals)())
    def test_difference_matches_calendar(self, a, b):
        cal_a = Calendar.from_intervals([(i.lo, i.hi) for i in a])
        cal_b = Calendar.from_intervals([(i.lo, i.hi) for i in b])
        eager = cal_a.difference(cal_b)
        pieces = iter_merge_overlapping(
            iter_difference(cal_a.elements, cal_b.elements))
        lazy = Calendar.from_intervals([(i.lo, i.hi) for i in pieces])
        assert lazy.to_pairs() == eager.to_pairs()


class TestStreamForeach:
    def _eager_groups(self, members, op_name, refs, strict):
        op = get_listop(op_name)
        view = _SortedView.of(
            Calendar.from_intervals([(i.lo, i.hi) for i in members]))
        groups = []
        for ref in refs:
            out = []
            _apply_over(view, op, ref, strict, out)
            groups.append([(i.lo, i.hi) for i in out])
        return groups

    @pytest.mark.parametrize("op_name,strict", [
        ("during", True), ("during", False),
        ("overlaps", True), ("overlaps", False),
        ("meets", True),
    ])
    def test_groups_match_apply_over(self, sys87, op_name, strict):
        days = sys87.generate("DAYS", "DAYS", (1, 400), mode="clip")
        months = sys87.generate("MONTHS", "DAYS", (1, 400), mode="clip")
        members = list(days.elements)
        refs = list(months.elements)
        eager = self._eager_groups(members, op_name, refs, strict)
        lazy = [None] * len(refs)
        for idx, group in stream_foreach_grouped(members, op_name, refs,
                                                 strict=strict):
            lazy[idx] = [(i.lo, i.hi) for i in group]
        assert lazy == eager

    def test_matches_foreach_kernel(self, sys87):
        days = sys87.generate("DAYS", "DAYS", (1, 400), mode="clip")
        months = sys87.generate("MONTHS", "DAYS", (1, 400), mode="clip")
        eager = foreach("during", days, months)
        groups = {idx: group for idx, group in stream_foreach_grouped(
            list(days.elements), "during", list(months.elements))}
        rebuilt = Calendar.from_calendars(
            [Calendar.from_intervals([(i.lo, i.hi) for i in groups[idx]])
             for idx in sorted(groups) if groups[idx]],
            days.granularity)
        assert rebuilt.to_pairs() == eager.to_pairs()

    def test_buffer_stays_bounded(self, sys87):
        days = sys87.generate("DAYS", "DAYS", (1, 3000), mode="clip")
        months = sys87.generate("MONTHS", "DAYS", (1, 3000), mode="clip")
        tracker = PeakTracker()
        for _ in stream_foreach_grouped(list(days.elements), "during",
                                        list(months.elements),
                                        tracker=tracker):
            pass
        # Peak buffered members ~ one month of days, not 3000 days.
        assert tracker.peak <= 64
        assert tracker.peak >= 28


class TestPeakTracker:
    def test_peak_accounting(self):
        tracker = PeakTracker()
        tracker.add(10)
        tracker.sub(5)
        tracker.add(3)
        assert tracker.live == 8
        assert tracker.peak == 10
        stats = {"peak_live_intervals": 4}
        tracker.publish(stats)
        assert stats["peak_live_intervals"] == 10
        tracker.publish({"peak_live_intervals": 99})


class TestIterGenerate:
    @pytest.mark.parametrize("cal,unit,window,mode", [
        ("MONTHS", "DAYS", (1, 400), "clip"),
        ("MONTHS", "DAYS", (1, 400), "cover"),
        ("YEARS", "DAYS", (-200, 900), "cover"),
        ("WEEKS", "DAYS", (1, 100), "clip"),
        ("WEEKS", "WEEKS", (1, 50), "clip"),
        ("DAYS", "HOURS", (1, 480), "clip"),
        ("MONTHS", "HOURS", (1, 2000), "cover"),
        ("YEARS", "MONTHS", (1, 30), "clip"),
    ])
    def test_matches_generate(self, sys87, cal, unit, window, mode):
        eager = sys87.generate(cal, unit, window, mode=mode)
        streamed = list(sys87.iter_generate(cal, unit, window, mode=mode))
        assert [(iv.lo, iv.hi) for iv, _ in streamed] == \
            [(iv.lo, iv.hi) for iv in eager.elements]
        labels = [label for _, label in streamed]
        if eager.labels is None:
            assert all(label is None for label in labels)
        else:
            assert labels == list(eager.labels)
