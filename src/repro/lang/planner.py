"""Compiling calendar expressions into evaluation plans (section 3.4).

The planner consumes a (preferably factorized) expression AST and emits a
:class:`~repro.lang.plan.Plan`.  It implements the two optimisations the
paper's parsing algorithm calls for:

* **Window narrowing via selection look-ahead** — when a subtree is
  restricted by a label selection over YEARS (``1993/YEARS``), every basic
  calendar generated *inside* that subtree only needs values for that
  year's tick range.  For the non-overlapping listops (``<``, ``meets``)
  the left operand additionally needs history before the window, so its
  window is extended back to the context window's start (the paper notes
  the interval "may not be uniform for all nodes of the parse tree").
* **Shared-calendar caching** — a calendar "encountered more than once" is
  generated once: structurally identical subtrees with the same window are
  assigned the same register.

The planner is window-conservative: a narrowed window is only used where
provably sufficient, otherwise the context window applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.basis import CalendarSystem
from repro.core.granularity import Granularity, exact_ratio
from repro.lang import ast
from repro.lang.defs import BasicDef, DerivedDef, ExplicitDef, Resolver
from repro.lang.errors import PlanError
from repro.lang.factorizer import base_calendar_of
from repro.lang.plan import (
    CONTEXT_WINDOW,
    CalOperateStep,
    ForEachStep,
    FlattenStep,
    GenerateCallStep,
    HullStep,
    InstantsStep,
    ShiftStep,
    GenerateStep,
    IntervalStep,
    LabelSelectStep,
    LoadStep,
    Plan,
    PlanStep,
    PointStep,
    SelectStep,
    SetOpStep,
    TodayStep,
    WindowSpec,
)

__all__ = ["Planner", "compile_expression"]

#: Listops whose left operand relates to points *before* the right operand;
#: window narrowing must keep history for them.
_LOOKBACK_OPS = ("<", "meets", "<=")

#: Nominal span, in days, of one unit of each basic calendar; a narrowed
#: window is padded by the coarsest unit appearing in a subtree so that
#: units partially overlapping the window are generated whole (positional
#: selection inside a truncated week/month would otherwise be wrong).
_NOMINAL_DAYS = {
    Granularity.SECONDS: 1,
    Granularity.MINUTES: 1,
    Granularity.HOURS: 1,
    Granularity.DAYS: 1,
    Granularity.WEEKS: 7,
    Granularity.MONTHS: 31,
    Granularity.YEARS: 366,
    Granularity.DECADES: 3653,
    Granularity.CENTURY: 36525,
}

#: Unit granularities finer than a day: their generation windows get an
#: exact per-expression pad instead of the context's blanket (one month of
#: ticks), which over-pads day-coarse expressions ~30x and *under*-pads
#: year-coarse ones.
_SUBDAY_UNITS = (Granularity.SECONDS, Granularity.MINUTES, Granularity.HOURS)


def _skip_zero(t: int) -> int:
    return t if t != 0 else -1


@dataclass
class Planner:
    """Stateful single-expression plan compiler."""

    system: CalendarSystem
    resolver: Resolver
    unit: Granularity = Granularity.DAYS
    #: Static context window (unit ticks); used to bound look-back
    #: extension.  None leaves look-back windows symbolic (context).
    context_window: tuple[int, int] | None = None
    #: Disable window narrowing (ablation switch): every generate step
    #: uses the full context window.
    narrow: bool = True
    #: Active span tracer (or None): planner decisions — window
    #: narrowing, shared-register reuse — are recorded as point events.
    tracer: object | None = None

    _steps: list[PlanStep] = field(default_factory=list)
    _registers: dict = field(default_factory=dict)
    _counter: int = 0
    _gen_pad: int | None = None

    # -- public -------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> Plan:
        """Compile an expression AST into an evaluation plan."""
        self._gen_pad = self._generation_pad(expr)
        result = self._compile(expr, self._root_window(expr))
        return Plan(self._steps, result)

    def _generation_pad(self, expr: ast.Expr) -> int | None:
        """Exact generation-window pad (unit ticks) for sub-day units.

        The evaluation context's blanket pad is one month of unit ticks —
        744 for HOURS — regardless of what the expression references.  For
        sub-day units the coarsest granularity in the expression bounds
        how far a boundary unit can reach, so the pad only needs that
        span in ticks (24 for a day-coarse hourly expression).  ``None``
        (DAYS and coarser units, or expressions referencing derived
        calendars whose granularity is unknown) keeps the legacy blanket.
        """
        if self.unit not in _SUBDAY_UNITS:
            return None
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and \
                    not isinstance(self.resolver(sub.ident), BasicDef):
                return None
        return _NOMINAL_DAYS[self._coarsest_in(expr)] * \
            exact_ratio(self.unit, Granularity.DAYS)

    # -- window analysis ------------------------------------------------------

    def _root_window(self, expr: ast.Expr) -> WindowSpec:
        intrinsic = self._intrinsic_window(expr)
        return intrinsic if intrinsic is not None else CONTEXT_WINDOW

    def _intrinsic_window(self, expr: ast.Expr) -> WindowSpec | None:
        """A window this subtree is provably confined to, if any."""
        if not self.narrow:
            return None
        if isinstance(expr, ast.LabelSelect):
            base = base_calendar_of(expr.child, self.resolver)
            if base == "YEARS" and isinstance(expr.label, int):
                return self._year_window(expr.label)
            return self._intrinsic_window(expr.child)
        if isinstance(expr, ast.Select):
            return self._intrinsic_window(expr.child)
        if isinstance(expr, ast.ForEach):
            # The result of a foreach is confined to (around) its right
            # operand's window for overlapping ops; look-back ops reach
            # earlier, so only the right operand's bound is usable when the
            # op keeps results inside the reference.
            if expr.op in _LOOKBACK_OPS:
                return None
            return self._intrinsic_window(expr.right)
        if isinstance(expr, ast.IntervalLit):
            return WindowSpec((expr.lo, expr.hi))
        return None

    def _year_window(self, year: int) -> WindowSpec | None:
        """Tick window of a civil year in the planner's unit, if exact."""
        if self.unit != Granularity.DAYS:
            # Day-based narrowing only; other units stay conservative.
            return None
        lo, hi = self.system.epoch.days_of_year(year)
        if self.context_window is not None:
            # The reference evaluation materialises YEARS over the
            # context window padded by one year of days (366, the
            # EvalContext blanket) and keeps whole overlapping units; a
            # year disjoint from that padded window never exists there,
            # so narrowing to it would conjure elements the reference
            # selection leaves empty.  Decline and let the label select
            # come out empty over the context window instead.
            if hi < self.context_window[0] - 366 or \
                    lo > self.context_window[1] + 366:
                return None
        if self.tracer is not None:
            self.tracer.event("planner.narrow", year=year, lo=lo, hi=hi)
        return WindowSpec((lo, hi))

    def _extend_back(self, window: WindowSpec) -> WindowSpec:
        """Extend a window's start back to the context window (look-back)."""
        if window.fixed is None:
            return window
        if self.context_window is None:
            return CONTEXT_WINDOW
        return WindowSpec((min(self.context_window[0], window.fixed[0]),
                           window.fixed[1]))

    def _coarsest_in(self, expr: ast.Expr) -> Granularity:
        """Coarsest basic calendar referenced anywhere in ``expr``."""
        coarsest = Granularity.DAYS
        for sub in ast.walk(expr):
            gran: Granularity | None = None
            if isinstance(sub, ast.Name):
                definition = self.resolver(sub.ident)
                if isinstance(definition, BasicDef):
                    gran = definition.granularity
            elif isinstance(sub, ast.FunCall) and sub.name == "generate" \
                    and sub.args and isinstance(sub.args[0], ast.Name):
                try:
                    gran = Granularity.parse(sub.args[0].ident)
                except Exception:
                    gran = None
            if gran is not None and gran > coarsest:
                coarsest = gran
        return coarsest

    def _pad_window(self, window: WindowSpec, expr: ast.Expr) -> WindowSpec:
        """Pad a fixed window by one coarsest-unit span on each side."""
        if window.fixed is None:
            return window
        if self.unit == Granularity.DAYS:
            pad = _NOMINAL_DAYS[self._coarsest_in(expr)]
        elif self.unit in _SUBDAY_UNITS:
            pad = _NOMINAL_DAYS[self._coarsest_in(expr)] * \
                exact_ratio(self.unit, Granularity.DAYS)
        else:
            return window
        if pad <= 1:
            return window
        lo, hi = window.fixed
        padded = (_skip_zero(lo - pad), _skip_zero(hi + pad))
        if self.context_window is not None:
            padded = (max(padded[0], self.context_window[0]),
                      min(padded[1], self.context_window[1]))
            if padded[0] > padded[1]:
                return window
        return WindowSpec(padded)

    # -- compilation -------------------------------------------------------------

    def _fresh(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _emit(self, key, make_step) -> str:
        """Emit a step unless an identical one already has a register."""
        if key in self._registers:
            if self.tracer is not None:
                self.tracer.event("planner.shared_register",
                                  register=self._registers[key],
                                  kind=key[0])
            return self._registers[key]
        target = self._fresh()
        self._steps.append(make_step(target))
        self._registers[key] = target
        return target

    def _compile(self, expr: ast.Expr, window: WindowSpec) -> str:
        if isinstance(expr, ast.Name):
            return self._compile_name(expr, window)
        if isinstance(expr, ast.ForEach):
            return self._compile_foreach(expr, window)
        if isinstance(expr, ast.Select):
            source = self._compile(expr.child, window)
            key = ("select", str(expr.predicate), source)
            return self._emit(key, lambda t: SelectStep(t, expr.predicate,
                                                        source))
        if isinstance(expr, ast.LabelSelect):
            child_window = self._intrinsic_window(expr) or window
            source = self._compile(expr.child, child_window)
            key = ("label", expr.label, source)
            return self._emit(key, lambda t: LabelSelectStep(t, expr.label,
                                                             source))
        if isinstance(expr, ast.SetOp):
            left = self._compile(expr.left, window)
            right = self._compile(expr.right, window)
            key = ("setop", expr.op, left, right)
            return self._emit(key, lambda t: SetOpStep(t, expr.op, left,
                                                       right))
        if isinstance(expr, ast.IntervalLit):
            key = ("interval", expr.lo, expr.hi)
            return self._emit(key, lambda t: IntervalStep(t, expr.lo,
                                                          expr.hi))
        if isinstance(expr, ast.Today):
            return self._emit(("today",), lambda t: TodayStep(t))
        if isinstance(expr, ast.FunCall):
            return self._compile_funcall(expr, window)
        raise PlanError(f"cannot compile expression {expr}")

    def _compile_name(self, expr: ast.Name, window: WindowSpec) -> str:
        definition = self.resolver(expr.ident)
        if definition is None:
            raise PlanError(f"unknown calendar {expr.ident!r}")
        if isinstance(definition, BasicDef):
            key = ("generate", definition.granularity, window)
            return self._emit(key, lambda t: GenerateStep(
                t, definition.granularity, window, self._gen_pad))
        key = ("load", expr.ident.lower())
        return self._emit(key, lambda t: LoadStep(t, expr.ident))

    def _compile_foreach(self, expr: ast.ForEach, window: WindowSpec) -> str:
        right_window = self._intrinsic_window(expr.right) or window
        left_window = self._pad_window(right_window, expr.left)
        if expr.op in _LOOKBACK_OPS:
            left_window = self._extend_back(right_window)
        right = self._compile(expr.right, right_window)
        left = self._compile(expr.left, left_window)
        key = ("foreach", expr.op, expr.strict, left, right)
        return self._emit(key, lambda t: ForEachStep(t, expr.op, expr.strict,
                                                     left, right))

    def _compile_funcall(self, expr: ast.FunCall, window: WindowSpec) -> str:
        if expr.name == "generate":
            args = expr.args
            if len(args) not in (4, 5):
                raise PlanError("generate() takes 4 or 5 arguments")
            cal = self._text_arg(args[0])
            unit = self._text_arg(args[1])
            start = self._value_arg(args[2])
            end = self._value_arg(args[3])
            mode = self._text_arg(args[4]) if len(args) == 5 else "clip"
            key = ("generate-call", cal, unit, start, end, mode)
            return self._emit(key, lambda t: GenerateCallStep(
                t, cal, unit, start, end, mode))
        if expr.name == "caloperate":
            if len(expr.args) < 3:
                raise PlanError("caloperate() takes at least 3 arguments")
            source = self._compile(expr.args[0], window)
            end_arg = expr.args[1]
            if end_arg == "*":
                end: int | None = None
            elif isinstance(end_arg, ast.NumberLit):
                end = end_arg.value
            elif isinstance(end_arg, ast.StringLit):
                end = self.system.day_of(end_arg.value)
            else:
                raise PlanError("bad caloperate end argument")
            counts = []
            for arg in expr.args[2:]:
                if not isinstance(arg, ast.NumberLit):
                    raise PlanError("caloperate counts must be integers")
                counts.append(arg.value)
            key = ("caloperate", source, tuple(counts), end)
            return self._emit(key, lambda t: CalOperateStep(
                t, source, tuple(counts), end))
        if expr.name == "flatten":
            if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Expr):
                raise PlanError("flatten() takes one calendar argument")
            source = self._compile(expr.args[0], window)
            return self._emit(("flatten", source),
                              lambda t: FlattenStep(t, source))
        if expr.name == "shift":
            if len(expr.args) != 2 or not isinstance(expr.args[0],
                                                     ast.Expr) or \
                    not isinstance(expr.args[1], ast.NumberLit):
                raise PlanError(
                    "shift(calendar, n) takes a calendar and an integer")
            # A shifted result can stray outside a narrowed window by the
            # delta; widen the child window accordingly.
            child_window = window
            if window.fixed is not None:
                delta = expr.args[1].value
                lo, hi = window.fixed
                lo, hi = lo - abs(delta), hi + abs(delta)
                child_window = WindowSpec((_skip_zero(lo), _skip_zero(hi)))
            source = self._compile(expr.args[0], child_window)
            delta = expr.args[1].value
            return self._emit(("shift", source, delta),
                              lambda t: ShiftStep(t, source, delta))
        if expr.name == "instants":
            if len(expr.args) != 1 or not isinstance(expr.args[0],
                                                     ast.Expr):
                raise PlanError("instants() takes one calendar argument")
            source = self._compile(expr.args[0], window)
            return self._emit(("instants", source),
                              lambda t: InstantsStep(t, source))
        if expr.name == "hull":
            if len(expr.args) != 1 or not isinstance(expr.args[0],
                                                     ast.Expr):
                raise PlanError("hull() takes one calendar argument")
            source = self._compile(expr.args[0], window)
            return self._emit(("hull", source),
                              lambda t: HullStep(t, source))
        if expr.name in ("point", "date"):
            if len(expr.args) != 1 or not isinstance(expr.args[0],
                                                     ast.StringLit):
                raise PlanError('point("date string") takes one string')
            text = expr.args[0].value
            key = ("point", text)
            return self._emit(key, lambda t: PointStep(t, text))
        raise PlanError(f"cannot compile call to {expr.name!r}")

    @staticmethod
    def _text_arg(arg) -> str:
        if isinstance(arg, ast.Name):
            return arg.ident
        if isinstance(arg, ast.StringLit):
            return arg.value
        raise PlanError(f"expected a name or string argument, got {arg}")

    @staticmethod
    def _value_arg(arg):
        if isinstance(arg, ast.StringLit):
            return arg.value
        if isinstance(arg, ast.NumberLit):
            return arg.value
        raise PlanError("generate window bounds must be strings or numbers")


def compile_expression(expr: ast.Expr, system: CalendarSystem,
                       resolver: Resolver,
                       unit: Granularity = Granularity.DAYS,
                       context_window: tuple[int, int] | None = None,
                       narrow: bool = True,
                       matcache=None, memo_key=None,
                       tracer=None) -> Plan:
    """Compile ``expr`` into an evaluation plan.

    When a :class:`~repro.core.matcache.MaterialisationCache` and a
    ``memo_key`` are given, the compiled plan is memoised under
    ``("plan", memo_key, unit, context_window, narrow)`` — plans are
    deterministic in the expression, the resolver state the key must
    encode (the registry embeds its version), and these parameters, so
    repeated evaluations skip the compile entirely.  A raised
    :class:`~repro.lang.errors.PlanError` is memoised too, sparing
    repeated doomed compiles of uncompilable expressions.
    """
    if matcache is not None and memo_key is not None:
        full_key = ("plan", memo_key, unit, context_window, narrow)
        cached = matcache.memo_get(full_key)
        if isinstance(cached, Plan):
            if tracer is not None:
                tracer.event("planner.plan_cached", steps=len(cached.steps))
            return cached
        if isinstance(cached, PlanError):
            raise cached
    planner = Planner(system=system, resolver=resolver, unit=unit,
                      context_window=context_window, narrow=narrow,
                      tracer=tracer)
    try:
        plan = planner.compile(expr)
    except PlanError as exc:
        if matcache is not None and memo_key is not None:
            matcache.memo_put(full_key, exc)
        raise
    if matcache is not None and memo_key is not None:
        matcache.memo_put(full_key, plan)
    return plan
