"""Calendars: structured (order-n) collections of intervals.

Section 3.1 of the paper defines a *calendar* as a structured collection of
intervals whose *order* is the depth of the nesting:
``{(l1,u1), …, (ln,un)}`` is a calendar of order 1 and
``{S1, …, Sm}`` with each ``Si`` an order-1 calendar is a calendar of
order 2.

:class:`Calendar` is immutable.  Elements of an order-1 calendar are
:class:`~repro.core.interval.Interval` values kept in the order they were
supplied (calendars are *lists*, not sets — selection is positional);
elements of an order-k calendar (k > 1) are order-(k-1) calendars.

Optionally each element may carry a *label* (e.g. the YEARS calendar labels
its intervals with Gregorian year numbers) enabling the language's bare
label selection ``1993/YEARS``.

The set operations ``+`` (union), ``-`` (difference) and ``&``
(intersection) are defined on order-1 calendars with pointwise semantics;
``+`` keeps element boundaries where operands do not overlap (so that
positional selection remains meaningful), merging only genuinely
overlapping intervals.
"""

from __future__ import annotations

import bisect

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.errors import CalendarError, InvalidIntervalError
from repro.core.granularity import Granularity
from repro.core.interval import Interval

__all__ = ["Calendar", "EMPTY"]

Label = int | str | None


def _coerce_interval(value: "Interval | tuple[int, int]") -> Interval:
    if isinstance(value, Interval):
        return value
    if isinstance(value, tuple) and len(value) == 2:
        return Interval(value[0], value[1])
    raise InvalidIntervalError(f"cannot interpret {value!r} as an interval")


@dataclass(frozen=True)
class Calendar:
    """An immutable structured collection of intervals.

    Construct order-1 calendars with :meth:`from_intervals` and deeper
    calendars with :meth:`from_calendars`; the raw constructor is mainly
    for internal use.
    """

    elements: tuple = ()
    order: int = 1
    granularity: Granularity | None = None
    labels: tuple | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.order < 1:
            raise CalendarError(f"calendar order must be >= 1, got {self.order}")
        if self.order == 1:
            for el in self.elements:
                if not isinstance(el, Interval):
                    raise CalendarError(
                        f"order-1 calendar elements must be intervals, got {el!r}")
        else:
            for el in self.elements:
                if not isinstance(el, Calendar) or el.order != self.order - 1:
                    raise CalendarError(
                        f"order-{self.order} calendar elements must be "
                        f"order-{self.order - 1} calendars, got {el!r}")
        if self.labels is not None and len(self.labels) != len(self.elements):
            raise CalendarError("labels must parallel elements")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals: Sequence["Interval | tuple[int, int]"],
                       granularity: Granularity | None = None,
                       labels: Sequence[Label] | None = None) -> "Calendar":
        """Build an order-1 calendar from intervals or ``(lo, hi)`` pairs."""
        els = tuple(_coerce_interval(i) for i in intervals)
        return cls(els, 1, granularity,
                   tuple(labels) if labels is not None else None)

    @classmethod
    def from_calendars(cls, calendars: Sequence["Calendar"],
                       granularity: Granularity | None = None,
                       labels: Sequence[Label] | None = None) -> "Calendar":
        """Build an order-(k+1) calendar from order-k calendars."""
        cals = tuple(calendars)
        if not cals:
            return cls((), 2, granularity)
        sub_order = cals[0].order
        return cls(cals, sub_order + 1, granularity,
                   tuple(labels) if labels is not None else None)

    @classmethod
    def point(cls, t: int, granularity: Granularity | None = None) -> "Calendar":
        """An order-1 calendar holding the single instant ``t``."""
        return cls.from_intervals([Interval(t, t)], granularity)

    @classmethod
    def interval(cls, lo: int, hi: int,
                 granularity: Granularity | None = None) -> "Calendar":
        """An order-1 calendar holding the single interval ``(lo, hi)``."""
        return cls.from_intervals([Interval(lo, hi)], granularity)

    # -- basic inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.elements)

    def __bool__(self) -> bool:
        """Paper semantics: a calendar is *false* when it is empty (null)."""
        return bool(self.elements)

    def __iter__(self) -> Iterator:
        return iter(self.elements)

    def __getitem__(self, index: int):
        return self.elements[index]

    def is_empty(self) -> bool:
        """True when the calendar has no elements (the paper's null)."""
        return not self.elements

    def with_granularity(self, granularity: Granularity) -> "Calendar":
        """A copy carrying the given granularity."""
        return Calendar(self.elements, self.order, granularity, self.labels)

    def with_labels(self, labels: Sequence[Label]) -> "Calendar":
        """A copy with per-element labels (for bare label selection)."""
        return Calendar(self.elements, self.order, self.granularity,
                        tuple(labels))

    def label_of(self, index: int) -> Label:
        """The label of element ``index``, or None when unlabelled."""
        if self.labels is None:
            return None
        return self.labels[index]

    def find_label(self, label: Label) -> int | None:
        """Index of the element carrying ``label``, or ``None``."""
        if self.labels is None:
            return None
        try:
            return self.labels.index(label)
        except ValueError:
            return None

    # -- geometry -------------------------------------------------------------

    def iter_intervals(self) -> Iterator[Interval]:
        """Depth-first iteration over all leaf intervals."""
        for el in self.elements:
            if isinstance(el, Interval):
                yield el
            else:
                yield from el.iter_intervals()

    def flatten(self) -> "Calendar":
        """Collapse to order 1, preserving depth-first leaf order."""
        if self.order == 1:
            return self
        return Calendar.from_intervals(tuple(self.iter_intervals()),
                                       self.granularity)

    def span(self) -> Interval | None:
        """Smallest interval covering the whole calendar, or ``None``."""
        lo = hi = None
        for iv in self.iter_intervals():
            lo = iv.lo if lo is None else min(lo, iv.lo)
            hi = iv.hi if hi is None else max(hi, iv.hi)
        if lo is None or hi is None:
            return None
        return Interval(lo, hi)

    def contains_point(self, t: int) -> bool:
        """True when some leaf interval contains the axis point ``t``."""
        return any(t in iv for iv in self.iter_intervals())

    def leaf_count(self) -> int:
        """Total number of leaf intervals at any depth."""
        return sum(1 for _ in self.iter_intervals())

    def drop_empty(self) -> "Calendar":
        """Recursively remove empty sub-calendars (the paper's ε exclusion)."""
        if self.order == 1:
            return self
        kept: list[Calendar] = []
        kept_labels: list[Label] = []
        for i, el in enumerate(self.elements):
            sub = el.drop_empty()
            if sub.is_empty():
                continue
            kept.append(sub)
            kept_labels.append(self.label_of(i))
        labels = tuple(kept_labels) if self.labels is not None else None
        return Calendar(tuple(kept), self.order, self.granularity, labels)

    # -- pointwise set operations (order 1) ------------------------------------

    def _require_order1(self, op: str, other: "Calendar | None" = None) -> None:
        if self.order != 1 or (other is not None and other.order != 1):
            raise CalendarError(f"{op} is defined on order-1 calendars only")

    @staticmethod
    def _merge_overlapping(intervals: "list[Interval]") -> "list[Interval]":
        """Sort and merge overlapping intervals (adjacency is preserved)."""
        merged: list[Interval] = []
        for iv in sorted(intervals, key=lambda i: (i.lo, i.hi)):
            if merged and merged[-1].overlaps(iv):
                merged[-1] = merged[-1].union_hull(iv)
            else:
                merged.append(iv)
        return merged

    def union(self, other: "Calendar") -> "Calendar":
        """Pointwise union; merges only genuinely overlapping intervals."""
        self._require_order1("union", other)
        merged = self._merge_overlapping([*self.elements, *other.elements])
        return Calendar.from_intervals(merged, self.granularity)

    @staticmethod
    def _overlap_window(other: "Calendar"):
        """Columnar overlap lookup over ``other``'s elements.

        When ``other`` is sorted by both endpoints (true for every
        generated tiling and every sorted point set), the elements that
        can overlap a probe interval form a contiguous slice found by two
        binary searches; unsorted operands fall back to the full range.
        Returns ``(elements, window(iv) -> (start, end))``.
        """
        from repro.core.algebra import _SortedView
        view = _SortedView.of(other)
        if view.hi_sorted:
            los, his = view.los, view.his
            return view.elements, lambda iv: (
                bisect.bisect_left(his, iv.lo),
                bisect.bisect_right(los, iv.hi))
        n = len(view.elements)
        return view.elements, lambda iv: (0, n)

    def difference(self, other: "Calendar") -> "Calendar":
        """Pointwise difference, splitting partially covered intervals."""
        self._require_order1("difference", other)
        cuts, window = self._overlap_window(other)
        result: list[Interval] = []
        for iv in self.elements:
            start, end = window(iv)
            pieces = [iv]
            for k in range(start, end):
                cut = cuts[k]
                pieces = [p for piece in pieces for p in piece.subtract(cut)]
                if not pieces:
                    break
            result.extend(pieces)
        return Calendar.from_intervals(self._merge_overlapping(result),
                                       self.granularity)

    def intersection(self, other: "Calendar") -> "Calendar":
        """Pointwise intersection."""
        self._require_order1("intersection", other)
        others, window = self._overlap_window(other)
        result: list[Interval] = []
        for iv in self.elements:
            start, end = window(iv)
            for k in range(start, end):
                common = iv.intersect(others[k])
                if common is not None:
                    result.append(common)
        return Calendar.from_intervals(self._merge_overlapping(result),
                                       self.granularity)

    def __add__(self, other: "Calendar") -> "Calendar":
        return self.union(other)

    def __sub__(self, other: "Calendar") -> "Calendar":
        return self.difference(other)

    def __and__(self, other: "Calendar") -> "Calendar":
        return self.intersection(other)

    # -- presentation -----------------------------------------------------------

    def __str__(self) -> str:
        if self.order == 1:
            inner = ",".join(str(iv) for iv in self.elements)
        else:
            inner = ",".join(str(el) for el in self.elements)
        return "{" + inner + "}"

    def __repr__(self) -> str:
        gran = f", granularity={self.granularity}" if self.granularity else ""
        return f"Calendar(order={self.order}, {self}{gran})"

    def to_pairs(self):
        """Plain nested tuples mirroring the paper's notation (for tests)."""
        if self.order == 1:
            return tuple((iv.lo, iv.hi) for iv in self.elements)
        return tuple(el.to_pairs() for el in self.elements)


#: The empty order-1 calendar.
EMPTY = Calendar()
