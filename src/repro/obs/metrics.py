"""Process metrics: counters, gauges and monotonic-timing histograms.

A :class:`MetricsRegistry` owns named instruments.  Instruments are
created on first use (``registry.counter("matcache.hits")``) and the same
object is returned for the same name thereafter, so call sites can bind
an instrument once and update it lock-cheap in hot loops.  Three kinds:

* :class:`Counter` — a monotonically increasing integer (events, items);
* :class:`Gauge` — a point-in-time value that moves both ways (drift,
  heap depth);
* :class:`Histogram` — a distribution over fixed exponential buckets,
  tuned for wall-clock timings measured with
  :func:`time.perf_counter` (1µs … 10s).

Passing ``labels=("tenant", "shard")`` to the registry constructors
returns a *family* (:class:`CounterFamily` / :class:`GaugeFamily` /
:class:`HistogramFamily`) instead of a single instrument.  A family
holds one child instrument per label-value tuple
(``family.labels("acme", "3")``); children are plain instruments, so
hot call sites bind a child once and pay exactly the unlabelled cost
thereafter.  Every family has a cardinality governor: at most
``max_series`` children are admitted, after which unseen label sets
collapse into a reserved all-``other`` child and the registry's
``metrics.series_dropped`` counter is incremented — hostile tenant ids
cannot grow the registry without bound.

Every instrument is thread-safe; snapshots (:meth:`MetricsRegistry.
snapshot`) are consistent per instrument, not across instruments — good
enough for observability, cheap enough for hot paths.
"""

from __future__ import annotations

import bisect
import threading
import time

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "CounterFamily", "GaugeFamily", "HistogramFamily",
           "DEFAULT_LATENCY_BOUNDS", "DEFAULT_MAX_SERIES",
           "OTHER_LABEL_VALUE", "SERIES_DROPPED_METRIC",
           "escape_label_value", "series_key"]

#: Upper bounds (seconds) of the default latency buckets: a 1-2.5-5
#: series from 1µs to 10s; one implicit overflow bucket above the last.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)

#: Default per-family series cap enforced by the cardinality governor.
DEFAULT_MAX_SERIES = 64

#: Label value of the reserved overflow series a governed family
#: collapses excess label sets into.
OTHER_LABEL_VALUE = "other"

#: Registry-level counter incremented whenever a label set is collapsed.
SERIES_DROPPED_METRIC = "metrics.series_dropped"


def escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text exposition."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def series_key(name: str, label_names: "tuple[str, ...]",
               values: "tuple[str, ...]") -> str:
    """The flat ``name{k="v",...}`` key a labelled child appears under."""
    inner = ",".join(f'{k}="{escape_label_value(v)}"'
                     for k, v in zip(label_names, values))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (stats-reset support, not for normal use)."""
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Move the gauge by ``delta`` (either direction)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """The current gauge value."""
        return self._value

    def reset(self) -> None:
        """Zero the gauge."""
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A fixed-bucket histogram for monotonic (perf_counter) timings.

    Buckets are defined by their inclusive upper bounds plus an implicit
    overflow bucket; the defaults cover 1µs–10s on a 1-2.5-5 series.
    Tracks count, sum, min and max exactly; quantiles are estimated from
    the bucket boundaries (an upper bound — good enough to find a hot
    kernel, not for SLA maths).  An observation may carry a trace id;
    the latest such observation per bucket is retained as an exemplar
    for the Prometheus exposition.
    """

    __slots__ = ("name", "description", "bounds", "_counts", "_count",
                 "_sum", "_min", "_max", "_exemplars", "_lock")

    def __init__(self, name: str, description: str = "",
                 bounds: "tuple[float, ...] | None" = None) -> None:
        self.name = name
        self.description = description
        self.bounds = tuple(bounds) if bounds is not None \
            else DEFAULT_LATENCY_BOUNDS
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError(
                f"histogram {name!r} bucket bounds must be sorted and "
                "non-empty")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._exemplars: "dict[int, tuple[float, str, float]] | None" = None
        self._lock = threading.Lock()

    def observe(self, value: float, trace_id: "str | None" = None) -> None:
        """Record one sample, optionally tagged with a trace id."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if trace_id is not None:
                if self._exemplars is None:
                    self._exemplars = {}
                self._exemplars[index] = (float(value), str(trace_id),
                                          time.time())

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all recorded samples."""
        return self._sum

    def exemplars(self) -> "dict[int, tuple[float, str, float]]":
        """Latest ``(value, trace_id, wall_ts)`` per bucket index.

        Index ``len(bounds)`` is the overflow (``+Inf``) bucket, matching
        the enumeration order of :meth:`cumulative_buckets`.
        """
        with self._lock:
            return dict(self._exemplars) if self._exemplars else {}

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0..1); None when empty.

        Returns the upper bound of the bucket holding the quantile
        (clamped to the observed max), an intentionally conservative
        estimate.  A single-observation histogram returns that sole
        value exactly.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            if self._count == 1:
                return self._min
            rank = q * self._count
            seen = 0
            for i, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    bound = self.bounds[i] if i < len(self.bounds) \
                        else self._max
                    return min(bound, self._max)
            return self._max

    def percentile(self, q: float) -> float | None:
        """Interpolated ``q``-percentile (0..1); None when empty.

        Unlike :meth:`quantile` (which returns the holding bucket's
        upper bound), this interpolates linearly *within* the bucket by
        the rank's position among its samples, clamped to the observed
        min/max — a smoother estimate for ``\\metrics``-style display.
        A single-observation histogram returns that sole value exactly,
        never an interpolation against the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile {q} outside [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            if self._count == 1:
                return self._min
            counts = list(self._counts)
            count, lo, hi = self._count, self._min, self._max
        rank = q * count
        seen = 0
        for i, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else hi
                fraction = (rank - seen) / bucket_count
                value = lower + (upper - lower) * max(0.0, fraction)
                return min(max(value, lo), hi)
            seen += bucket_count
        return hi

    def cumulative_buckets(self) -> "list[tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The final pair carries ``float('inf')`` and equals the total
        sample count — the ``le="+Inf"`` bucket of the text exposition.
        """
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out

    def summary(self) -> dict:
        """Count/sum/mean/min/max plus p50/p90/p99 estimates."""
        with self._lock:
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        out = {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": lo,
            "max": hi,
        }
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            out[label] = self.quantile(q)
        return out

    def reset(self) -> None:
        """Drop every recorded sample."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._exemplars = None

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._count})"


# -- Labelled instrument families ----------------------------------------------


class _Family:
    """A named set of child instruments keyed by label-value tuples.

    ``labels(*values)`` (or ``labels(tenant="acme", ...)``) resolves the
    child for one label set, creating it on first use.  The cardinality
    governor caps the number of distinct children at ``max_series``:
    once full, unseen label sets resolve to a single reserved child
    whose every label value is ``"other"``, and ``on_drop`` (wired by
    the registry to the ``metrics.series_dropped`` counter) fires per
    collapsed resolution.  Children are ordinary instruments — bind one
    outside the hot loop and updates cost the same as unlabelled.
    """

    __slots__ = ("name", "description", "label_names", "max_series",
                 "_child_factory", "_on_drop", "_children", "_other",
                 "_lock")

    #: Child instrument class, set by the concrete family.
    child_kind: type = object

    def __init__(self, name: str, description: str,
                 label_names: "tuple[str, ...]", max_series: int,
                 child_factory, on_drop=None) -> None:
        self.name = name
        self.description = description
        self.label_names = tuple(str(label) for label in label_names)
        if not self.label_names:
            raise ValueError(f"family {name!r} needs at least one label")
        if len(set(self.label_names)) != len(self.label_names):
            raise ValueError(f"family {name!r} has duplicate label names")
        if max_series < 1:
            raise ValueError(f"family {name!r} max_series must be >= 1")
        self.max_series = max_series
        self._child_factory = child_factory
        self._on_drop = on_drop
        self._children: dict = {}
        self._other = None
        self._lock = threading.Lock()

    def labels(self, *values, **named):
        """The child instrument for one label-value tuple.

        Accepts positional values in label order, or keyword values by
        label name (not both).  Values are coerced to ``str``.  Resolving
        a label set the governor has already collapsed returns the
        reserved ``other`` child.
        """
        if named:
            if values:
                raise ValueError(
                    f"family {self.name!r}: pass label values either "
                    "positionally or by name, not both")
            try:
                values = tuple(named[label] for label in self.label_names)
            except KeyError as exc:
                raise ValueError(
                    f"family {self.name!r} missing label {exc.args[0]!r}"
                ) from None
            if len(named) != len(self.label_names):
                unknown = set(named) - set(self.label_names)
                raise ValueError(
                    f"family {self.name!r} unknown labels {sorted(unknown)}")
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"family {self.name!r} expects {len(self.label_names)} "
                f"label values ({', '.join(self.label_names)}), "
                f"got {len(key)}")
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_series:
                if self._on_drop is not None:
                    self._on_drop()
                return self._overflow_child()
            child = self._child_factory(key)
            self._children[key] = child
            return child

    def _overflow_child(self):
        # Called under self._lock.  Reuse an explicitly created
        # all-"other" child if one exists so the series stays unique.
        if self._other is None:
            key = (OTHER_LABEL_VALUE,) * len(self.label_names)
            existing = self._children.get(key)
            self._other = existing if existing is not None \
                else self._child_factory(key)
        return self._other

    def series(self) -> dict:
        """``{label_values: child}`` for every live series (other last)."""
        with self._lock:
            out = dict(self._children)
            if self._other is not None:
                out.setdefault(
                    (OTHER_LABEL_VALUE,) * len(self.label_names),
                    self._other)
        return out

    @property
    def series_count(self) -> int:
        """Number of live series including the reserved overflow child."""
        return len(self.series())

    def reset(self) -> None:
        """Reset every child (series are kept, values zeroed)."""
        for child in self.series().values():
            child.reset()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name}, "
                f"labels={self.label_names}, series={self.series_count})")


class CounterFamily(_Family):
    """A labelled set of :class:`Counter` children."""

    __slots__ = ()
    child_kind = Counter


class GaugeFamily(_Family):
    """A labelled set of :class:`Gauge` children."""

    __slots__ = ()
    child_kind = Gauge


class HistogramFamily(_Family):
    """A labelled set of :class:`Histogram` children (shared bounds)."""

    __slots__ = ()
    child_kind = Histogram


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    Passing ``labels=(...)`` returns a labelled family instead of a
    plain instrument; a name is either plain or labelled, never both,
    and a labelled name's label set and kind are frozen at creation.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}")
            return instrument

    def _family(self, name: str, description: str, family_kind,
                labels, max_series, child_factory):
        label_names = tuple(str(label) for label in labels)
        cap = DEFAULT_MAX_SERIES if max_series is None else int(max_series)
        dropped = self._get_or_create(
            SERIES_DROPPED_METRIC, Counter,
            lambda: Counter(
                SERIES_DROPPED_METRIC,
                "Label sets collapsed into the reserved `other` series "
                "by the cardinality governor"))
        family = self._get_or_create(
            name, family_kind,
            lambda: family_kind(name, description, label_names, cap,
                                child_factory, on_drop=dropped.inc))
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names}, not {label_names}")
        return family

    def counter(self, name: str, description: str = "", *,
                labels: "tuple[str, ...] | None" = None,
                max_series: "int | None" = None):
        """The counter (or counter family) named ``name``."""
        if labels is None:
            return self._get_or_create(
                name, Counter, lambda: Counter(name, description))
        names = tuple(str(label) for label in labels)
        return self._family(
            name, description, CounterFamily, names, max_series,
            lambda values: Counter(series_key(name, names, values),
                                   description))

    def gauge(self, name: str, description: str = "", *,
              labels: "tuple[str, ...] | None" = None,
              max_series: "int | None" = None):
        """The gauge (or gauge family) named ``name``."""
        if labels is None:
            return self._get_or_create(
                name, Gauge, lambda: Gauge(name, description))
        names = tuple(str(label) for label in labels)
        return self._family(
            name, description, GaugeFamily, names, max_series,
            lambda values: Gauge(series_key(name, names, values),
                                 description))

    def histogram(self, name: str, description: str = "",
                  bounds: "tuple[float, ...] | None" = None, *,
                  labels: "tuple[str, ...] | None" = None,
                  max_series: "int | None" = None):
        """The histogram (or histogram family) named ``name``."""
        if labels is None:
            return self._get_or_create(
                name, Histogram,
                lambda: Histogram(name, description, bounds))
        names = tuple(str(label) for label in labels)
        return self._family(
            name, description, HistogramFamily, names, max_series,
            lambda values: Histogram(series_key(name, names, values),
                                     description, bounds))

    def names(self) -> list[str]:
        """Sorted names of every registered instrument and family."""
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str):
        """The instrument or family under ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> dict:
        """A plain-dict snapshot of every instrument, keyed by name.

        Counters and gauges map to their value; histograms to their
        :meth:`Histogram.summary` dict.  Labelled children appear under
        flat ``name{label="value",...}`` keys, one per live series.
        """
        with self._lock:
            instruments = list(self._instruments.items())
        out: dict = {}
        for name, instrument in sorted(instruments):
            if isinstance(instrument, _Family):
                for values, child in sorted(instrument.series().items()):
                    key = series_key(name, instrument.label_names, values)
                    if isinstance(child, Histogram):
                        out[key] = child.summary()
                    else:
                        out[key] = child.value
            elif isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def reset(self) -> None:
        """Reset every instrument (counters/gauges to 0, histograms empty)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()
