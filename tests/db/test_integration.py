"""E10: the university query from section 1, end to end.

"Retrieve the names of all foreign students who worked more than 20 hours
in any week during the semester" — with the semester defined as an
application-specific calendar in the catalog.
"""

import pytest


@pytest.fixture()
def university(db):
    # The Spring 1993 semester is specific to the university and changes
    # from year to year: define it as a calendar.
    system = db.system
    db.calendars.define(
        "SPRING_SEMESTER_93",
        values=[(system.day_of("Jan 19 1993"),
                 system.day_of("May 14 1993"))],
        granularity="DAYS")
    db.create_table(
        "work_weeks",
        [("student", "text"), ("citizen", "text"),
         ("week_start", "abstime"), ("hours", "int4")],
        valid_time_column="week_start")
    records = [
        # (student, citizenship, week starting, hours)
        ("ana", "MX", "Feb 1 1993", 24),     # foreign, >20, in semester
        ("ana", "MX", "Jun 7 1993", 30),     # ... but outside semester
        ("bo", "CN", "Mar 8 1993", 19),      # foreign, under the limit
        ("chad", "US", "Feb 8 1993", 35),    # domestic
        ("dee", "IN", "Apr 12 1993", 21),    # foreign, >20, in semester
        ("eli", "FR", "Jan 4 1993", 40),     # foreign, >20, BEFORE term
    ]
    for student, citizen, week, hours in records:
        db.insert("work_weeks", student=student, citizen=citizen,
                  week_start=system.day_of(week), hours=hours)
    return db


def test_foreign_students_over_20_hours_in_semester(university):
    result = university.execute(
        'retrieve (w.student) from w in work_weeks '
        'where w.hours > 20 and w.citizen != "US" '
        'and w.week_start within "SPRING_SEMESTER_93"')
    assert sorted(set(result.column("student"))) == ["ana", "dee"]


def test_same_query_via_on_clause(university):
    result = university.execute(
        'retrieve (w.student) from w in work_weeks '
        'where w.hours > 20 and w.citizen != "US" '
        'on SPRING_SEMESTER_93')
    assert sorted(set(result.column("student"))) == ["ana", "dee"]


def test_semester_calendar_redefinition_changes_answer(university):
    # Next year the semester moves: redefine the calendar, not the query.
    system = university.system
    university.calendars.define(
        "SPRING_SEMESTER_93",
        values=[(system.day_of("Jan 4 1993"),
                 system.day_of("Apr 30 1993"))],
        granularity="DAYS", replace=True)
    result = university.execute(
        'retrieve (w.student) from w in work_weeks '
        'where w.hours > 20 and w.citizen != "US" '
        'and w.week_start within "SPRING_SEMESTER_93"')
    assert sorted(set(result.column("student"))) == ["ana", "dee", "eli"]


def test_count_of_heavy_weeks_per_query(university):
    result = university.execute(
        'retrieve (count()) from w in work_weeks '
        'where w.hours > 20 on SPRING_SEMESTER_93')
    assert result.rows[0]["count()"] == 3  # ana, chad, dee


def test_retrieve_on_expiration_date_style(university):
    """Section 1's 'Retrieve (stock.price) on expiration-date'."""
    system = university.system
    db = university
    db.create_table("stock", [("symbol", "text"), ("day", "abstime"),
                              ("price", "float8")],
                    valid_time_column="day")
    for offset, price in enumerate([100.0, 101.5, 99.0, 102.25, 103.0]):
        db.insert("stock", symbol="XYZ",
                  day=system.day_of("Nov 15 1993") + offset, price=price)
    db.calendars.define(
        "expiration_date",
        values=[(system.day_of("Nov 19 1993"),
                 system.day_of("Nov 19 1993"))],
        granularity="DAYS")
    result = db.execute(
        "retrieve (s.price) from s in stock on expiration_date")
    assert result.column("price") == [103.0]
