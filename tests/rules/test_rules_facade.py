"""Tests for the ``Session.rules`` facade and the define_* deprecation."""

import json
import urllib.request

import pytest

from repro.session import Session


@pytest.fixture()
def session():
    sess = Session("Jan 1 1987")
    sess.registry.define("PINGS", values=[(5, 5), (9, 9)],
                         granularity="DAYS")
    yield sess
    sess.close()


class TestOnCalendar:
    def test_declares_and_fires(self, session):
        fired = []
        rule = session.rules.on_calendar(
            "ping", expression="PINGS",
            callback=lambda d, t: fired.append(t), after=1)
        assert rule.tenant == "default"
        assert rule.priority == 0
        assert "ping" in session.rules
        session.cron.run_until(12)
        assert fired == [5, 9]

    def test_arguments_are_keyword_only(self, session):
        with pytest.raises(TypeError):
            session.rules.on_calendar("ping", "PINGS")

    def test_tenant_and_priority_land_on_the_rule(self, session):
        rule = session.rules.on_calendar(
            "ping", expression="PINGS", callback=lambda d, t: None,
            tenant="payroll", priority=7)
        assert (rule.tenant, rule.priority) == ("payroll", 7)
        assert session.rules.get("ping") is rule


class TestOnEvent:
    def test_declares_and_fires(self, session):
        session.db.create_table("emp", [("name", "text"),
                                        ("hours", "int4")])
        seen = []
        session.rules.on_event(
            "audit", event="append", relation="emp",
            where="new.hours > 20",
            callback=lambda d, e: seen.append(e.new["name"]))
        session.db.insert("emp", name="alice", hours=25)
        session.db.insert("emp", name="bob", hours=10)
        assert seen == ["alice"]

    def test_arguments_are_keyword_only(self, session):
        with pytest.raises(TypeError):
            session.rules.on_event("audit", "append", "emp")


class TestFacadeSurface:
    def test_names_len_and_drop(self, session):
        session.db.create_table("emp", [("name", "text")])
        session.rules.on_event("e1", event="append", relation="emp",
                               callback=lambda d, e: None)
        session.rules.on_calendar("t1", expression="PINGS",
                                  callback=lambda d, t: None)
        assert session.rules.names() == ["e1", "t1"]
        assert len(session.rules) == 2
        session.rules.drop("t1")
        assert "t1" not in session.rules
        assert len(session.rules) == 1

    def test_dropped_rule_never_fires(self, session):
        fired = []
        session.rules.on_calendar("ping", expression="PINGS",
                                  callback=lambda d, t: fired.append(t),
                                  after=1)
        session.rules.drop("ping")
        session.cron.run_until(12)
        assert fired == []

    def test_stats_shape(self):
        # Pin the scheduler so the shape is stable whatever REPRO_WHEEL
        # the surrounding run exports (CI runs the suite both ways).
        sess = Session("Jan 1 1987", scheduler="wheel")
        try:
            sess.registry.define("PINGS", values=[(5, 5), (9, 9)],
                                 granularity="DAYS")
            sess.rules.on_calendar("ping", expression="PINGS",
                                   callback=lambda d, t: None, after=1)
            sess.cron.run_until(12)
            stats = sess.rules.stats()
            assert stats["temporal_rules"] == 1
            assert stats["clock"] == 12
            daemon = stats["daemon"]
            assert daemon["scheduler"] == "wheel"
            assert daemon["fires"] == 2
            assert daemon["probes"] >= 1
            assert stats["schedule"]["kind"] == "wheel"
            assert "throttle" not in stats  # none attached
        finally:
            sess.close()

    def test_survives_database_reattachment(self, session):
        facade = session.rules
        old_cron = session.cron
        session.attach_database(session.db)
        assert session.rules is facade
        assert session.cron is not old_cron
        # The facade reads through the session: stats reflect the new
        # daemon, and the detached one no longer hears the clock.
        assert facade.stats()["daemon"]["fires"] == 0
        fired = []
        facade.on_calendar("ping", expression="PINGS",
                           callback=lambda d, t: fired.append(t), after=1)
        session.cron.run_until(6)
        assert fired == [5]
        assert old_cron.stats.fires == 0


class TestSchedulerSelection:
    def test_session_scheduler_override(self):
        sess = Session("Jan 1 1987", scheduler="heap")
        try:
            assert sess.cron.scheduler == "heap"
            assert sess.rules.stats()["schedule"]["kind"] == "heap"
        finally:
            sess.close()

    def test_wheel_shards_override(self):
        sess = Session("Jan 1 1987", scheduler="wheel", wheel_shards=3)
        try:
            assert sess.cron.sched.shards == 3
        finally:
            sess.close()

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_WHEEL", "0")
        sess = Session("Jan 1 1987")
        try:
            assert sess.cron.scheduler == "heap"
        finally:
            sess.close()


class TestDeprecatedShims:
    def test_define_temporal_rule_warns_and_works(self, session):
        fired = []
        with pytest.warns(DeprecationWarning, match="declare_temporal"):
            session.manager.define_temporal_rule(
                "ping", "PINGS", callback=lambda d, t: fired.append(t),
                after=1)
        session.cron.run_until(12)
        assert fired == [5, 9]

    def test_define_event_rule_warns_and_works(self, session):
        session.db.create_table("emp", [("name", "text")])
        seen = []
        with pytest.warns(DeprecationWarning, match="declare_event"):
            session.manager.define_event_rule(
                "audit", "append", "emp",
                callback=lambda d, e: seen.append(e.new["name"]))
        session.db.insert("emp", name="carol")
        assert seen == ["carol"]

    def test_new_entry_points_do_not_warn(self, session, recwarn):
        session.manager.declare_temporal("ping", expression="PINGS",
                                         callback=lambda d, t: None)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestRulesEndpoint:
    def test_rules_stats_served_over_http(self, session):
        fired = []
        session.rules.on_calendar("ping", expression="PINGS",
                                  callback=lambda d, t: fired.append(t),
                                  after=1)
        session.cron.run_until(6)
        server = session.start_telemetry_server(0)
        url = f"http://127.0.0.1:{server.port}/rules"
        with urllib.request.urlopen(url, timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["temporal_rules"] == 1
        # Whatever scheduler the run selected, the endpoint reports it.
        assert payload["daemon"]["scheduler"] == session.cron.scheduler
        assert payload["daemon"]["fires"] == len(fired) == 1
        assert payload["schedule"]["kind"] == session.cron.scheduler
