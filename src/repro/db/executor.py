"""Query execution for the Postquel-like language.

Two engines share this module:

* the historical **row-at-a-time** engine: nested-loop joins over the
  from-clause range variables with predicate pushdown, an
  :class:`~repro.db.index.OrderedIndex` probe for
  ``var.col = <const>`` conjuncts, and a per-tuple
  :class:`~repro.db.index.IntervalIndex` probe for ``on <calendar>``;
* the **vectorized** engine (``REPRO_VECTOR_DB``, default on): retrieve
  statements whose predicate classifies cleanly (see
  :mod:`repro.db.vector`) run as a batch pipeline — per-variable
  selection vectors with batched calendar probes, hash / sort-merge
  equi-joins, Piatov-style endpoint sweeps for ``overlaps``/``during``
  conjuncts, and one batched calendar-membership pass for the
  ``on <calendar>`` clause.  Anything the planner cannot classify
  (historical ``as of`` scans, overridden operators, cross-variable
  arithmetic, …) falls back to the row engine wholesale, so the two
  always agree tuple-for-tuple.

Operator dispatch goes through the extensible
:class:`~repro.db.types.OperatorRegistry` first (so user-declared ADT
operators — the POSTGRES extensibility story — take precedence), falling
back to built-in arithmetic/comparison semantics.

``retrieve`` fires a *retrieve* event for every tuple that contributes to
the result, which is what lets event rules monitor reads (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Sequence

from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate
from repro.core.columnar import interval_join_pairs
from repro.db import vector
from repro.db.errors import ExecutionError, SchemaError
from repro.db.index import IntervalIndex, OrderedIndex
from repro.db.ql.ast import (
    Append,
    BinOp,
    ColumnRef,
    Const,
    CreateIndex,
    CreateTable,
    DefineCalendar,
    DefineRule,
    Delete,
    DropRule,
    DropTable,
    FuncCall,
    QlExpr,
    Replace,
    Retrieve,
    Statement,
    Target,
    UnOp,
)

__all__ = ["Result", "Executor", "AGGREGATES"]

AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass
class Result:
    """A retrieve result: ordered column names and rows of dicts."""

    columns: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    #: Number of tuples touched by a mutation statement.
    affected: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one result column, in row order."""
        return [row[name] for row in self.rows]

    def first(self) -> dict | None:
        """The first result row, or None."""
        return self.rows[0] if self.rows else None

    def to_table(self) -> str:
        """Render as a fixed-width text table."""
        if not self.columns:
            return f"({self.affected} tuples affected)"
        widths = {c: len(c) for c in self.columns}
        rendered = []
        for row in self.rows:
            cells = {c: str(row.get(c)) for c in self.columns}
            for c in self.columns:
                widths[c] = max(widths[c], len(cells[c]))
            rendered.append(cells)
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [header, sep]
        for cells in rendered:
            lines.append(" | ".join(cells[c].ljust(widths[c])
                                    for c in self.columns))
        return "\n".join(lines)


def _type_name(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int4"
    if isinstance(value, float):
        return "float8"
    if isinstance(value, str):
        return "text"
    if isinstance(value, CivilDate):
        return "date"
    if isinstance(value, Calendar):
        return "calendar"
    return "any"


class Executor:
    """Executes statements against a :class:`repro.db.database.Database`."""

    def __init__(self, database) -> None:
        self.db = database

    # -- public ------------------------------------------------------------------

    def execute(self, statement: Statement,
                bindings: dict | None = None) -> Result:
        """Run one parsed statement with optional variable bindings.

        Every execution is timed into the ``db.query.latency`` histogram
        and the per-relation ``db.relation.query_seconds`` family
        (exemplar-linked to the executor span's trace id when tracing
        is on) and — with tracing on — wrapped in an
        ``executor.<Kind>`` span;
        with a telemetry pipeline attached a ``query.execute`` event
        records the statement kind and result cardinality.  The
        instrumentation bundle is looked up per call because a session
        may swap the database's bundle after this executor was built.
        """
        inst = self.db.instrumentation
        kind = type(statement).__name__
        tracer = inst.tracer
        t0 = perf_counter()
        trace_id = None
        if tracer is not None:
            with tracer.span(f"executor.{kind}") as span:
                result = self._dispatch(statement, bindings)
            # Past the per-trace span budget the tracer hands out a
            # timing-free stand-in with no trace id to link to.
            trace_id = getattr(span, "trace_id", None)
        else:
            result = self._dispatch(statement, bindings)
        elapsed = perf_counter() - t0
        inst.metrics.histogram("db.query.latency").observe(elapsed)
        inst.metrics.histogram(
            "db.relation.query_seconds",
            "Query latency per target relation",
            labels=("relation",), max_series=128,
        ).labels(self._statement_relation(statement)) \
            .observe(elapsed, trace_id)
        if inst.pipeline is not None:
            inst.pipeline.emit("query.execute", kind=kind,
                               rows=len(result.rows),
                               affected=result.affected,
                               duration_s=elapsed)
        return result

    @staticmethod
    def _statement_relation(statement: Statement) -> str:
        """The relation a statement targets, for per-relation metrics.

        Joins are attributed to their first range variable's relation;
        statements with no relation (define calendar/rule, …) land in
        the ``-`` series.  The labelled family is cardinality-governed,
        so a schema with hundreds of relations collapses the tail into
        ``other`` rather than growing the registry unboundedly.
        """
        if isinstance(statement, (Append, CreateIndex)):
            return statement.relation
        if isinstance(statement, (Retrieve, Replace, Delete)):
            if statement.range_vars:
                return statement.range_vars[0].relation
            if isinstance(statement, (Replace, Delete)):
                # Implicit range: the variable names the relation.
                return statement.var
            return "-"
        if isinstance(statement, (CreateTable, DropTable)):
            return statement.name
        return "-"

    def _dispatch(self, statement: Statement, bindings: dict | None
                  ) -> Result:
        bindings = dict(bindings or {})
        if isinstance(statement, Retrieve):
            return self._retrieve(statement, bindings)
        if isinstance(statement, Append):
            return self._append(statement, bindings)
        if isinstance(statement, Replace):
            return self._replace(statement, bindings)
        if isinstance(statement, Delete):
            return self._delete(statement, bindings)
        if isinstance(statement, CreateTable):
            self.db.create_table(statement.name, statement.columns,
                                 key=statement.key,
                                 valid_time_column=statement
                                 .valid_time_column)
            return Result(affected=0)
        if isinstance(statement, CreateIndex):
            self.db.create_index(statement.relation, statement.column)
            return Result(affected=0)
        if isinstance(statement, DropTable):
            self.db.drop_table(statement.name)
            return Result(affected=0)
        if isinstance(statement, DefineCalendar):
            self.db.calendars.define(
                statement.name, script=statement.script,
                values=(list(statement.values)
                        if statement.values is not None else None),
                granularity=statement.granularity)
            return Result(affected=0)
        if isinstance(statement, DefineRule):
            return self._define_rule(statement)
        if isinstance(statement, DropRule):
            self._rule_manager().drop_rule(statement.name)
            return Result(affected=0)
        raise ExecutionError(f"cannot execute {statement!r}")

    def _rule_manager(self):
        manager = self.db.rule_manager
        if manager is None:
            raise ExecutionError(
                "no rule manager is attached to this database "
                "(create a repro.rules.RuleManager first)")
        return manager

    def _define_rule(self, stmt: DefineRule) -> Result:
        manager = self._rule_manager()
        if stmt.calendar_expression is not None:
            manager.declare_temporal(
                stmt.name, expression=stmt.calendar_expression,
                actions=stmt.actions)
        else:
            rule = manager.declare_event(
                stmt.name, event=stmt.event, relation=stmt.relation,
                condition=None, actions=stmt.actions)
            rule.condition = stmt.condition
        return Result(affected=0)

    # -- explain -----------------------------------------------------------------

    def explain(self, statement: Statement) -> str:
        """Describe how a retrieve would execute (no tuples touched).

        Reports, per range variable: scan strategy (sequential, index
        probe, or historical ``as of`` scan) and the predicate conjuncts
        evaluated at that join level (the pushdown placement), plus any
        ``on <calendar>`` restriction and post-processing steps.

        When the statement classifies for the vectorized engine, a
        ``vectorized pipeline`` section lists the chosen strategy per
        conjunct (``hash join``, ``merge join``, ``endpoint sweep``,
        ``batched calendar sweep``, ``sequential fallback``); otherwise
        a ``vectorized: off`` line states why — e.g. that an ``as of``
        historical scan forces the sequential path.
        """
        if not isinstance(statement, Retrieve):
            raise ExecutionError("explain supports retrieve statements")
        lines: list[str] = []
        conjuncts = []
        for term in self._conjuncts(statement.where):
            refs: set = set()
            self._referenced_vars(term, refs)
            level = 0
            remaining = set(refs)
            for i, rv in enumerate(statement.range_vars):
                remaining.discard(rv.var)
                if not remaining:
                    level = i
                    break
            else:
                level = max(0, len(statement.range_vars) - 1)
            conjuncts.append((level, term))
        for i, rv in enumerate(statement.range_vars):
            relation = self.db.relation(rv.relation)
            if rv.as_of is not None:
                strategy = f"historical scan (as of {rv.as_of})"
            else:
                strategy = "sequential scan"
                for column, _ in self._equality_terms(
                        statement.where, rv.var, {})                         if statement.where is not None else ():
                    if isinstance(relation.indexes.get(column),
                                  OrderedIndex):
                        strategy = f"index probe on {rv.relation}.{column}"
                        break
            lines.append(f"{'  ' * i}-> {rv.var} in {rv.relation}: "
                         f"{strategy}")
            terms = [str(t) for lvl, t in conjuncts if lvl == i]
            if terms:
                lines.append(f"{'  ' * i}   filter: "
                             + " and ".join(terms))
        plan, reason = (vector.plan_retrieve(statement, self.db, set())
                        if statement.range_vars else (None, None))
        if statement.on_calendar:
            probe = ("batched calendar sweep" if plan is not None
                     else "interval index")
            lines.append(f"valid-time restriction: on "
                         f"{statement.on_calendar!r} ({probe})")
        if plan is not None:
            strategies = self._vector_strategies(statement, plan)
            if strategies:
                lines.append("vectorized pipeline (REPRO_VECTOR_DB):")
                for term, strategy in strategies:
                    lines.append(f"  {term}: {strategy}")
            else:
                lines.append("vectorized pipeline (REPRO_VECTOR_DB): "
                             "full scan, no predicate")
        elif reason is not None:
            lines.append(f"vectorized: off ({reason})")
        if statement.unique:
            lines.append("post: unique")
        if statement.order_by:
            keys = ", ".join(str(e) for e, _ in statement.order_by)
            lines.append(f"post: order by {keys}")
        if statement.into:
            lines.append(f"post: materialise into {statement.into}")
        if not lines:
            return "-> constant result"
        return "\n".join(lines)

    # -- retrieve ----------------------------------------------------------------

    def _retrieve(self, stmt: Retrieve, bindings: dict) -> Result:
        where = stmt.where
        calendar_index = self._on_calendar_index(stmt)
        aggregate_mode = stmt.targets and all(
            isinstance(t.expr, FuncCall) and t.expr.name in AGGREGATES
            for t in stmt.targets)
        columns = [t.name for t in stmt.targets]
        rows: list[dict] = []
        acc: dict[int, list] = {i: [] for i in range(len(stmt.targets))}
        plan, _reason = vector.plan_retrieve(stmt, self.db, set(bindings))
        fast_count = None
        combos: "Iterator[dict] | list[dict]"
        if plan is not None:
            try:
                order, rows_by, positions = self._vector_positions(
                    stmt, plan, bindings, calendar_index)
            except (ExecutionError, TypeError):
                # A batch kernel hit a data-dependent evaluation error
                # (NULL in a comparison, incomparable types) on a row
                # the row engine's short-circuit order might never have
                # reached.  Re-run sequentially so both the rows and
                # any error are exactly the row engine's.
                self.db.instrumentation.metrics.counter(
                    "db.join.strategy",
                    "Vectorized conjunct executions by chosen strategy",
                    labels=("strategy",), max_series=8,
                ).labels(vector.STRAT_SEQUENTIAL).inc()
                plan = None
        if plan is not None:
            count_only = bool(aggregate_mode) and all(
                t.expr.name == "count" and not t.expr.args
                for t in stmt.targets)
            hooked = any(self.db.relation(rv.relation).hooks["retrieve"]
                         for rv in stmt.range_vars)
            if count_only and not hooked:
                # count() over a hook-free retrieve needs only the
                # surviving combo count — skip dict materialisation.
                fast_count = len(positions)
                combos = ()
            else:
                combos = self._position_combos(order, rows_by, positions,
                                               bindings)
        else:
            combos = self._sequential_combos(stmt, where, bindings,
                                             calendar_index)
        for combo in combos:
            self._fire_retrieve(stmt.range_vars, combo)
            if aggregate_mode:
                for i, target in enumerate(stmt.targets):
                    call = target.expr
                    if call.args:
                        acc[i].append(self._eval(call.args[0], combo))
                    else:
                        acc[i].append(1)
            else:
                rows.append({t.name: self._eval(t.expr, combo)
                             for t in stmt.targets})
        if fast_count is not None:
            rows = [{t.name: fast_count for t in stmt.targets}]
        elif aggregate_mode:
            row = {}
            for i, target in enumerate(stmt.targets):
                row[target.name] = self._aggregate(target.expr.name, acc[i])
            rows = [row]
        if stmt.unique:
            seen: set = set()
            deduped = []
            for row in rows:
                key = tuple(sorted((k, repr(v)) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if stmt.order_by:
            # Stable multi-key sort: apply keys right-to-left.
            for expr, ascending in reversed(stmt.order_by):
                rows.sort(key=lambda row, e=expr: self._order_key(e, row),
                          reverse=not ascending)
        result = Result(columns=columns, rows=rows)
        if stmt.into is not None:
            self._materialise_into(stmt.into, result)
        return result

    def _order_key(self, expr: QlExpr, row: dict):
        # Order-by expressions are evaluated against the projected row:
        # a bare column name (parsed as ColumnRef(name, "")) refers to a
        # result column; var.column re-evaluation is not available after
        # projection, so qualified refs must also appear in the targets.
        if isinstance(expr, ColumnRef):
            name = expr.column or expr.var
            if name in row:
                return row[name]
        raise ExecutionError(
            f"order by key {expr} must name a result column")

    def _materialise_into(self, relation_name: str, result: Result) -> None:
        if relation_name not in self.db:
            columns = []
            sample = result.rows[0] if result.rows else {}
            for name in result.columns:
                value = sample.get(name)
                columns.append((name, _type_name(value)
                                if value is not None else "text"))
            self.db.create_table(relation_name, columns)
        relation = self.db.relation(relation_name)
        for row in result.rows:
            relation.insert(dict(row), fire_hooks=False)

    @staticmethod
    def _aggregate(name: str, values: list):
        if name == "count":
            return len(values)
        values = [v for v in values if v is not None]
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        raise ExecutionError(f"unknown aggregate {name!r}")

    def _on_calendar_index(self, stmt: Retrieve) -> IntervalIndex | None:
        if stmt.on_calendar is None:
            return None
        if not stmt.range_vars:
            raise ExecutionError("'on <calendar>' requires a from clause")
        calendar = self.db.resolve_calendar(stmt.on_calendar)
        return IntervalIndex(calendar.flatten()
                             if calendar.order != 1 else calendar)

    def _valid_time_ok(self, stmt: Retrieve, combo: dict,
                       index: IntervalIndex) -> bool:
        var = stmt.range_vars[0].var
        relation = self.db.relation(stmt.range_vars[0].relation)
        column = relation.schema.valid_time_column
        if column is None:
            raise ExecutionError(
                f"relation {relation.name!r} has no valid-time column for "
                "'on <calendar>'")
        value = combo[var].get(column)
        return value is not None and index.contains(value)

    def _fire_retrieve(self, range_vars, combo: dict) -> None:
        for rv in range_vars:
            relation = self.db.relation(rv.relation)
            relation.notify_retrieve(combo[rv.var])

    # -- vectorized pipeline -------------------------------------------------------

    def _sequential_combos(self, stmt: Retrieve, where, bindings: dict,
                           calendar_index) -> Iterator[dict]:
        """The row-at-a-time engine: nested-loop bindings, per-tuple
        calendar probe, full predicate recheck."""
        for combo in self._bindings(stmt.range_vars, where, bindings):
            if calendar_index is not None and not self._valid_time_ok(
                    stmt, combo, calendar_index):
                continue
            if where is not None and not self._truthy(
                    self._eval(where, combo)):
                continue
            yield combo

    @staticmethod
    def _position_combos(order, rows_by, positions, extra: dict
                         ) -> Iterator[dict]:
        """Inflate position tuples back into binding dicts lazily."""
        for pos in positions:
            combo = dict(extra)
            for var, p in zip(order, pos):
                combo[var] = rows_by[var][p]
            yield combo

    def _vector_positions(self, stmt: Retrieve, plan, extra: dict,
                          calendar_index):
        """Run the batch pipeline for a classified retrieve.

        Returns ``(order, rows_by, positions)``: the range-variable
        order, each variable's candidate row list, and the surviving
        combos as tuples of positions into those lists.  Combos carry
        positions, not dicts — binding dicts are only inflated for the
        tuples that survive every filter and join.
        """
        metrics = self.db.instrumentation.metrics
        strategies = metrics.counter(
            "db.join.strategy",
            "Vectorized conjunct executions by chosen strategy",
            labels=("strategy",), max_series=8)
        batch_rows = metrics.histogram(
            "db.batch.rows",
            "Candidate batch sizes entering the vectorized pipeline")
        order = list(plan.order)
        env_base = dict(extra)
        rows_by: dict[str, list] = {}
        empty = (order, rows_by, [])
        for term in plan.const_terms:
            strategies.labels(vector.STRAT_SEQUENTIAL).inc()
            if not self._truthy(self._eval(term, env_base)):
                return empty
        sel_by: dict[str, list[int]] = {}
        full_by: dict[str, bool] = {}
        for rv in stmt.range_vars:
            relation = self.db.relation(rv.relation)
            rows, sel, full = self._vector_candidates(
                relation, rv.var, plan, env_base, strategies)
            batch_rows.observe(len(rows))
            rows_by[rv.var] = rows
            sel_by[rv.var] = sel
            full_by[rv.var] = full
            if not sel:
                return empty
        combos: list[tuple] = [(p,) for p in sel_by[order[0]]]
        idx_of = {order[0]: 0}
        edges_left = list(plan.edges)
        relations = {rv.var: self.db.relation(rv.relation)
                     for rv in stmt.range_vars}
        base_pair = True  # combos are still exactly var0's candidates
        for var in order[1:]:
            applicable = [e for e in edges_left
                          if var in e.vars() and
                          (set(e.vars()) - {var}) <= set(idx_of)]
            if not applicable:
                sel = sel_by[var]
                combos = [c + (p,) for c in combos for p in sel]
            else:
                primary = applicable[0]
                combos = self._vector_join(
                    primary, combos, idx_of, var, rows_by, sel_by,
                    full_by, relations, base_pair, env_base, strategies)
                idx_of[var] = len(idx_of)
                for edge in applicable[1:]:
                    strategies.labels(vector.STRAT_SEQUENTIAL).inc()
                    combos = self._edge_filter(edge.term, combos, idx_of,
                                               edge.vars(), rows_by,
                                               env_base)
                for edge in applicable:
                    edges_left.remove(edge)
            if var not in idx_of:
                idx_of[var] = len(idx_of)
            base_pair = False
            if not combos:
                return order, rows_by, []
        if calendar_index is not None and combos:
            strategies.labels(vector.STRAT_CALENDAR).inc()
            combos = self._vector_calendar_filter(stmt, combos, rows_by,
                                                  calendar_index)
        return order, rows_by, combos

    def _vector_candidates(self, relation, var: str, plan, env_base: dict,
                           strategies):
        """One variable's candidate rows plus its selection vector.

        Mirrors the row engine's per-level behaviour: an equality
        filter with an :class:`OrderedIndex` bootstraps the candidate
        set via an index probe, then the variable's filters run in
        original conjunct order, each narrowing the selection vector
        (short-circuit: later filters only see survivors).  ``full`` is
        True only for an unfiltered full scan — the precondition for
        feeding a sort-merge join straight from index lanes.
        """
        filters = plan.filters_of(var)
        probe = self._vector_probe(relation, var, filters, env_base)
        if probe is not None:
            rows = [row for row in (relation.get(tid) for tid in probe)
                    if row is not None]
        else:
            rows = list(relation.scan())
        sel = list(range(len(rows)))
        for f in filters:
            if not sel:
                break
            if isinstance(f, vector.WithinFilter):
                strategies.labels(vector.STRAT_CALENDAR).inc()
                sel = self._batched_within(rows, sel, f)
            else:
                strategies.labels(vector.STRAT_SEQUENTIAL).inc()
                fast = self._lane_filter(rows, sel, var, f.term,
                                         env_base)
                if fast is not None:
                    sel = fast
                    continue
                env = dict(env_base)
                term = f.term
                out = []
                for p in sel:
                    env[var] = rows[p]
                    if self._truthy(self._eval(term, env)):
                        out.append(p)
                sel = out
        full = probe is None and not filters
        return rows, sel, full

    #: Builtin comparison semantics of :meth:`_builtin_binop`, for the
    #: lane fast path (arithmetic ops never appear as whole conjuncts).
    _LANE_CMP = {
        "=": lambda a, b: a == b, "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
    }

    def _lane_filter(self, rows, sel, var: str, term,
                     env_base: dict) -> "list[int] | None":
        """Batch-evaluate a ``var.col <cmp> const`` filter over the lane.

        Returns the narrowed selection vector, or None when the term
        is not that shape (or a user-registered operator could
        intercept the comparison for some type pair) — the caller then
        falls back to per-row evaluation, which resolves custom
        operators per value type.  A TypeError from an incomparable
        pair (NULL in ``<``, say) propagates: ``_retrieve`` retreats to
        the sequential path, which re-raises or short-circuits exactly
        as the row engine would.
        """
        if not (isinstance(term, BinOp) and term.op in self._LANE_CMP):
            return None
        if term.op in self.db.operators.names():
            return None
        cmp = self._LANE_CMP[term.op]
        for colref, other, flipped in ((term.left, term.right, False),
                                       (term.right, term.left, True)):
            if not (isinstance(colref, ColumnRef) and
                    colref.var == var and colref.column):
                continue
            if isinstance(other, Const):
                value = other.value
            elif (isinstance(other, ColumnRef) and not other.column
                  and other.var in env_base):
                value = env_base[other.var]  # bound parameter
            else:
                continue
            column = colref.column
            if sel and column not in rows[sel[0]]:
                raise ExecutionError(
                    f"tuple variable {var!r} has no column {column!r}")
            if flipped:
                return [p for p in sel if cmp(value, rows[p][column])]
            return [p for p in sel if cmp(rows[p][column], value)]
        return None

    def _vector_probe(self, relation, var: str, filters,
                      env_base: dict):
        """tids from the first probeable equality filter, or None."""
        for f in filters:
            if isinstance(f, vector.WithinFilter):
                continue
            term = f.term
            if not (isinstance(term, BinOp) and term.op == "="):
                continue
            for colref, other in ((term.left, term.right),
                                  (term.right, term.left)):
                if isinstance(colref, ColumnRef) and \
                        colref.var == var and colref.column:
                    index = relation.indexes.get(colref.column)
                    if isinstance(index, OrderedIndex):
                        try:
                            value = self._eval(other, env_base)
                        except ExecutionError:
                            continue
                        if value is None:  # unindexed, see _index_probe
                            continue
                        return index.lookup_eq(value)
        return None

    def _batched_within(self, rows, sel, f) -> list[int]:
        """Batched calendar probe for ``var.col within "<calendar>"``.

        Gathers the valid-time lane over the surviving positions,
        resolves membership once per *distinct* tick (compiled
        periodic-set probe inside its safe range, one sorted merge pass
        over the calendar's endpoint lanes otherwise), then filters the
        selection vector through the resulting map.
        """
        values = []
        for p in sel:
            row = rows[p]
            if f.column not in row:
                raise ExecutionError(
                    f"tuple variable {f.var!r} has no column "
                    f"{f.column!r}")
            value = row[f.column]
            if not isinstance(value, int):
                raise ExecutionError(
                    "within expects an abstime tick on the left")
            values.append(value)
        member = self._membership_map(f.calendar_ref, sorted(set(values)))
        return [p for p, v in zip(sel, values) if member[v]]

    def _membership_map(self, ref: str, ticks: list) -> dict:
        """tick -> calendar membership for ascending distinct ticks."""
        member: dict = {}
        rest = ticks
        probe = self.db.resolve_periodic(ref)
        if probe is not None:
            pset, safe_lo, safe_hi = probe
            rest = []
            for t in ticks:
                if safe_lo <= t <= safe_hi:
                    member[t] = pset.contains(t)
                else:
                    rest.append(t)
        if rest:
            calendar = self.db.resolve_calendar(ref)
            cols = calendar.columns if calendar.order == 1 else None
            if cols is not None and cols.hi_sorted:
                from repro.core.columnar import batch_membership
                member.update(zip(rest, batch_membership(cols.los,
                                                         cols.his, rest)))
            else:
                for t in rest:
                    member[t] = calendar.contains_point(t)
        return member

    def _vector_join(self, edge, combos, idx_of, var: str, rows_by,
                     sel_by, full_by, relations, base_pair: bool,
                     env_base: dict, strategies):
        """Extend combos with ``var`` through one join edge."""
        if isinstance(edge, vector.EquiEdge):
            if edge.left_var == var:
                vcol, bvar, bcol = (edge.left_col, edge.right_var,
                                    edge.right_col)
            else:
                vcol, bvar, bcol = (edge.right_col, edge.left_var,
                                    edge.left_col)
            if base_pair and full_by[bvar] and full_by[var]:
                merged = self._merge_join(relations, bvar, bcol, var,
                                          vcol, rows_by)
                if merged is not None:
                    strategies.labels(vector.STRAT_MERGE).inc()
                    return merged
            strategies.labels(vector.STRAT_HASH).inc()
            return self._hash_join(edge.term, combos, idx_of[bvar], bvar,
                                   bcol, var, vcol, rows_by, sel_by,
                                   env_base)
        strategies.labels(vector.STRAT_SWEEP).inc()
        return self._sweep_join(edge, combos, idx_of, var, rows_by,
                                sel_by)

    def _merge_join(self, relations, bvar: str, bcol: str, var: str,
                    vcol: str, rows_by):
        """Sort-merge join fed directly from two OrderedIndex lanes.

        Eligible only when both sides are unfiltered full scans and
        their indexes cover every live row (a None-valued row is not
        indexed, yet ``None = None`` joins — partial coverage must fall
        back to the hash join).  Returns None when ineligible.
        """
        index_b = relations[bvar].indexes.get(bcol)
        index_v = relations[var].indexes.get(vcol)
        if not isinstance(index_b, OrderedIndex) or \
                not isinstance(index_v, OrderedIndex):
            return None
        rows_b, rows_v = rows_by[bvar], rows_by[var]
        if len(index_b) != len(rows_b) or len(index_v) != len(rows_v):
            return None
        pos_b = {row["_tid"]: i for i, row in enumerate(rows_b)}
        pos_v = {row["_tid"]: i for i, row in enumerate(rows_v)}
        keys_b, tids_b = index_b.items()
        keys_v, tids_v = index_v.items()
        nb, nv = len(keys_b), len(keys_v)
        out: list[tuple] = []
        i = j = 0
        try:
            while i < nb and j < nv:
                kb, kv = keys_b[i], keys_v[j]
                if kb < kv:
                    i += 1
                elif kv < kb:
                    j += 1
                else:
                    i2 = i + 1
                    while i2 < nb and keys_b[i2] == kb:
                        i2 += 1
                    j2 = j + 1
                    while j2 < nv and keys_v[j2] == kb:
                        j2 += 1
                    for a in range(i, i2):
                        pa = pos_b[tids_b[a]]
                        for b in range(j, j2):
                            out.append((pa, pos_v[tids_v[b]]))
                    i, j = i2, j2
        except TypeError:
            # Mixed-type key lanes do not totally order; the hash join
            # handles them with plain equality like the row engine.
            return None
        return out

    def _hash_join(self, term, combos, bidx: int, bvar: str, bcol: str,
                   var: str, vcol: str, rows_by, sel_by, env_base: dict):
        """Order-preserving hash join: build on the new variable's
        selection, probe per existing combo in order."""
        rows_v = rows_by[var]
        table: dict = {}
        try:
            for p in sel_by[var]:
                key = rows_v[p][vcol]
                try:
                    if key != key:  # NaN never equals, even itself
                        continue
                except Exception:
                    pass
                table.setdefault(key, []).append(p)
        except KeyError:
            raise ExecutionError(
                f"tuple variable {var!r} has no column {vcol!r}") \
                from None
        except TypeError:
            return self._pairwise_edge_join(term, combos, bidx, bvar,
                                            var, rows_by, sel_by,
                                            env_base)
        rows_b = rows_by[bvar]
        out: list[tuple] = []
        try:
            for c in combos:
                key = rows_b[c[bidx]][bcol]
                try:
                    if key != key:
                        continue
                except Exception:
                    pass
                matches = table.get(key)
                if matches:
                    out.extend(c + (p,) for p in matches)
        except KeyError:
            raise ExecutionError(
                f"tuple variable {bvar!r} has no column {bcol!r}") \
                from None
        except TypeError:
            return self._pairwise_edge_join(term, combos, bidx, bvar,
                                            var, rows_by, sel_by,
                                            env_base)
        return out

    def _pairwise_edge_join(self, term, combos, bidx: int, bvar: str,
                            var: str, rows_by, sel_by, env_base: dict):
        """Escape hatch for unhashable join keys: evaluate the conjunct
        per pair, exactly like the row engine."""
        rows_b, rows_v = rows_by[bvar], rows_by[var]
        sel = sel_by[var]
        env = dict(env_base)
        out: list[tuple] = []
        for c in combos:
            env[bvar] = rows_b[c[bidx]]
            for p in sel:
                env[var] = rows_v[p]
                if self._truthy(self._eval(term, env)):
                    out.append(c + (p,))
        return out

    def _edge_filter(self, term, combos, idx_of, vars_pair, rows_by,
                     env_base: dict):
        """Apply a secondary join conjunct to already-joined combos."""
        v1, v2 = vars_pair
        i1, i2 = idx_of[v1], idx_of[v2]
        rows1, rows2 = rows_by[v1], rows_by[v2]
        env = dict(env_base)
        out: list[tuple] = []
        for c in combos:
            env[v1] = rows1[c[i1]]
            env[v2] = rows2[c[i2]]
            if self._truthy(self._eval(term, env)):
                out.append(c)
        return out

    def _sweep_join(self, edge, combos, idx_of, var: str, rows_by,
                    sel_by):
        """Endpoint-sweep interval join for ``overlaps``/``during``.

        Regular intervals (``lo <= hi``, no None endpoint) go through
        :func:`repro.core.columnar.interval_join_pairs`; irregular rows
        (inverted, NaN, None) are matched through the scalar builtin
        predicate so the pair set is identical to the row engine's.
        """
        lvar, rvar = edge.left_var, edge.right_var
        bvar = rvar if lvar == var else lvar
        bidx = idx_of[bvar]
        pred = self.db.builtin_interval_predicates[edge.op]

        def lanes(v, lo_col, hi_col):
            rows, sel = rows_by[v], sel_by[v]
            regular: list[tuple] = []
            irregular: list[int] = []
            for p in sel:
                row = rows[p]
                if lo_col not in row or hi_col not in row:
                    missing = lo_col if lo_col not in row else hi_col
                    raise ExecutionError(
                        f"tuple variable {v!r} has no column "
                        f"{missing!r}")
                lo, hi = row[lo_col], row[hi_col]
                if lo is not None and hi is not None and lo <= hi:
                    regular.append((lo, hi, p))
                else:
                    irregular.append(p)
            regular.sort(key=lambda e: e[0])
            return regular, irregular

        a_reg, a_irr = lanes(lvar, edge.left_lo, edge.left_hi)
        b_reg, b_irr = lanes(rvar, edge.right_lo, edge.right_hi)
        pairs = interval_join_pairs(
            [e[0] for e in a_reg], [e[1] for e in a_reg],
            [e[0] for e in b_reg], [e[1] for e in b_reg],
            predicate=edge.op)
        matches: dict[int, list[int]] = {}
        if lvar == var:
            for i, j in pairs:
                matches.setdefault(b_reg[j][2], []).append(a_reg[i][2])
        else:
            for i, j in pairs:
                matches.setdefault(a_reg[i][2], []).append(b_reg[j][2])
        if a_irr or b_irr:
            rows_l, rows_r = rows_by[lvar], rows_by[rvar]

            def note(pa, pb):
                if lvar == var:
                    matches.setdefault(pb, []).append(pa)
                else:
                    matches.setdefault(pa, []).append(pb)

            def scalar_pairs(ps_a, ps_b):
                for pa in ps_a:
                    ra = rows_l[pa]
                    alo, ahi = ra[edge.left_lo], ra[edge.left_hi]
                    for pb in ps_b:
                        rb = rows_r[pb]
                        if self._truthy(pred(alo, ahi,
                                             rb[edge.right_lo],
                                             rb[edge.right_hi])):
                            note(pa, pb)

            scalar_pairs(a_irr, sel_by[rvar])
            scalar_pairs([e[2] for e in a_reg], b_irr)
        for bucket in matches.values():
            bucket.sort()
        out: list[tuple] = []
        for c in combos:
            bucket = matches.get(c[bidx])
            if bucket:
                out.extend(c + (p,) for p in bucket)
        return out

    def _vector_calendar_filter(self, stmt: Retrieve, combos, rows_by,
                                calendar_index):
        """One batched membership pass for the ``on <calendar>``
        clause: distinct valid-time ticks of the surviving first-
        variable positions, sorted, swept once through the interval
        lanes."""
        relation = self.db.relation(stmt.range_vars[0].relation)
        column = relation.schema.valid_time_column
        if column is None:
            raise ExecutionError(
                f"relation {relation.name!r} has no valid-time column "
                "for 'on <calendar>'")
        rows = rows_by[stmt.range_vars[0].var]
        positions = {c[0] for c in combos}
        ticks = sorted({rows[p][column] for p in positions
                        if rows[p][column] is not None})
        member = dict(zip(ticks, calendar_index.contains_batch(ticks)))
        keep = {p for p in positions
                if rows[p][column] is not None and
                member[rows[p][column]]}
        return [c for c in combos if c[0] in keep]

    def _vector_strategies(self, stmt: Retrieve, plan
                           ) -> list[tuple[object, str]]:
        """(term, strategy) pairs for EXPLAIN, mirroring the runtime
        fold: the first edge binding a new variable gets the join
        kernel (merge when both sides can feed from full index lanes),
        later edges between already-bound variables run as per-combo
        filters."""
        out: list[tuple[object, str]] = []
        for term in plan.const_terms:
            out.append((term, vector.STRAT_SEQUENTIAL))
        for var in plan.order:
            for f in plan.filters_of(var):
                out.append((f.term, f.strategy))
        edges_left = list(plan.edges)
        bound = {plan.order[0]}
        base_pair = True
        for var in plan.order[1:]:
            applicable = [e for e in edges_left
                          if var in e.vars() and
                          (set(e.vars()) - {var}) <= bound]
            for rank, edge in enumerate(applicable):
                if rank > 0:
                    strategy = vector.STRAT_SEQUENTIAL
                elif isinstance(edge, vector.EquiEdge):
                    strategy = (vector.STRAT_MERGE
                                if base_pair and
                                self._merge_static(stmt, plan, edge)
                                else vector.STRAT_HASH)
                else:
                    strategy = vector.STRAT_SWEEP
                out.append((edge.term, strategy))
                edges_left.remove(edge)
            bound.add(var)
            base_pair = False
        return out

    def _merge_static(self, stmt: Retrieve, plan, edge) -> bool:
        """Whether the runtime fold would pick the sort-merge join for
        this edge (both sides unfiltered with full index coverage)."""
        relations = {rv.var: self.db.relation(rv.relation)
                     for rv in stmt.range_vars}
        for v, col in ((edge.left_var, edge.left_col),
                       (edge.right_var, edge.right_col)):
            if plan.filters_of(v):
                return False
            index = relations[v].indexes.get(col)
            if not isinstance(index, OrderedIndex) or \
                    len(index) != len(relations[v]):
                return False
        return True

    # -- binding enumeration -------------------------------------------------------

    @classmethod
    def _conjuncts(cls, expr: QlExpr | None) -> list:
        """Top-level AND-ed terms of a predicate."""
        if expr is None:
            return []
        if isinstance(expr, BinOp) and expr.op == "and":
            return cls._conjuncts(expr.left) + cls._conjuncts(expr.right)
        return [expr]

    @classmethod
    def _referenced_vars(cls, expr: QlExpr, out: set) -> None:
        if isinstance(expr, ColumnRef):
            out.add(expr.var)
        elif isinstance(expr, BinOp):
            cls._referenced_vars(expr.left, out)
            cls._referenced_vars(expr.right, out)
        elif isinstance(expr, UnOp):
            cls._referenced_vars(expr.operand, out)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                cls._referenced_vars(arg, out)

    def _bindings(self, range_vars, where: QlExpr | None,
                  extra: dict) -> Iterator[dict]:
        if not range_vars:
            yield dict(extra)
            return
        # Predicate pushdown: a conjunct is evaluated as soon as every
        # variable it references is bound, pruning the join early.
        conjuncts = []
        for term in self._conjuncts(where):
            refs: set = set()
            self._referenced_vars(term, refs)
            refs -= set(extra)
            level = 0
            remaining = set(refs)
            for i, rv in enumerate(range_vars):
                remaining.discard(rv.var)
                if not remaining:
                    level = i
                    break
            else:
                level = len(range_vars) - 1
            conjuncts.append((level, term))
        by_level: dict[int, list] = {}
        for level, term in conjuncts:
            by_level.setdefault(level, []).append(term)

        def recurse(index: int, current: dict) -> Iterator[dict]:
            if index == len(range_vars):
                yield dict(current)
                return
            rv = range_vars[index]
            relation = self.db.relation(rv.relation)
            as_of = None
            if rv.as_of is not None:
                as_of = self._eval(rv.as_of, current)
                if not isinstance(as_of, int):
                    raise ExecutionError(
                        "'as of' must evaluate to a transaction id")
            level_terms = by_level.get(index, ())
            for row in self._candidate_rows(relation, rv.var, where,
                                            current, as_of):
                current[rv.var] = row
                if all(self._truthy(self._eval(term, current))
                       for term in level_terms):
                    yield from recurse(index + 1, current)
            current.pop(rv.var, None)

        yield from recurse(0, dict(extra))

    def _candidate_rows(self, relation, var: str, where: QlExpr | None,
                        bound: dict, as_of: int | None = None):
        """Rows of ``relation``, restricted via an index when possible.

        Historical (``as of``) scans bypass indexes — they cover live
        tuples only.
        """
        if as_of is not None:
            yield from relation.scan(as_of=as_of)
            return
        probe = self._index_probe(relation, var, where, bound)
        if probe is not None:
            for tid in probe:
                row = relation.get(tid)
                if row is not None:
                    yield row
            return
        yield from relation.scan()

    def _index_probe(self, relation, var: str, where: QlExpr | None,
                     bound: dict):
        """tids for an equality predicate ``var.col = <evaluable>``."""
        if where is None:
            return None
        for column, value in self._equality_terms(where, var, bound):
            if value is None:
                # None keys are not indexed, yet ``None = None`` joins —
                # a None probe must fall back to the scan.
                continue
            index = relation.indexes.get(column)
            if isinstance(index, OrderedIndex):
                return index.lookup_eq(value)
        return None

    def _equality_terms(self, expr: QlExpr, var: str, bound: dict):
        """Yield (column, value) for top-level AND-ed equality terms."""
        if isinstance(expr, BinOp):
            if expr.op == "and":
                yield from self._equality_terms(expr.left, var, bound)
                yield from self._equality_terms(expr.right, var, bound)
                return
            if expr.op == "=":
                for colref, other in ((expr.left, expr.right),
                                      (expr.right, expr.left)):
                    if isinstance(colref, ColumnRef) and \
                            colref.var == var and colref.column:
                        try:
                            yield colref.column, self._eval(other, bound)
                        except ExecutionError:
                            pass

    # -- mutation -----------------------------------------------------------------

    def _append(self, stmt: Append, bindings: dict) -> Result:
        self.db.begin_xact()
        relation = self.db.relation(stmt.relation)
        values = {column: self._eval(expr, bindings)
                  for column, expr in stmt.assignments}
        relation.insert(values)
        return Result(affected=1)

    def _mutation_targets(self, var: str, range_vars, where,
                          bindings: dict) -> tuple[list[dict], list]:
        range_vars = list(range_vars)
        if not any(rv.var == var for rv in range_vars):
            # Implicit range over the relation named by the variable.
            from repro.db.ql.ast import RangeVar
            range_vars.append(RangeVar(var, var))
        combos = []
        for combo in self._bindings(tuple(range_vars), where, bindings):
            if where is None or self._truthy(self._eval(where, combo)):
                combos.append(combo)
        return combos, range_vars

    def _replace(self, stmt: Replace, bindings: dict) -> Result:
        self.db.begin_xact()
        combos, range_vars = self._mutation_targets(
            stmt.var, stmt.range_vars, stmt.where, bindings)
        relation_name = next(rv.relation for rv in range_vars
                             if rv.var == stmt.var)
        relation = self.db.relation(relation_name)
        affected = 0
        seen: set[int] = set()
        for combo in combos:
            row = combo[stmt.var]
            if row["_tid"] in seen:
                continue
            seen.add(row["_tid"])
            changes = {column: self._eval(expr, combo)
                       for column, expr in stmt.assignments}
            relation.update(row["_tid"], changes)
            affected += 1
        return Result(affected=affected)

    def _delete(self, stmt: Delete, bindings: dict) -> Result:
        self.db.begin_xact()
        combos, range_vars = self._mutation_targets(
            stmt.var, stmt.range_vars, stmt.where, bindings)
        relation_name = next(rv.relation for rv in range_vars
                             if rv.var == stmt.var)
        relation = self.db.relation(relation_name)
        affected = 0
        seen: set[int] = set()
        for combo in combos:
            row = combo[stmt.var]
            if row["_tid"] in seen:
                continue
            seen.add(row["_tid"])
            relation.delete(row["_tid"])
            affected += 1
        return Result(affected=affected)

    # -- expression evaluation ---------------------------------------------------------

    def _eval(self, expr: QlExpr, bindings: dict):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ColumnRef):
            return self._eval_column_ref(expr, bindings)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, bindings)
            if expr.op == "not":
                return not self._truthy(value)
            if expr.op == "-":
                return -value
            raise ExecutionError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, bindings)
        if isinstance(expr, FuncCall):
            return self._eval_funcall(expr, bindings)
        raise ExecutionError(f"cannot evaluate {expr!r}")

    def _eval_column_ref(self, expr: ColumnRef, bindings: dict):
        key = expr.var
        row = bindings.get(key)
        if row is None and key.lower() in ("new", "current"):
            row = bindings.get(key.lower())
        if row is None:
            if not expr.column and key in bindings:
                return bindings[key]
            if not expr.column:
                raise ExecutionError(f"unbound variable {key!r}")
            raise ExecutionError(f"unbound tuple variable {key!r}")
        if not expr.column:
            return row
        if isinstance(row, dict):
            if expr.column not in row:
                raise ExecutionError(
                    f"tuple variable {key!r} has no column {expr.column!r}")
            return row[expr.column]
        raise ExecutionError(f"{key!r} is not a tuple variable")

    def _eval_binop(self, expr: BinOp, bindings: dict):
        if expr.op == "and":
            return (self._truthy(self._eval(expr.left, bindings))
                    and self._truthy(self._eval(expr.right, bindings)))
        if expr.op == "or":
            return (self._truthy(self._eval(expr.left, bindings))
                    or self._truthy(self._eval(expr.right, bindings)))
        left = self._eval(expr.left, bindings)
        right = self._eval(expr.right, bindings)
        custom = self.db.operators.resolve(expr.op, _type_name(left),
                                           _type_name(right))
        if custom is not None:
            return custom(left, right)
        return self._builtin_binop(expr.op, left, right)

    def _builtin_binop(self, op: str, left, right):
        if op == "within":
            if not isinstance(left, int):
                raise ExecutionError(
                    "within expects an abstime tick on the left")
            # Compiled membership probe: O(log offsets) modular
            # arithmetic instead of materialising the calendar's cover
            # (falls back near the default-window boundary, where the
            # materialised calendar is clipped).
            probe = self.db.resolve_periodic(right)
            if probe is not None and probe[1] <= left <= probe[2]:
                return probe[0].contains(left)
            return self.db.resolve_calendar(right).contains_point(left)
        try:
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
            if op == "%":
                return left % right
            if op == "||":
                return str(left) + str(right)
        except TypeError as exc:
            raise ExecutionError(
                f"operator {op!r} not applicable to "
                f"{_type_name(left)}/{_type_name(right)}: {exc}") from exc
        raise ExecutionError(f"unknown operator {op!r}")

    def _eval_funcall(self, expr: FuncCall, bindings: dict):
        if expr.name in AGGREGATES:
            raise ExecutionError(
                f"aggregate {expr.name!r} is only allowed as a whole "
                "retrieve target list")
        func = self.db.functions.resolve(expr.name)
        if func is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = [self._eval(a, bindings) for a in expr.args]
        return func(*args)

    @staticmethod
    def _truthy(value) -> bool:
        if value is None:
            return False
        if isinstance(value, Calendar):
            return not value.is_empty()
        return bool(value)
