"""Property-based tests for basic-calendar generation."""

import datetime

from hypothesis import given, settings, strategies as st

from repro.core import CalendarSystem, Granularity

SYSTEM = CalendarSystem.starting("Jan 1 1987")

day_granularities = st.sampled_from(
    [Granularity.DAYS, Granularity.WEEKS, Granularity.MONTHS,
     Granularity.YEARS])

windows = st.tuples(
    st.integers(min_value=-2000, max_value=2000).filter(lambda t: t != 0),
    st.integers(min_value=1, max_value=500),
).map(lambda t: (t[0], t[0] + t[1] if t[0] + t[1] != 0 else t[0] + t[1] + 1))


def points(cal):
    out = set()
    for iv in cal.iter_intervals():
        out |= set(iv)
    return out


class TestGenerateProperties:
    @given(day_granularities, windows)
    @settings(max_examples=60, deadline=None)
    def test_clip_covers_exactly_the_window(self, gran, window):
        lo, hi = window
        cal = SYSTEM.generate(gran, "DAYS", (lo, hi), mode="clip")
        expected = {d for d in range(lo, hi + 1) if d != 0}
        assert points(cal) == expected

    @given(day_granularities, windows)
    @settings(max_examples=60, deadline=None)
    def test_cover_is_superset_of_clip(self, gran, window):
        clip = SYSTEM.generate(gran, "DAYS", window, mode="clip")
        cover = SYSTEM.generate(gran, "DAYS", window, mode="cover")
        assert points(clip) <= points(cover)

    @given(day_granularities, windows)
    @settings(max_examples=60, deadline=None)
    def test_elements_contiguous_and_disjoint(self, gran, window):
        cal = SYSTEM.generate(gran, "DAYS", window, mode="cover")
        for a, b in zip(cal.elements, cal.elements[1:]):
            # Consecutive units tile the axis: b starts right after a.
            expected = a.hi + 1 if a.hi + 1 != 0 else 1
            assert b.lo == expected

    @given(windows)
    @settings(max_examples=60, deadline=None)
    def test_week_lengths(self, window):
        cal = SYSTEM.generate("WEEKS", "DAYS", window, mode="cover")
        assert all(len(iv) == 7 for iv in cal.elements)

    @given(windows)
    @settings(max_examples=60, deadline=None)
    def test_month_boundaries_match_datetime(self, window):
        cal = SYSTEM.generate("MONTHS", "DAYS", window, mode="cover")
        for i, iv in enumerate(cal.elements):
            start = SYSTEM.date_of(iv.lo)
            assert start.day == 1
            oracle = datetime.date(start.year, start.month, 1)
            assert (oracle.year, oracle.month) == (start.year, start.month)
            end = SYSTEM.date_of(iv.hi)
            next_day = SYSTEM.date_of(iv.hi + 1 if iv.hi + 1 != 0 else 1)
            assert next_day.day == 1  # last day of the month
            assert cal.labels[i] == start.month

    @given(windows)
    @settings(max_examples=60, deadline=None)
    def test_year_labels_match_dates(self, window):
        cal = SYSTEM.generate("YEARS", "DAYS", window, mode="cover")
        for i, iv in enumerate(cal.elements):
            assert cal.labels[i] == SYSTEM.date_of(iv.lo).year
            assert SYSTEM.date_of(iv.lo).month == 1
            assert SYSTEM.date_of(iv.hi).month == 12

    @given(windows, st.sampled_from([24, 1440]))
    @settings(max_examples=40, deadline=None)
    def test_subday_scaling_consistent(self, window, factor):
        unit = Granularity.HOURS if factor == 24 else Granularity.MINUTES
        lo, hi = window
        days = SYSTEM.generate("DAYS", unit,
                               ((lo - 1) * factor + 1 if lo > 0
                                else lo * factor,
                                hi * factor if hi > 0
                                else (hi + 1) * factor - 1),
                               mode="cover")
        assert all(len(iv) == factor for iv in days.elements)
