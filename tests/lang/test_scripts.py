"""E6-E8: the three complete calendar scripts of section 3.3, end to end.

These run through the real catalog (registry fixture: US holidays
1987-2006 and AM_BUS_DAYS installed).
"""

import pytest

from repro.core import Calendar


def dates_of(registry, cal):
    return [str(registry.system.date_of(iv.lo)) for iv in
            cal.iter_intervals()]


class TestEmpDays:
    """E6: 'last day of every month; if a holiday, the preceding business
    day' (the government employment-figures calendar)."""

    SCRIPT = """
    {LDOM_t = [n]/DAYS:during:MONTHS;
     LDOM_HOL = LDOM_t:intersects:HOLIDAYS;
     LAST_BUS_DAY = [n]/AM_BUS_DAYS:<:LDOM_HOL;
     return (LDOM_t - LDOM_HOL + LAST_BUS_DAY);}
    """

    def test_1993(self, registry):
        result = registry.eval_script(
            self.SCRIPT, window=("Jan 1 1993", "Dec 31 1993"))
        dates = dates_of(registry, result)
        assert dates == [
            "Jan 31 1993", "Feb 28 1993", "Mar 31 1993", "Apr 30 1993",
            "May 28 1993",  # May 31 is Memorial Day -> preceding Friday
            "Jun 30 1993", "Jul 31 1993", "Aug 31 1993", "Sep 30 1993",
            "Oct 31 1993", "Nov 30 1993", "Dec 31 1993"]

    def test_one_instant_per_month(self, registry):
        result = registry.eval_script(
            self.SCRIPT, window=("Jan 1 1994", "Dec 31 1994"))
        assert len(result) == 12
        assert all(iv.is_instant() for iv in result.elements)

    def test_as_defined_calendar(self, registry):
        registry.define("EMP_DAYS", script=self.SCRIPT,
                        granularity="DAYS")
        result = registry.evaluate("EMP_DAYS",
                                   window=("Jan 1 1993", "Dec 31 1993"))
        assert "May 28 1993" in dates_of(registry, result)

    def test_granularity_inferred(self, registry):
        record = registry.define("EMP_DAYS2", script=self.SCRIPT)
        assert record.granularity is not None
        assert record.granularity.name == "DAYS"


class TestOptionExpiration:
    """E7: 'third Friday of the expiration month if a business day, else
    the preceding business day' (the if-script)."""

    SCRIPT = """
    {Fris = [5]/DAYS:during:WEEKS;
     temp1 = [3]/Fris:overlaps:Expiration-Month;
     if (temp1:intersects:HOLIDAYS)
         return([n]/AM_BUS_DAYS:<:temp1);
     else
         return(temp1);}
    """

    def month_env(self, registry, year, month):
        lo, hi = registry.system.epoch.days_of_month(year, month)
        return {"Expiration-Month": Calendar.interval(lo, hi)}

    def test_november_1993(self, registry):
        result = registry.eval_script(
            self.SCRIPT, window=("Jan 1 1993", "Dec 31 1993"),
            env=self.month_env(registry, 1993, 11))
        assert dates_of(registry, result) == ["Nov 19 1993"]

    def test_all_months_1993_are_fridays_or_earlier(self, registry):
        for month in range(1, 13):
            result = registry.eval_script(
                self.SCRIPT, window=("Jan 1 1993", "Dec 31 1993"),
                env=self.month_env(registry, 1993, month))
            (iv,) = result.elements
            assert registry.system.epoch.weekday_of(iv.lo) <= 5

    def test_holiday_friday_rolls_back(self, registry):
        # Construct a registry state where the 3rd Friday IS a holiday:
        # April 1993's third Friday is Apr 16; add it as a fake holiday.
        apr16 = registry.system.day_of("Apr 16 1993")
        old = registry.record("HOLIDAYS").values
        registry.define("HOLIDAYS", values=old + Calendar.point(apr16),
                        granularity="DAYS", replace=True)
        result = registry.eval_script(
            self.SCRIPT, window=("Jan 1 1993", "Dec 31 1993"),
            env=self.month_env(registry, 1993, 4))
        assert dates_of(registry, result) == ["Apr 15 1993"]


class TestLastTradingDay:
    """E8: the while-script — alert on the seventh business day preceding
    the last business day of the expiration month."""

    SCRIPT = """
    { temp1 = [n]/AM_BUS_DAYS:during:Expiration-Month;
      temp2 = [-7]/AM_BUS_DAYS:<:temp1;
      while (today:<:temp2) ;
      return ("LAST TRADING DAY");}
    """

    def test_alert_fires_when_today_reaches_target(self, registry):
        lo, hi = registry.system.epoch.days_of_month(1993, 11)
        env = {"Expiration-Month": Calendar.interval(lo, hi)}
        days_waited = []

        def tick(ctx):
            days_waited.append(ctx.today)
            ctx.today += 1
            return True

        result = registry.eval_script(
            self.SCRIPT, window=("Oct 1 1993", "Dec 31 1993"),
            today=registry.system.day_of("Nov 15 1993"),
            env=env, while_hook=tick)
        assert result == "LAST TRADING DAY"
        # The "<" listop includes equality, so the loop exits the day
        # after today passes the seventh-from-last business day.
        assert len(days_waited) >= 1

    def test_no_wait_when_already_past(self, registry):
        lo, hi = registry.system.epoch.days_of_month(1993, 11)
        env = {"Expiration-Month": Calendar.interval(lo, hi)}
        result = registry.eval_script(
            self.SCRIPT, window=("Oct 1 1993", "Dec 31 1993"),
            today=registry.system.day_of("Nov 30 1993"),
            env=env)
        assert result == "LAST TRADING DAY"
