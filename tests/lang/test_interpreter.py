"""Unit tests for the direct AST interpreter."""

import pytest

from repro.core import Calendar, CalendarSystem, Granularity
from repro.lang import (
    EvalContext,
    EvaluationError,
    Interpreter,
    LoopLimitError,
    NameResolutionError,
    infer_unit,
    parse_expression,
    parse_script,
)
from repro.lang.defs import (
    BasicDef,
    DerivedDef,
    ExplicitDef,
    basic_resolver,
    chain_resolvers,
)


@pytest.fixture(scope="module")
def sys93():
    return CalendarSystem.starting("Jan 1 1993")


def make_context(sys93, today=None, **extra_defs):
    defs = {
        "holidays": ExplicitDef(
            Calendar.from_intervals([(31, 31), (90, 90)]),
            Granularity.DAYS),
        "mondays": DerivedDef(
            parse_script("{return([1]/DAYS:during:WEEKS);}"),
            Granularity.DAYS),
    }
    defs.update({k.lower(): v for k, v in extra_defs.items()})
    resolver = chain_resolvers(lambda n: defs.get(n.lower()),
                               basic_resolver)
    lo, hi = sys93.epoch.days_of_year(1993)
    return EvalContext(system=sys93, resolver=resolver, window=(lo, hi),
                       today=today)


def run(ctx, text):
    return Interpreter(ctx).evaluate(parse_expression(text))


class TestNameResolution:
    def test_basic_calendar(self, sys93):
        ctx = make_context(sys93)
        months = run(ctx, "MONTHS")
        assert months.to_pairs()[0] == (1, 31)

    def test_explicit_values(self, sys93):
        ctx = make_context(sys93)
        assert run(ctx, "HOLIDAYS").to_pairs() == ((31, 31), (90, 90))

    def test_case_insensitive(self, sys93):
        ctx = make_context(sys93)
        assert run(ctx, "holidays").to_pairs() == ((31, 31), (90, 90))

    def test_derived_script_executed(self, sys93):
        ctx = make_context(sys93)
        mondays = run(ctx, "Mondays")
        assert all(sys93.epoch.weekday_of(iv.lo) == 1
                   for iv in mondays.elements)

    def test_derived_result_cached(self, sys93):
        ctx = make_context(sys93)
        run(ctx, "Mondays")
        calls_before = ctx.stats["generate_calls"]
        run(ctx, "Mondays")
        assert ctx.stats["generate_calls"] == calls_before

    def test_unknown_name(self, sys93):
        ctx = make_context(sys93)
        with pytest.raises(NameResolutionError):
            run(ctx, "NOPE")

    def test_env_shadows_catalog(self, sys93):
        ctx = make_context(sys93)
        ctx.env["holidays"] = Calendar.from_intervals([(7, 7)])
        assert run(ctx, "HOLIDAYS").to_pairs() == ((7, 7),)


class TestOperators:
    def test_foreach_with_singleton_right_is_interval(self, sys93):
        ctx = make_context(sys93)
        # Right side has one element -> order-1 result (paper's Jan-1993).
        result = run(ctx, "WEEKS:during:interval(1, 31)")
        assert result.order == 1
        assert result.to_pairs() == ((4, 10), (11, 17), (18, 24), (25, 31))

    def test_foreach_with_multi_right_is_order2(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, "WEEKS:during:MONTHS")
        assert result.order == 2

    def test_selection(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, "[3]/WEEKS:overlaps:interval(1, 31)")
        assert result.to_pairs() == ((11, 17),)

    def test_label_selection(self, sys93):
        ctx = make_context(sys93)
        assert run(ctx, "1993/YEARS").to_pairs() == ((1, 365),)

    def test_setops(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, "HOLIDAYS - interval(31, 31)")
        assert result.to_pairs() == ((90, 90),)
        result = run(ctx, "HOLIDAYS + interval(1, 1)")
        assert result.to_pairs() == ((1, 1), (31, 31), (90, 90))
        result = run(ctx, "HOLIDAYS & interval(1, 40)")
        assert result.to_pairs() == ((31, 31),)

    def test_setop_requires_order1(self, sys93):
        ctx = make_context(sys93)
        with pytest.raises(EvaluationError):
            run(ctx, "(WEEKS:during:MONTHS) + HOLIDAYS")

    def test_flatten_function(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, "flatten(WEEKS:during:MONTHS)")
        assert result.order == 1

    def test_bare_number_rejected(self, sys93):
        ctx = make_context(sys93)
        with pytest.raises(EvaluationError):
            run(ctx, "(5)")


class TestFunctions:
    def test_generate(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, 'generate(MONTHS, DAYS, "Jan 1 1993", '
                          '"Feb 28 1993")')
        assert result.to_pairs() == ((1, 31), (32, 59))

    def test_generate_with_mode(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, 'generate(WEEKS, DAYS, "Jan 1 1993", '
                          '"Jan 10 1993", "cover")')
        assert result.to_pairs()[0] == (-4, 3)

    def test_generate_arity_error(self, sys93):
        ctx = make_context(sys93)
        with pytest.raises(EvaluationError):
            run(ctx, "generate(MONTHS)")

    def test_caloperate(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, "caloperate(MONTHS, *; 3)")
        assert result.to_pairs()[0] == (1, 90)

    def test_caloperate_with_end(self, sys93):
        ctx = make_context(sys93)
        result = run(ctx, "caloperate(MONTHS, 90; 3)")
        assert result.to_pairs() == ((1, 90),)

    def test_point(self, sys93):
        ctx = make_context(sys93)
        assert run(ctx, 'point("Jan 5 1993")').to_pairs() == ((5, 5),)

    def test_custom_function(self, sys93):
        ctx = make_context(sys93)
        ctx.functions["double"] = lambda c, args: args[0].union(args[0])
        assert run(ctx, "double(HOLIDAYS)").to_pairs() == \
            ((31, 31), (90, 90))

    def test_unknown_function(self, sys93):
        ctx = make_context(sys93)
        with pytest.raises(EvaluationError):
            run(ctx, "mystery(HOLIDAYS)")


class TestToday:
    def test_today_point(self, sys93):
        ctx = make_context(sys93, today=42)
        assert run(ctx, "today").to_pairs() == ((42, 42),)

    def test_today_unbound(self, sys93):
        ctx = make_context(sys93)
        with pytest.raises(EvaluationError):
            run(ctx, "today")

    def test_today_in_condition(self, sys93):
        ctx = make_context(sys93, today=5)
        result = run(ctx, "today:<:interval(10, 10)")
        assert not result.is_empty()
        result = run(ctx, "today:<:interval(3, 3)")
        assert result.is_empty()


class TestScripts:
    def test_assignment_and_return(self, sys93):
        ctx = make_context(sys93)
        script = parse_script("{x = HOLIDAYS; return(x);}")
        assert Interpreter(ctx).execute(script).to_pairs() == \
            ((31, 31), (90, 90))

    def test_no_return_gives_none(self, sys93):
        ctx = make_context(sys93)
        assert Interpreter(ctx).execute(parse_script("{x = HOLIDAYS;}")) \
            is None

    def test_if_true_branch(self, sys93):
        ctx = make_context(sys93)
        script = parse_script(
            '{if (HOLIDAYS) return("yes"); return("no");}')
        assert Interpreter(ctx).execute(script) == "yes"

    def test_if_false_branch_empty_calendar(self, sys93):
        ctx = make_context(sys93)
        script = parse_script(
            '{if (HOLIDAYS & interval(1, 2)) return("yes"); '
            'else return("no");}')
        assert Interpreter(ctx).execute(script) == "no"

    def test_while_with_hook(self, sys93):
        ctx = make_context(sys93, today=1)

        def advance(context):
            context.today += 1
            return True

        ctx.while_hook = advance
        script = parse_script(
            '{while (today:<:interval(5, 5)) ; return("DONE");}')
        assert Interpreter(ctx).execute(script) == "DONE"
        assert ctx.today == 6  # paper's "<" includes equality

    def test_while_loop_limit(self, sys93):
        ctx = make_context(sys93, today=1)
        ctx.max_loop_iterations = 10
        script = parse_script(
            '{while (today:<:interval(50, 50)) ; return("DONE");}')
        with pytest.raises(LoopLimitError):
            Interpreter(ctx).execute(script)

    def test_return_inside_while(self, sys93):
        ctx = make_context(sys93)
        script = parse_script(
            '{while (HOLIDAYS) return("early");}')
        assert Interpreter(ctx).execute(script) == "early"

    def test_paper_last_trading_day_script(self, sys93):
        """The section 3.3 while-script, with a hook advancing the clock."""
        ctx = make_context(
            sys93, today=sys93.day_of("Nov 1 1993"),
            expiration_month=ExplicitDef(Calendar.interval(
                sys93.day_of("Nov 1 1993"), sys93.day_of("Nov 30 1993"))),
            am_bus_days=ExplicitDef(Calendar.from_intervals(
                [(d, d) for d in range(sys93.day_of("Oct 1 1993"),
                                       sys93.day_of("Dec 1 1993"))
                 if sys93.epoch.weekday_of(d) <= 5])),
        )

        def advance(context):
            context.today += 1
            return True

        ctx.while_hook = advance
        script = parse_script("""
        { temp1 = [n]/AM_BUS_DAYS:during:Expiration_Month;
          temp2 = [-7]/AM_BUS_DAYS:<:temp1;
          while (today:<:temp2) ;
          return ("LAST TRADING DAY"); }
        """)
        assert Interpreter(ctx).execute(script) == "LAST TRADING DAY"


class TestInferUnit:
    def test_defaults_to_days(self, sys93):
        ctx = make_context(sys93)
        assert infer_unit(parse_expression("WEEKS:during:MONTHS"),
                          ctx.resolver) == Granularity.DAYS

    def test_subday_detected(self, sys93):
        ctx = make_context(sys93)
        assert infer_unit(parse_expression("HOURS:during:DAYS"),
                          ctx.resolver) == Granularity.HOURS
