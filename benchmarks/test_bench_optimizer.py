"""Optimizer benchmarks: optimized vs unoptimized plans, head to head.

The paper's Figure-2/Figure-3 expressions plus an unanchored 30-year
nested foreach chain are each evaluated through both plan variants with
identical fresh contexts, recording wall time and the peak number of
live materialised intervals (the streaming pipeline's bounded-memory
claim).  Enforced shapes:

* the Figure-2 style nested chain is at least 3x faster optimized;
* the 30-year chain's peak live-interval count drops at least 5x.
"""

from __future__ import annotations

import time

import pytest

from repro.core.granularity import Granularity
from repro.lang import (
    EvalContext,
    PlanVM,
    compile_expression,
    factorize,
    optimize_plan,
    parse_expression,
    parse_script,
)
from repro.lang.defs import DerivedDef, basic_resolver, chain_resolvers

from conftest import record_benchmark

DERIVED = {
    "mondays": DerivedDef(
        parse_script("{return([1]/DAYS:during:WEEKS);}"),
        Granularity.DAYS),
    "januarys": DerivedDef(
        parse_script("{return([1]/MONTHS:during:YEARS);}"),
        Granularity.MONTHS),
    "third_weeks": DerivedDef(
        parse_script("{return([3]/WEEKS:overlaps:MONTHS);}"),
        Granularity.WEEKS),
}
RESOLVER = chain_resolvers(lambda n: DERIVED.get(n.lower()),
                           basic_resolver)

FIGURE_2 = "Mondays:during:Januarys:during:1993/Years"
FIGURE_3 = "Third_Weeks:during:Januarys:during:1993/Years"
CHAIN_30Y = "Mondays:during:([1]/(MONTHS:during:YEARS))"

ROUNDS = 7


def window_of(registry):
    lo, _ = registry.system.epoch.days_of_year(1987)
    _, hi = registry.system.epoch.days_of_year(2016)
    return lo, hi


def compile_both(registry, text, window):
    expr = factorize(parse_expression(text), RESOLVER).expression
    plan = compile_expression(expr, registry.system, RESOLVER,
                              context_window=window)
    optimized = optimize_plan(plan, context_window=window).plan
    return plan, optimized


def time_plan(registry, plan, window):
    """Per-round wall times, peak live intervals, result size."""
    samples, peak, result = [], 0, None
    for _ in range(ROUNDS):
        ctx = EvalContext(system=registry.system, resolver=RESOLVER,
                          window=window)
        ctx.stats["peak_live_intervals"] = 0
        t0 = time.perf_counter()
        result = PlanVM(ctx).run(plan)
        samples.append(time.perf_counter() - t0)
        peak = max(peak, ctx.stats["peak_live_intervals"])
    flat = result.flatten() if result.order > 1 else result
    return samples, peak, len(flat)


class TestOptimizerSpeedup:
    @pytest.mark.parametrize("label,text", [("figure2", FIGURE_2),
                                            ("figure3", FIGURE_3),
                                            ("chain30y", CHAIN_30Y)])
    def test_record_optimized_vs_unoptimized(self, registry, label, text):
        window = window_of(registry)
        plan, optimized = compile_both(registry, text, window)
        off_samples, off_peak, off_n = time_plan(registry, plan, window)
        on_samples, on_peak, on_n = time_plan(registry, optimized, window)
        assert on_n == off_n
        speedup = min(off_samples) / min(on_samples)
        peak_drop = off_peak / max(on_peak, 1)
        record_benchmark(f"optimizer/{label}_unoptimized", off_samples,
                         intervals=off_n, peak_live_intervals=off_peak)
        record_benchmark(f"optimizer/{label}_optimized", on_samples,
                         intervals=on_n, peak_live_intervals=on_peak,
                         speedup_vs_unoptimized=round(speedup, 3),
                         peak_drop=round(peak_drop, 3))

    def test_figure2_speedup_at_least_3x(self, registry):
        window = window_of(registry)
        plan, optimized = compile_both(registry, FIGURE_2, window)
        off_samples, _, _ = time_plan(registry, plan, window)
        on_samples, _, _ = time_plan(registry, optimized, window)
        speedup = min(off_samples) / min(on_samples)
        assert speedup >= 3.0, (
            f"optimizer managed only {speedup:.2f}x on the Figure-2 "
            f"nested chain (expected >= 3x)")

    def test_30y_chain_peak_intervals_drop_at_least_5x(self, registry):
        window = window_of(registry)
        plan, optimized = compile_both(registry, CHAIN_30Y, window)
        _, off_peak, _ = time_plan(registry, plan, window)
        _, on_peak, _ = time_plan(registry, optimized, window)
        drop = off_peak / max(on_peak, 1)
        assert drop >= 5.0, (
            f"peak live intervals dropped only {drop:.1f}x under the "
            f"streaming pipeline (expected >= 5x: "
            f"{off_peak} -> {on_peak})")
