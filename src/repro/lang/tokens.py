"""Token definitions for the calendar expression language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(enum.Enum):
    """Token kinds of the calendar expression language."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    DOT = "."
    SLASH = "/"
    SEMI = ";"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    ASSIGN = "="
    LT = "<"
    LE = "<="
    STAR = "*"
    AMP = "&"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    RETURN = "return"
    EOF = "EOF"


KEYWORDS = {
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "return": TokenType.RETURN,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with its source position (1-based line/column)."""

    type: TokenType
    text: str
    line: int
    column: int
    #: True when whitespace (or a comment) immediately precedes this token;
    #: used to distinguish hyphenated names (``Jan-1993``) from subtraction
    #: (``LDOM - LDOM_HOL``).
    glued: bool = False

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r}@{self.line}:{self.column})"
