"""Unit tests for the CALENDARS catalog table (E3: Figure 1)."""

import math

import pytest

from repro.catalog import CalendarRecord, CalendarsTable
from repro.core import Calendar, CalendarError, Granularity


def record(name="Tuesdays", **kwargs):
    defaults = dict(derivation_script="{return([2]/DAYS:during:WEEKS);}",
                    granularity=Granularity.DAYS)
    defaults.update(kwargs)
    return CalendarRecord(name=name, **defaults)


class TestRecord:
    def test_script_record(self):
        r = record()
        assert not r.is_explicit

    def test_explicit_record(self):
        r = CalendarRecord(name="HOLIDAYS",
                           values=Calendar.from_intervals([(31, 31)]))
        assert r.is_explicit

    def test_needs_script_or_values(self):
        with pytest.raises(CalendarError):
            CalendarRecord(name="empty")

    def test_inverted_lifespan_rejected(self):
        with pytest.raises(CalendarError):
            record(lifespan=(2000.0, 1990.0))

    def test_default_lifespan_unbounded(self):
        r = record()
        assert r.lifespan == (-math.inf, math.inf)


class TestFigure1Rendering:
    def test_tuesdays_box(self):
        r = record(lifespan=(1985.0, math.inf))
        text = r.render()
        assert "Name              | Tuesdays" in text
        assert "Derivation-Script | {return([2]/DAYS:during:WEEKS);}" \
            in text
        assert "Lifespan          | (1985,inf)" in text
        assert "Granularity       | DAYS" in text

    def test_eval_plan_row(self):
        r = record(eval_plan=object())
        assert "set of procedural statements" in r.render()
        assert "set of procedural statements" not in record().render()

    def test_values_row_for_explicit(self):
        r = CalendarRecord(
            name="HOLIDAYS",
            values=Calendar.from_intervals([(31, 31), (90, 90)]))
        assert "{(31,31),(90,90)}" in r.render()


class TestTable:
    def test_insert_and_get(self):
        table = CalendarsTable()
        table.insert(record())
        assert table.get("tuesdays") is not None
        assert table.get("TUESDAYS") is not None

    def test_duplicate_rejected(self):
        table = CalendarsTable()
        table.insert(record())
        with pytest.raises(CalendarError):
            table.insert(record())

    def test_replace(self):
        table = CalendarsTable()
        table.insert(record())
        table.insert(record(granularity=Granularity.WEEKS), replace=True)
        assert table.get("Tuesdays").granularity == Granularity.WEEKS

    def test_drop(self):
        table = CalendarsTable()
        table.insert(record())
        table.drop("TUESDAYS")
        assert "Tuesdays" not in table

    def test_drop_unknown(self):
        with pytest.raises(CalendarError):
            CalendarsTable().drop("nope")

    def test_names_sorted(self):
        table = CalendarsTable()
        table.insert(record("Zeta"))
        table.insert(record("Alpha"))
        assert table.names() == ["Alpha", "Zeta"]

    def test_len_and_iter(self):
        table = CalendarsTable()
        table.insert(record())
        assert len(table) == 1
        assert [r.name for r in table] == ["Tuesdays"]
