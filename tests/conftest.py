"""Shared fixtures: calendar systems, populated registries, databases."""

from __future__ import annotations

import pytest

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.db import Database
from repro.rules import DBCron, RuleManager, SimulatedClock


@pytest.fixture(scope="session")
def system87() -> CalendarSystem:
    """The paper's system start date: January 1, 1987."""
    return CalendarSystem.starting("Jan 1 1987")


@pytest.fixture(scope="session")
def system93() -> CalendarSystem:
    """Day 1 = Jan 1 1993, matching the section 3.1 worked examples."""
    return CalendarSystem.starting("Jan 1 1993")


@pytest.fixture()
def registry(system87) -> CalendarRegistry:
    """A registry with the standard calendars and US holidays 1987-2006."""
    reg = CalendarRegistry(system87, default_horizon_years=25)
    install_standard_calendars(reg)
    install_us_holidays(reg, 1987, 2006)
    return reg


@pytest.fixture()
def registry93(system93) -> CalendarRegistry:
    reg = CalendarRegistry(system93, default_horizon_years=10)
    install_standard_calendars(reg)
    install_us_holidays(reg, 1993, 2002)
    return reg


@pytest.fixture()
def db(registry) -> Database:
    return Database(calendars=registry)


@pytest.fixture()
def ruled_db(db):
    """(db, manager, clock, cron) with the clock at Jan 1 1993."""
    manager = RuleManager(db)
    clock = SimulatedClock(now=db.system.day_of("Jan 1 1993"))
    cron = DBCron(manager, clock, period=7)
    return db, manager, clock, cron
