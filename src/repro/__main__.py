"""``python -m repro`` — the interactive calendar shell."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
