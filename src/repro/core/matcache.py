"""A process-wide, thread-safe materialisation cache with window subsumption.

The paper's evaluation-plan section calls for *shared-calendar caching*:
a calendar "encountered more than once" should be generated once.  The
scattered per-context caches only share exact-key repeats — any narrower
or shifted window misses and re-runs :meth:`CalendarSystem.generate`
from civil-date arithmetic.  This module centralises materialisation:

* One :class:`MaterialisationCache` entry per ``(system epoch, calendar
  granularity, unit granularity)`` stores the **widest window generated
  so far** in canonical *cover* mode, together with columnar ``lo``/``hi``
  endpoint arrays.
* A request for any **contained sub-window** is served by binary-search
  slicing the columnar arrays — no civil-date arithmetic at all.  Both
  ``cover`` and ``clip`` requests are served from the same entry: a
  clip materialisation equals the cover materialisation with the two
  boundary elements intersected against the window (the unit iteration,
  the overlap condition and the labels are identical in
  :mod:`repro.core.basis`).
* A **partially covering** request generates only the uncovered
  extension(s) and merges them into the entry, instead of regenerating
  the whole window.  This is sound because every basic-calendar tiling
  is *window-independent*: week/month/year boundaries are fixed by the
  civil calendar, so overlapping windows always agree on shared units
  (the unit straddling the old boundary is deduplicated by its ``lo``).

Concurrency model (see docs/IMPLEMENTATION_NOTES.md §7):

* Entries are **striped** over ``stripes`` independently locked shards
  keyed by ``hash(key) % stripes``, so concurrent requests for distinct
  calendars never contend.  A plain mutex per stripe (not an RW lock) is
  deliberate: even "read" hits mutate shared state — LRU recency, the
  per-entry served memo — so a reader/writer split would buy nothing.
* Misses are **single-flight**: the first thread to miss a key registers
  an in-flight marker and generates outside the stripe lock; every other
  thread requesting the same key waits on the marker's event and then
  retries the hit path, so N concurrent identical misses cost exactly
  one :meth:`CalendarSystem.generate` call.  The marker is cleared in a
  ``finally`` so waiters always make progress, even when the generating
  thread raises.
* Eviction keeps the **global** LRU semantics of the unstriped cache:
  every entry carries a monotonically increasing recency stamp; when the
  total entry count exceeds ``maxsize``, an eviction sweep (serialised
  by a dedicated lock, taking one stripe lock at a time) pops the entry
  with the globally smallest stamp.
* Lock-acquisition waits are measured: a non-blocking ``acquire(False)``
  fast path keeps the uncontended cost at one extra branch, and only
  genuinely contended acquisitions are timed into the
  ``matcache.lock_wait_seconds`` histogram (surfaced by ``\\cache`` as
  the *contention* line).

Entries are LRU-bounded; ``maxsize=0`` disables the cache entirely (every
request falls through to ``generate``), which keeps the cache a *pure*
optimisation.  A second, generic LRU memo (:meth:`memo_get` /
:meth:`memo_put`) backs higher layers — registry expression/plan caches,
rule next-fire probes — whose keys embed the registry version so stale
entries are never served and old versions eventually age out.

The process-wide default instance is reachable via
:func:`get_default_cache`; the environment variables ``REPRO_MATCACHE``
(``0`` disables) and ``REPRO_MATCACHE_SIZE`` size it.
"""

from __future__ import annotations

import bisect
import itertools
import os
import threading

from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter

from repro.core import columnar
from repro.core.calendar import Calendar
from repro.core.errors import ConfigurationError
from repro.core.granularity import Granularity
from repro.core.interval import Interval
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MaterialisationCache",
    "get_default_cache",
    "set_default_cache",
]


def _axis_dec(t: int) -> int:
    """``t - 1`` on the zero-skipping axis."""
    return t - 1 if t - 1 != 0 else -1


def _axis_inc(t: int) -> int:
    """``t + 1`` on the zero-skipping axis."""
    return t + 1 if t + 1 != 0 else 1


@dataclass
class _Entry:
    """The widest cover-mode materialisation generated so far for one key.

    When the stored calendar is column-backed, ``los``/``his`` *are* the
    calendar's endpoint lanes (no side-car copy) and :meth:`serve`
    answers a contained sub-window with a zero-copy column slice —
    clip-mode requests patch at most the two boundary endpoints.  The
    object representation keeps the historical list side-cars.
    """

    window: tuple[int, int]
    calendar: Calendar                      #: cover mode over ``window``
    los: "list[int]" = field(default_factory=list)
    his: "list[int]" = field(default_factory=list)
    #: Small memo of recently served sub-window calendars, so repeated
    #: identical requests return the *same* object (letting per-Calendar
    #: sorted-view memos in the algebra be shared across contexts).
    served: OrderedDict = field(default_factory=OrderedDict)
    #: Global LRU recency stamp (monotonic across all stripes).
    stamp: int = 0

    _SERVED_MAX = 32

    @classmethod
    def build(cls, window: tuple[int, int], calendar: Calendar) -> "_Entry":
        entry = cls(window, calendar)
        cols = calendar.columns
        if cols is not None:
            entry.los = cols.los
            entry.his = cols.his
        else:
            entry.los = [iv.lo for iv in calendar.elements]
            entry.his = [iv.hi for iv in calendar.elements]
        return entry

    def covers(self, lo: int, hi: int) -> bool:
        return self.window[0] <= lo and hi <= self.window[1]

    def near(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi]`` overlaps or is adjacent to the window."""
        wlo, whi = self.window
        return lo <= _axis_inc(whi) and hi >= _axis_dec(wlo)

    def slice_range(self, lo: int, hi: int) -> tuple[int, int]:
        """Index range of elements overlapping ``[lo, hi]`` (cover set)."""
        return (bisect.bisect_left(self.his, lo),
                bisect.bisect_right(self.los, hi))

    def serve(self, lo: int, hi: int, mode: str) -> Calendar:
        memo_key = (lo, hi, mode)
        cached = self.served.get(memo_key)
        if cached is not None:
            self.served.move_to_end(memo_key)
            return cached
        start, end = self.slice_range(lo, hi)
        source = self.calendar
        cols = source.columns
        if cols is not None:
            out = cols.slice(start, end)
            if mode == "clip":
                # Tilings are disjoint and sorted, so only the two
                # boundary endpoints can poke outside the window.
                out = columnar.clip_cover(out, lo, hi)
            labels = None
            if source.labels is not None:
                labels = source.labels[start:end]
            result = Calendar._from_columns(out, source.granularity, labels)
        else:
            elements = list(source.elements[start:end])
            if mode == "clip" and elements:
                window_iv = Interval(lo, hi)
                elements[0] = elements[0].intersect(window_iv)
                elements[-1] = elements[-1].intersect(window_iv)
            labels = None
            if source.labels is not None:
                labels = source.labels[start:end]
            result = Calendar.from_intervals(elements, source.granularity,
                                             labels)
        self.served[memo_key] = result
        if len(self.served) > self._SERVED_MAX:
            self.served.popitem(last=False)
        return result


class _Flight:
    """Single-flight marker: one in-progress generation for one key."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _Stripe:
    """One shard of the entry map with its own lock and in-flight set."""

    __slots__ = ("lock", "entries", "inflight", "index")

    def __init__(self, index: int = 0) -> None:
        self.lock = threading.Lock()
        self.entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self.inflight: dict[tuple, _Flight] = {}
        self.index = index


class MaterialisationCache:
    """Thread-safe LRU cache of basic-calendar materialisations.

    ``maxsize`` bounds the **total** number of ``(epoch, calendar, unit)``
    entries across all stripes (0 disables caching), ``memo_maxsize``
    bounds the generic memo used by higher layers, ``max_entry_elements``
    caps how far a single entry may grow through extension merging before
    it is replaced, and ``stripes`` sets the number of independently
    locked shards.

    Counters live in a :class:`~repro.obs.metrics.MetricsRegistry`
    (``matcache.*`` instruments, one registry per cache unless one is
    shared in) with hit/miss/extension latencies recorded as histograms;
    :meth:`stats` is the backwards-compatible adapter that renders them
    under the historical flat key names.
    """

    #: Counter names, identical to the historical ad-hoc stats keys plus
    #: the concurrency counters added with the striped design.
    _STAT_KEYS = ("hits", "misses", "extensions", "evictions",
                  "uncacheable", "served_intervals",
                  "generated_intervals", "memo_hits", "memo_misses",
                  "requests", "single_flight_waits", "lock_contention",
                  "narrow_bypass")

    def __init__(self, maxsize: int = 256, memo_maxsize: int = 2048,
                 max_entry_elements: int = 1_000_000,
                 metrics: MetricsRegistry | None = None,
                 stripes: int = 8, stripe_metrics: bool = True) -> None:
        if maxsize < 0 or memo_maxsize < 0:
            raise ConfigurationError("cache sizes must be >= 0")
        if stripes < 1:
            raise ConfigurationError("the cache needs at least 1 stripe")
        self.maxsize = maxsize
        self.memo_maxsize = memo_maxsize if maxsize else 0
        self.max_entry_elements = max_entry_elements
        #: Optional telemetry pipeline (``cache.hit``/``cache.miss``/
        #: ``cache.extend``/``cache.evict`` events); None keeps every
        #: event site at a single branch.  Emission may happen while a
        #: stripe lock is held — the pipeline lock is a leaf lock and
        #: its acquire is non-blocking, so no ordering cycle is possible
        #: (docs/IMPLEMENTATION_NOTES.md §8).
        self.pipeline = None
        self._stripes = tuple(_Stripe(i) for i in range(stripes))
        self._memo: OrderedDict = OrderedDict()
        self._memo_lock = threading.Lock()
        self._evict_lock = threading.Lock()
        self._ticker = itertools.count(1)
        #: Backing metrics registry (private unless one is shared in).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._counters = {name: self.metrics.counter(f"matcache.{name}")
                          for name in self._STAT_KEYS}
        self._latency = {
            "hit": self.metrics.histogram("matcache.hit_seconds"),
            "miss": self.metrics.histogram("matcache.miss_seconds"),
            "extension": self.metrics.histogram(
                "matcache.extension_seconds"),
            "lock_wait": self.metrics.histogram(
                "matcache.lock_wait_seconds"),
        }
        #: Per-stripe labelled hit/miss counters, pre-bound as tuples
        #: indexed by stripe number so the hot path pays one tuple index
        #: plus a plain Counter.inc — no family resolution per request.
        #: ``stripe_metrics=False`` (the benchmark baseline) skips them.
        if stripe_metrics:
            hits = self.metrics.counter(
                "matcache.stripe.hits", "Cache hits per stripe",
                labels=("stripe",), max_series=max(stripes + 1, 16))
            misses = self.metrics.counter(
                "matcache.stripe.misses", "Cache misses per stripe",
                labels=("stripe",), max_series=max(stripes + 1, 16))
            self._stripe_hits = tuple(hits.labels(str(i))
                                      for i in range(stripes))
            self._stripe_misses = tuple(misses.labels(str(i))
                                        for i in range(stripes))
        else:
            self._stripe_hits = None
            self._stripe_misses = None

    @property
    def enabled(self) -> bool:
        """False when the cache was built with ``maxsize=0``."""
        return self.maxsize > 0

    # -- locking ---------------------------------------------------------------

    def _acquire(self, lock: threading.Lock) -> None:
        """Acquire ``lock``, timing only genuinely contended waits."""
        if lock.acquire(False):
            return
        t0 = perf_counter()
        lock.acquire()
        self._counters["lock_contention"].inc()
        self._latency["lock_wait"].observe(perf_counter() - t0)

    def _stripe_of(self, key: tuple) -> _Stripe:
        return self._stripes[hash(key) % len(self._stripes)]

    # -- materialisation -------------------------------------------------------

    def generate(self, system, cal: "str | Granularity",
                 unit: "str | Granularity", window: tuple,
                 mode: str = "clip") -> Calendar:
        """``system.generate(...)`` through the cache.

        Serves contained windows by slicing, partially covered windows by
        extension-merging, and everything the cache cannot represent
        (dates it cannot coerce, inverted or zero-touching windows,
        unknown modes, a disabled cache) by falling through to
        :meth:`~repro.core.basis.CalendarSystem.generate` unchanged.

        Thread-safe: concurrent hits on distinct keys proceed on separate
        stripes; concurrent misses on the *same* key are deduplicated to
        a single generation (single-flight), with waiters re-entering the
        hit path once the generator finishes.
        """
        t0 = perf_counter()
        start, end = window
        if not self.enabled:
            return self._direct(system, cal, unit, (start, end), mode)
        cal_g = Granularity.parse(cal)
        unit_g = Granularity.parse(unit)
        if not (isinstance(start, int) and isinstance(end, int)) \
                and unit_g == Granularity.DAYS:
            # Day windows given as dates coerce exactly to tick windows.
            try:
                start, end = system.day_window(start, end)
            except Exception:
                return self._direct(system, cal, unit, window, mode)
        if not (isinstance(start, int) and isinstance(end, int)) \
                or start == 0 or end == 0 or start > end \
                or mode not in ("clip", "cover"):
            return self._direct(system, cal, unit, (start, end), mode)
        key = (system.epoch.date, cal_g, unit_g)
        stripe = self._stripe_of(key)
        self._counters["requests"].inc()
        while True:
            self._acquire(stripe.lock)
            try:
                entry = stripe.entries.get(key)
                if entry is not None and entry.covers(start, end):
                    stripe.entries.move_to_end(key)
                    entry.stamp = next(self._ticker)
                    self._counters["hits"].inc()
                    if self._stripe_hits is not None:
                        self._stripe_hits[stripe.index].inc()
                    result = entry.serve(start, end, mode)
                    self._counters["served_intervals"].inc(len(result))
                    self._latency["hit"].observe(perf_counter() - t0)
                    if self.pipeline is not None:
                        self.pipeline.emit(
                            "cache.hit", calendar=cal_g.name,
                            unit=unit_g.name, lo=start, hi=end,
                            intervals=len(result))
                    return result
                flight = stripe.inflight.get(key)
                if flight is None:
                    # Claim the generation; ``entry`` (possibly None or
                    # partially covering) is ours alone to extend/replace
                    # until the flight is cleared.
                    claimed = _Flight()
                    stripe.inflight[key] = claimed
                    break
            finally:
                stripe.lock.release()
            # Another thread is generating this key: wait, then retry
            # the hit path against whatever it installed.
            self._counters["single_flight_waits"].inc()
            flight.event.wait()
        try:
            if entry is not None and entry.near(start, end):
                result = self._extend(system, stripe, key, entry,
                                      start, end, mode)
                if result is not None:
                    self._latency["extension"].observe(perf_counter() - t0)
                    return result
            result = self._install(system, stripe, key, cal_g, unit_g,
                                   start, end, mode)
            self._latency["miss"].observe(perf_counter() - t0)
            return result
        finally:
            self._acquire(stripe.lock)
            try:
                stripe.inflight.pop(key, None)
            finally:
                stripe.lock.release()
            claimed.event.set()

    def _direct(self, system, cal, unit, window, mode) -> Calendar:
        self._counters["uncacheable"].inc()
        self._counters["requests"].inc()
        return system.generate(cal, unit, window, mode=mode)

    def _install(self, system, stripe: _Stripe, key, cal_g, unit_g,
                 start, end, mode) -> Calendar:
        """Full miss: generate the window in cover mode and store it.

        Runs with the single-flight claim held, so no other thread can
        install or extend this key concurrently; generation happens
        outside the stripe lock.
        """
        cover = system.generate(cal_g, unit_g, (start, end), mode="cover")
        entry = _Entry.build((start, end), cover)
        self._acquire(stripe.lock)
        try:
            self._counters["misses"].inc()
            if self._stripe_misses is not None:
                self._stripe_misses[stripe.index].inc()
            self._counters["generated_intervals"].inc(len(cover))
            current = stripe.entries.get(key)
            # Keep whichever window is wider (an eviction may have raced
            # us, but a competing installer cannot — we hold the flight).
            # A *narrower* disjoint request — typical for a streaming
            # pipeline's per-reference windows — is served from its own
            # materialisation without evicting the wider shared entry
            # (window-truncated insertion would otherwise thrash it).
            if current is not None and not current.covers(start, end) and \
                    (current.window[1] - current.window[0]) > (end - start):
                self._counters["narrow_bypass"].inc()
                current.stamp = next(self._ticker)
                result = entry.serve(start, end, mode)
                self._counters["served_intervals"].inc(len(result))
            else:
                if current is None or not current.covers(start, end):
                    stripe.entries[key] = entry
                    stripe.entries.move_to_end(key)
                    current = entry
                entry.stamp = current.stamp = next(self._ticker)
                result = current.serve(start, end, mode)
                self._counters["served_intervals"].inc(len(result))
        finally:
            stripe.lock.release()
        if self.pipeline is not None:
            self.pipeline.emit(
                "cache.miss", calendar=cal_g.name, unit=unit_g.name,
                lo=start, hi=end, generated=len(cover))
        self._evict_overflow()
        return result

    def _extend(self, system, stripe: _Stripe, key, entry: _Entry,
                lo: int, hi: int, mode: str) -> Calendar | None:
        """Generate only the uncovered side(s) and merge into the entry.

        Returns the served calendar, or None when the merged entry would
        exceed the per-entry element cap (the caller then replaces the
        entry instead).  Like :meth:`_install`, runs under the
        single-flight claim with generation outside the stripe lock.
        """
        wlo, whi = entry.window
        left = right = None
        if lo < wlo:
            left = system.generate(
                key[1], key[2], (lo, _axis_dec(wlo)), mode="cover")
        if hi > whi:
            right = system.generate(
                key[1], key[2], (_axis_inc(whi), hi), mode="cover")
        old = entry.calendar
        merged = self._merge_extension(old, left, right)
        if merged is None:
            return None
        generated = (len(left) if left is not None else 0) + \
            (len(right) if right is not None else 0)
        new_entry = _Entry.build((min(lo, wlo), max(hi, whi)), merged)
        self._acquire(stripe.lock)
        try:
            self._counters["extensions"].inc()
            self._counters["generated_intervals"].inc(generated)
            new_entry.stamp = next(self._ticker)
            stripe.entries[key] = new_entry
            stripe.entries.move_to_end(key)
            result = new_entry.serve(lo, hi, mode)
            self._counters["served_intervals"].inc(len(result))
        finally:
            stripe.lock.release()
        if self.pipeline is not None:
            self.pipeline.emit(
                "cache.extend", calendar=key[1].name, unit=key[2].name,
                lo=lo, hi=hi, generated=generated)
        self._evict_overflow()
        return result

    def _merge_extension(self, old: Calendar, left: "Calendar | None",
                         right: "Calendar | None") -> Calendar | None:
        """Merge freshly generated extension(s) around the old cover.

        The unit straddling the old window boundary appears whole in both
        materialisations; a single copy is kept (deduplicated by ``lo``).
        Returns None when the merged entry would exceed the per-entry
        element cap.  Column-backed inputs merge lane-wise (one buffer
        concatenation, no ``Interval`` objects).
        """
        old_cols = old.columns
        if old_cols is not None and \
                (left is None or left.columns is not None) and \
                (right is None or right.columns is not None):
            n_old = len(old_cols)
            first_lo = old_cols.los[0] if n_old else None
            last_lo = old_cols.los[-1] if n_old else None
            parts = []
            label_parts = []
            for side, bound, is_left in ((left, first_lo, True),
                                         (None, None, None),
                                         (right, last_lo, False)):
                if is_left is None:
                    parts.append(old_cols)
                    label_parts.append(old.labels)
                    continue
                if side is None:
                    continue
                cols = side.columns
                if bound is None:
                    idx = range(len(cols))
                    kept = cols
                elif cols.lo_sorted:
                    if is_left:
                        k = bisect.bisect_left(cols.los, bound)
                        idx = range(k)
                        kept = cols.slice(0, k)
                    else:
                        k = bisect.bisect_right(cols.los, bound)
                        idx = range(k, len(cols))
                        kept = cols.slice(k, len(cols))
                else:
                    pos = [i for i in range(len(cols))
                           if (cols.los[i] < bound if is_left
                               else cols.los[i] > bound)]
                    idx = pos
                    kept = cols.take(pos)
                parts.append(kept)
                label_parts.append(tuple(side.label_of(i) for i in idx))
            if sum(len(p) for p in parts) > self.max_entry_elements:
                return None
            labels = None
            if old.labels is not None:
                labels = tuple(lab for part in label_parts
                               for lab in (part or ()))
            merged_cols = columnar.concat_columns(parts)
            return Calendar._from_columns(merged_cols, old.granularity,
                                          labels)
        elements = list(old.elements)
        labels = list(old.labels) if old.labels is not None else None
        if left is not None:
            first_lo = elements[0].lo if elements else None
            keep = [i for i, iv in enumerate(left.elements)
                    if first_lo is None or iv.lo < first_lo]
            elements[:0] = [left.elements[i] for i in keep]
            if labels is not None:
                labels[:0] = [left.label_of(i) for i in keep]
        if right is not None:
            last_lo = elements[-1].lo if elements else None
            keep = [i for i, iv in enumerate(right.elements)
                    if last_lo is None or iv.lo > last_lo]
            elements.extend(right.elements[i] for i in keep)
            if labels is not None:
                labels.extend(right.label_of(i) for i in keep)
        if len(elements) > self.max_entry_elements:
            return None
        return Calendar.from_intervals(elements, old.granularity, labels)

    def _evict_overflow(self) -> None:
        """Evict globally least-recently-stamped entries past ``maxsize``.

        The unlocked pre-check keeps the common (under-capacity) case at
        one sum; the sweep itself is serialised by ``_evict_lock`` and
        takes one stripe lock at a time (never two), so it cannot
        deadlock against the request path.
        """
        if sum(len(s.entries) for s in self._stripes) <= self.maxsize:
            return
        with self._evict_lock:
            while True:
                total = 0
                oldest_stamp = None
                oldest_stripe = None
                for stripe in self._stripes:
                    self._acquire(stripe.lock)
                    try:
                        total += len(stripe.entries)
                        # The OrderedDict front is the stripe's LRU entry,
                        # so its stamp is the stripe minimum.
                        if stripe.entries:
                            front = next(iter(stripe.entries.values()))
                            if oldest_stamp is None or \
                                    front.stamp < oldest_stamp:
                                oldest_stamp = front.stamp
                                oldest_stripe = stripe
                    finally:
                        stripe.lock.release()
                if total <= self.maxsize or oldest_stripe is None:
                    return
                self._acquire(oldest_stripe.lock)
                try:
                    if oldest_stripe.entries:
                        evicted_key, _ = oldest_stripe.entries.popitem(
                            last=False)
                        self._counters["evictions"].inc()
                        if self.pipeline is not None:
                            # Emitting under the stripe lock is safe: the
                            # pipeline lock is a non-blocking leaf lock.
                            self.pipeline.emit(
                                "cache.evict",
                                calendar=evicted_key[1].name,
                                unit=evicted_key[2].name)
                finally:
                    oldest_stripe.lock.release()

    # -- generic memo (registry/rule layers) -----------------------------------

    _MISSING = object()

    def memo_get(self, key):
        """The memoised value for ``key``, or None when absent/disabled."""
        if self.memo_maxsize == 0:
            return None
        with self._memo_lock:
            value = self._memo.get(key, self._MISSING)
            if value is self._MISSING:
                self._counters["memo_misses"].inc()
                return None
            self._counters["memo_hits"].inc()
            self._memo.move_to_end(key)
            return value

    def memo_put(self, key, value) -> None:
        """Memoise ``value`` under ``key`` (LRU-bounded; no-op if disabled)."""
        if self.memo_maxsize == 0:
            return
        with self._memo_lock:
            self._memo[key] = value
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_maxsize:
                self._memo.popitem(last=False)

    # -- stats / lifecycle ----------------------------------------------------

    def stats(self) -> dict:
        """A snapshot of the counters, plus the derived hit ratio.

        The adapter over the metrics-backed instruments: historical flat
        key names are preserved (``hits``, ``misses``, …) and latency
        histograms are added under ``*_seconds`` keys as summary dicts.
        """
        out = {name: counter.value
               for name, counter in self._counters.items()}
        lookups = out["hits"] + out["misses"] + out["extensions"]
        entries = 0
        for stripe in self._stripes:
            with stripe.lock:
                entries += len(stripe.entries)
        out["entries"] = entries
        with self._memo_lock:
            out["memo_entries"] = len(self._memo)
        out["hit_ratio"] = out["hits"] / lookups if lookups else 0.0
        for kind, histogram in self._latency.items():
            out[f"{kind}_seconds"] = histogram.summary()
        return out

    def reset_stats(self) -> None:
        """Zero every counter and latency histogram (entries are kept)."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._latency.values():
            histogram.reset()
        if self._stripe_hits is not None:
            for child in self._stripe_hits + self._stripe_misses:
                child.reset()

    def clear(self) -> None:
        """Drop every entry and memo value (counters are kept).

        In-flight generations are left to finish: their markers stay so
        waiters still make progress; the freshly generated entries are
        simply installed into the emptied map.
        """
        for stripe in self._stripes:
            with stripe.lock:
                stripe.entries.clear()
        with self._memo_lock:
            self._memo.clear()


# -- process-wide default -----------------------------------------------------

_default_cache: MaterialisationCache | None = None
_default_lock = threading.Lock()


def _default_maxsize() -> int:
    if os.environ.get("REPRO_MATCACHE", "1").lower() in ("0", "off",
                                                         "false", "no"):
        return 0
    try:
        return int(os.environ.get("REPRO_MATCACHE_SIZE", "256"))
    except ValueError:
        return 256


def get_default_cache() -> MaterialisationCache:
    """The process-wide cache (created on first use; see module docs).

    Its counters live in the process-wide instrumentation bundle's
    metrics registry, so ``\\metrics`` and JSON exports include them.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            from repro.obs.instrument import get_default_instrumentation
            _default_cache = MaterialisationCache(
                maxsize=_default_maxsize(),
                metrics=get_default_instrumentation().metrics)
        return _default_cache


def set_default_cache(cache: MaterialisationCache
                      ) -> MaterialisationCache | None:
    """Swap the process-wide cache; returns the previous one."""
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
        return previous
