"""The calendar registry: define, store, optimise and evaluate calendars.

This is the user-facing façade tying sections 3.2-3.4 together: a
:class:`CalendarRegistry` owns the CALENDARS table, parses derivation
scripts, infers granularities, pre-compiles evaluation plans (factorized,
window-narrowed) for single-expression derivations, and evaluates calendar
names or ad-hoc expressions over a generation window.

It also provides :meth:`next_occurrence`, the primitive DBCRON uses to
find the next time point at which a temporal rule must trigger: the
calendar is evaluated over growing look-ahead windows until a point after
"now" is found.
"""

from __future__ import annotations

import itertools
import math
import os
import warnings

from repro.core.arithmetic import next_point
from repro.core.basis import CalendarSystem
from repro.core.matcache import MaterialisationCache, get_default_cache
from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate
from repro.core.errors import CalendarError, LifespanError
from repro.core.granularity import Granularity
from repro.lang import ast
from repro.lang.defs import (
    BasicDef,
    Definition,
    DerivedDef,
    ExplicitDef,
    basic_resolver,
)
from repro.lang.errors import EvaluationError, PlanError
from repro.lang.factorizer import factorize, granularity_of
from repro.lang.interpreter import EvalContext, Interpreter
from repro.lang.parser import parse_expression, parse_script
from repro.lang.optimizer import optimize_plan
from repro.lang.plan import Plan, PlanVM
from repro.lang.planner import compile_expression
from repro.errors import ReproError
from repro.obs.instrument import Instrumentation, get_default_instrumentation
from repro.catalog.table import (
    UNBOUNDED_LIFESPAN,
    CalendarRecord,
    CalendarsTable,
)

__all__ = ["CalendarRegistry"]

#: Process-wide source of unique registry identities for shared-cache
#: memo keys (id() can be recycled after garbage collection; this can't).
_MEMO_TOKENS = itertools.count(1)


def _env_optimize_default() -> bool:
    """The plan-optimizer gate from ``REPRO_OPTIMIZE`` (default on)."""
    value = os.environ.get("REPRO_OPTIMIZE")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "no", "off")


def _env_periodic_default() -> bool:
    """The periodic-compilation gate from ``REPRO_PERIODIC`` (default on)."""
    value = os.environ.get("REPRO_PERIODIC")
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "no", "off")


def _positional_kwargs(method: str, args: tuple, names: tuple) -> dict:
    """Map deprecated positional arguments onto their keyword names.

    The evaluation entry points historically accepted ``window`` and
    ``today`` positionally; the supported convention is now keyword-only
    (``window=``/``today=``).  Positional use still works but warns.
    """
    if not args:
        return {}
    if len(args) > len(names):
        raise TypeError(f"{method}() takes at most {len(names)} "
                        f"positional option(s) ({', '.join(names)})")
    moved = dict(zip(names, args))
    warnings.warn(
        f"passing {'/'.join(moved)} positionally to {method}() is "
        f"deprecated; use keyword arguments "
        f"({', '.join(f'{n}=...' for n in moved)})",
        DeprecationWarning, stacklevel=3)
    return moved


class CalendarRegistry:
    """Named calendars over one :class:`CalendarSystem`.

    ``default_horizon_years`` bounds the default generation window: from
    the epoch year to epoch year + horizon.  Individual evaluations may
    pass an explicit window (day ticks or ``(date, date)``).
    """

    def __init__(self, system: CalendarSystem | None = None,
                 default_horizon_years: int = 40,
                 matcache: MaterialisationCache | None = None,
                 instrumentation: Instrumentation | None = None,
                 optimize: bool | None = None,
                 periodic: bool | None = None) -> None:
        self.system = system or CalendarSystem()
        #: Plan-optimizer gate (CSE / fusion / selection push-down);
        #: ``None`` reads ``REPRO_OPTIMIZE`` (default on).
        self.optimize = _env_optimize_default() if optimize is None \
            else bool(optimize)
        #: Periodic-set compilation gate (O(1) membership /
        #: next-occurrence without materialisation); ``None`` reads
        #: ``REPRO_PERIODIC`` (default on).
        self.periodic = _env_periodic_default() if periodic is None \
            else bool(periodic)
        #: Metrics + tracing attachment point; defaults to the
        #: process-wide instrumentation (tracing off unless REPRO_TRACE).
        self.instrumentation = instrumentation if instrumentation \
            is not None else get_default_instrumentation()
        #: Shared materialisation cache; defaults to the process-wide one.
        #: An explicitly instrumented registry gets a private cache bound
        #: to its metrics (the shared default cache reports to the
        #: default instrumentation, which would hide this registry's
        #: cache traffic from its own metrics).
        if matcache is not None:
            self.matcache = matcache
        elif instrumentation is not None:
            self.matcache = MaterialisationCache(
                metrics=instrumentation.metrics)
        else:
            self.matcache = get_default_cache()
        self.table = CalendarsTable()
        epoch_year = self.system.epoch.date.year
        lo, _ = self.system.epoch.days_of_year(epoch_year)
        _, hi = self.system.epoch.days_of_year(
            epoch_year + default_horizon_years - 1)
        self.default_window: tuple[int, int] = (lo, hi)
        #: Extension functions exposed to scripts (name -> f(ctx, args)).
        self.functions: dict = {}
        #: Parameterised calendar procedures (name -> (params, Script)).
        self._procedures: dict[str, tuple] = {}
        #: Bumped on every define/drop; every memoised evaluation keys on
        #: it, so stale results for redefined calendars are never served.
        self.version = 0
        #: Unique per-instance token; memo keys in the shared cache embed
        #: it so two registries with equal versions never collide.
        self.memo_token = next(_MEMO_TOKENS)

    # -- definition --------------------------------------------------------------

    def define(self, name: str, script: str | None = None,
               values: "Calendar | list | None" = None,
               granularity: "Granularity | str | None" = None,
               lifespan: tuple[float, float] | None = None,
               replace: bool = False, compile_plan: bool = True
               ) -> CalendarRecord:
        """Define a calendar from a derivation script or explicit values.

        Exactly one of ``script`` / ``values`` must be given.  Granularity
        is inferred from the script when omitted (section 3.2).  For
        single-expression scripts an optimised evaluation plan is compiled
        and stored in the record (the Figure 1 ``eval-plan`` column).
        """
        if (script is None) == (values is None):
            raise CalendarError(
                "define() needs exactly one of script= or values=")
        gran = Granularity.parse(granularity) if granularity else None
        cal: Calendar | None = None
        if values is not None:
            cal = values if isinstance(values, Calendar) \
                else Calendar.from_intervals(values, gran)
            if gran is not None:
                cal = cal.with_granularity(gran)
        record = CalendarRecord(
            name=name,
            derivation_script=script,
            lifespan=lifespan or UNBOUNDED_LIFESPAN,
            granularity=gran,
            values=cal,
        )
        if values is None:
            parsed = parse_script(script)
            record.parsed_script = parsed
            if record.granularity is None:
                record.granularity = self._infer_granularity(parsed)
            if compile_plan and parsed.is_single_expression():
                record.eval_plan = self._compile_record_plan(parsed)
        self.table.insert(record, replace=replace)
        self.version += 1
        return record

    def drop(self, name: str) -> None:
        """Remove a calendar from the catalog."""
        self.table.drop(name)
        self.version += 1

    def record(self, name: str) -> CalendarRecord:
        """The catalog record of a defined calendar (raises if unknown)."""
        record = self.table.get(name)
        if record is None:
            raise CalendarError(f"unknown calendar {name!r}")
        return record

    def names(self) -> list[str]:
        """Sorted names of all defined calendars."""
        return self.table.names()

    def __contains__(self, name: str) -> bool:
        return name in self.table

    def _infer_granularity(self, parsed: ast.Script) -> Granularity | None:
        temporaries = self._script_temporaries(parsed)
        for stmt in self._iter_returns(parsed.body):
            gran = granularity_of(
                factorize(stmt.expr, self.resolver,
                          temporaries=temporaries).expression,
                self.resolver)
            if gran is not None:
                return gran
        return None

    @staticmethod
    def _script_temporaries(parsed: ast.Script) -> dict[str, ast.Expr]:
        temporaries: dict[str, ast.Expr] = {}
        for stmt in parsed.body:
            if isinstance(stmt, ast.Assign):
                temporaries[stmt.name.lower()] = stmt.expr
        return temporaries

    @classmethod
    def _iter_returns(cls, body):
        for stmt in body:
            if isinstance(stmt, ast.Return):
                yield stmt
            elif isinstance(stmt, ast.If):
                yield from cls._iter_returns(stmt.then_body)
                yield from cls._iter_returns(stmt.else_body)
            elif isinstance(stmt, ast.While):
                yield from cls._iter_returns(stmt.body)

    def _compile_record_plan(self, parsed: ast.Script) -> Plan | None:
        expr = parsed.single_expression()
        factored = factorize(expr, self.resolver).expression
        try:
            plan = compile_expression(factored, self.system, self.resolver,
                                      context_window=self.default_window)
        except PlanError:
            return None
        if self.optimize:
            # Record plans are reused under arbitrary evaluation windows:
            # reusable=True keeps CSE structural and the runtime pipeline
            # windows resolve against the actual context at execution.
            plan = optimize_plan(
                plan, context_window=self.default_window,
                reusable=True, metrics=self.instrumentation.metrics,
                events=self.instrumentation.pipeline).plan
        return plan

    # -- procedures ----------------------------------------------------------------

    def define_procedure(self, name: str, params: "list[str]",
                         script: str, replace: bool = False) -> None:
        """Define a parameterised calendar procedure.

        A procedure is a calendar script whose free names ``params`` are
        bound to evaluated argument calendars at call time, e.g.::

            registry.define_procedure(
                "expiration", ["Expiration-Month"], EXPIRATION_SCRIPT)
            registry.eval_expression(
                "expiration([11]/MONTHS:during:1993/YEARS)")

        This turns the paper's section 3.3 scripts — which reference a
        "predefined calendar" Expiration-Month — into reusable functions.
        """
        key = name.lower()
        if key in self._procedures and not replace:
            raise CalendarError(f"procedure {name!r} is already defined")
        if key in self.table or key in ("generate", "caloperate", "point",
                                        "date", "flatten", "interval",
                                        "pattern"):
            raise CalendarError(
                f"procedure name {name!r} collides with an existing "
                "calendar or builtin function")
        parsed = parse_script(script)
        parameters = tuple(p.lower() for p in params)
        self._procedures[key] = (parameters, parsed)
        self.functions[key] = self._make_procedure(name, parameters,
                                                   parsed)
        self.version += 1

    def procedures(self) -> list[str]:
        """Sorted names of all defined procedures."""
        return sorted(self._procedures)

    def drop_procedure(self, name: str) -> None:
        """Remove a procedure (raises if unknown)."""
        key = name.lower()
        if key not in self._procedures:
            raise CalendarError(f"unknown procedure {name!r}")
        del self._procedures[key]
        del self.functions[key]
        self.version += 1

    def _make_procedure(self, name: str, params: tuple, parsed):
        def call(context, args):
            if len(args) != len(params):
                raise EvaluationError(
                    f"procedure {name!r} takes {len(params)} argument(s), "
                    f"got {len(args)}")
            child = context.spawn_env()
            for param, value in zip(params, args):
                if not isinstance(value, Calendar):
                    raise EvaluationError(
                        f"procedure {name!r} arguments must be calendars")
                child.env[param] = value
            result = Interpreter(child).execute_raw(parsed)
            if not isinstance(result, Calendar):
                raise EvaluationError(
                    f"procedure {name!r} did not return a calendar")
            return result
        return call

    # -- resolution ----------------------------------------------------------------

    def resolver(self, name: str) -> Definition | None:
        """Resolve a name: catalog first, then the basic calendars."""
        record = self.table.get(name)
        if record is not None:
            lifespan = record.lifespan
            if record.is_explicit:
                return ExplicitDef(record.values, record.granularity,
                                   lifespan)
            return DerivedDef(record.parsed_script, record.granularity,
                              lifespan)
        return basic_resolver(name)

    # -- evaluation ----------------------------------------------------------------

    def context(self, window=None, today=None,
                unit: Granularity = Granularity.DAYS) -> EvalContext:
        """Build an evaluation context (window in unit ticks or dates)."""
        win = self._coerce_window(window)
        tracer = self.instrumentation.tracer
        return EvalContext(system=self.system, resolver=self.resolver,
                           window=win, unit=unit,
                           today=self._coerce_tick(today),
                           functions=dict(self.functions),
                           matcache=self.matcache,
                           tracer=tracer,
                           metrics=self.instrumentation.metrics,
                           events=self.instrumentation.pipeline)

    def _coerce_window(self, window) -> tuple[int, int]:
        """Normalise every accepted ``window=`` form to day ticks.

        This is the single coercion path for all evaluation entry points;
        accepted forms are ``None`` (the registry default window), a
        ``(start, end)`` pair of day ticks / date strings / CivilDates,
        or a single ``"start .. end"`` string.
        """
        if window is None:
            return self.default_window
        if isinstance(window, str):
            if ".." not in window:
                raise CalendarError(
                    f"cannot interpret {window!r} as a window; use "
                    f"'start .. end' or a (start, end) pair")
            lo, hi = (part.strip() for part in window.split("..", 1))
            return self.system.day_window(lo, hi)
        try:
            lo, hi = window
        except (TypeError, ValueError):
            raise CalendarError(
                f"cannot interpret {window!r} as a window; expected a "
                f"(start, end) pair")
        return self.system.day_window(lo, hi)

    def _coerce_tick(self, value) -> int | None:
        """Normalise a ``today=``-style value to a day tick (or None)."""
        if value is None or isinstance(value, int):
            return value
        return self.system.day_of(value)

    def evaluate(self, name: str, *args, window=None, today=None,
                 use_plan: bool = True):
        """Evaluate a defined calendar over a window.

        Uses the stored evaluation plan when available (and ``use_plan``);
        multi-statement scripts run through the interpreter.  The result is
        clipped to the calendar's lifespan when one was declared.
        ``window``/``today`` are keyword-only by convention (positional
        use is deprecated) and accept every form
        :meth:`_coerce_window`/:meth:`_coerce_tick` understand.
        """
        moved = _positional_kwargs("evaluate", args,
                                   ("window", "today", "use_plan"))
        window = moved.get("window", window)
        today = moved.get("today", today)
        use_plan = moved.get("use_plan", use_plan)
        record = self.record(name)
        tracer = self.instrumentation.tracer
        try:
            if tracer is not None:
                with tracer.span("registry.evaluate", calendar=name):
                    with tracer.span("registry.context"):
                        ctx = self.context(window, today=today)
                    return self._evaluate_record(record, ctx, use_plan)
            ctx = self.context(window, today=today)
            return self._evaluate_record(record, ctx, use_plan)
        except ReproError as exc:
            raise exc.add_context(calendar=name,
                                  script=record.derivation_script)

    def _evaluate_record(self, record: CalendarRecord, ctx: EvalContext,
                         use_plan: bool):
        """Evaluate one catalog record in a prepared context."""
        if record.is_explicit:
            result: "Calendar | str" = record.values
        elif use_plan and record.eval_plan is not None:
            result = PlanVM(ctx).run(record.eval_plan)
        else:
            result = Interpreter(ctx).execute(record.parsed_script)
        if isinstance(result, Calendar):
            result = self._clip_lifespan(result, record)
            if record.granularity is not None:
                result = result.with_granularity(record.granularity)
        return result

    def eval_expression(self, text: str, *args, window=None, today=None,
                        optimize: bool = True):
        """Parse, (optionally) factorize+plan, and evaluate an expression.

        ``window``/``today`` are keyword-only by convention (positional
        use is deprecated); see :meth:`_coerce_window` for accepted
        window forms.
        """
        moved = _positional_kwargs("eval_expression", args,
                                   ("window", "today", "optimize"))
        window = moved.get("window", window)
        today = moved.get("today", today)
        optimize = moved.get("optimize", optimize)
        tracer = self.instrumentation.tracer
        try:
            if tracer is not None:
                with tracer.span("registry.eval_expression", text=text,
                                 optimize=optimize):
                    with tracer.span("registry.context"):
                        ctx = self.context(window, today=today)
                    return self._eval_expression(text, ctx, optimize)
            ctx = self.context(window, today=today)
            return self._eval_expression(text, ctx, optimize)
        except ReproError as exc:
            raise exc.add_context(script=text)

    def _eval_expression(self, text: str, ctx: EvalContext,
                         optimize: bool):
        """Factorize/plan/run an expression in a prepared context."""
        tracer = ctx.tracer
        if optimize:
            factored = self._factorized_ast(text, tracer)
            try:
                if tracer is None:
                    plan = self._compiled_plan(text, factored, ctx)
                    if self.optimize:
                        plan = self._optimized_plan(text, plan, ctx)
                else:
                    with tracer.span("planner.compile"):
                        plan = self._compiled_plan(text, factored, ctx)
                    if self.optimize:
                        with tracer.span("optimizer.run"):
                            plan = self._optimized_plan(text, plan, ctx)
                result = PlanVM(ctx).run(plan)
            except PlanError:
                return Interpreter(ctx).evaluate(factored)
            self._warm_periodic(text, ctx)
            return result
        if tracer is None:
            return Interpreter(ctx).evaluate(parse_expression(text))
        with tracer.span("lang.parse", text=text):
            parsed = parse_expression(text)
        return Interpreter(ctx).evaluate(parsed)

    def _factorized_ast(self, text: str, tracer) -> ast.Expr:
        """The memoised factorized AST of an expression text."""
        key = ("ast", text, self.memo_token, self.version)
        factored = self.matcache.memo_get(key)
        if factored is None:
            if tracer is None:
                factored = factorize(parse_expression(text),
                                     self.resolver).expression
            else:
                with tracer.span("lang.parse", text=text):
                    parsed = parse_expression(text)
                with tracer.span("lang.factorize"):
                    result = factorize(parsed, self.resolver)
                for rewrite in result.rewrites:
                    tracer.event("factorizer.rewrite", rule=rewrite)
                factored = result.expression
            self.matcache.memo_put(key, factored)
        return factored

    def _compiled_plan(self, text: str, factored: ast.Expr,
                       ctx: EvalContext) -> Plan:
        """The (memoised) evaluation plan of a factorized expression."""
        return compile_expression(factored, self.system, self.resolver,
                                  context_window=ctx.window,
                                  matcache=self.matcache,
                                  memo_key=(text, self.memo_token,
                                            self.version),
                                  tracer=ctx.tracer)

    def _optimized_plan(self, text: str, plan: Plan,
                        ctx: EvalContext) -> Plan:
        """The (memoised) optimised plan of a compiled expression plan."""
        pset = None
        if self.periodic and ctx.unit is Granularity.DAYS:
            # Memo-peek only: compilation runs *after* a successful
            # eager evaluation (see _warm_periodic), so the plan chosen
            # here always matches what ``explain`` reports and the
            # first evaluation never pays the oracle up front.
            pset = self.periodic_set(text, peek=True)
        key = ("optplan", text, self.memo_token, self.version, ctx.unit,
               ctx.window, pset is not None)
        cached = self.matcache.memo_get(key)
        if isinstance(cached, Plan):
            return cached
        optimized = optimize_plan(
            plan, context_window=ctx.window, unit=ctx.unit, periodic=pset,
            metrics=self.instrumentation.metrics,
            events=self.instrumentation.pipeline).plan
        self.matcache.memo_put(key, optimized)
        return optimized

    def _warm_periodic(self, text: str, ctx: EvalContext) -> None:
        """Compile the periodic form behind a finished evaluation.

        Runs on the small budget tier (an ad-hoc evaluation never pays
        a 400-year oracle interpretation), memoised including the
        fallback outcome, so each expression compiles at most once per
        catalog version and every *later* evaluation — and ``explain``
        — can pick the periodic backend from the memo.
        """
        if self.periodic and ctx.unit is Granularity.DAYS:
            self.periodic_set(text, full=False)

    def eval_script(self, text: str, *args, window=None, today=None,
                    env: dict | None = None, while_hook=None):
        """Parse and run a full calendar script; returns its result.

        ``window``/``today`` are keyword-only by convention (positional
        use is deprecated); see :meth:`_coerce_window` for accepted
        window forms.
        """
        moved = _positional_kwargs("eval_script", args,
                                   ("window", "today", "env", "while_hook"))
        window = moved.get("window", window)
        today = moved.get("today", today)
        env = moved.get("env", env)
        while_hook = moved.get("while_hook", while_hook)
        tracer = self.instrumentation.tracer
        try:
            if tracer is None:
                ctx = self._script_context(window, today, env, while_hook)
                return Interpreter(ctx).execute(parse_script(text))
            with tracer.span("registry.eval_script"):
                with tracer.span("registry.context"):
                    ctx = self._script_context(window, today, env,
                                               while_hook)
                with tracer.span("lang.parse"):
                    parsed = parse_script(text)
                return Interpreter(ctx).execute(parsed)
        except ReproError as exc:
            raise exc.add_context(script=text)

    def _script_context(self, window, today, env, while_hook
                        ) -> EvalContext:
        """An evaluation context primed with script bindings."""
        ctx = self.context(window, today=today)
        if env:
            ctx.env.update({k.lower(): v for k, v in env.items()})
        ctx.while_hook = while_hook
        return ctx

    def _clip_lifespan(self, cal: Calendar, record: CalendarRecord
                       ) -> Calendar:
        lo, hi = record.lifespan
        if (lo, hi) == UNBOUNDED_LIFESPAN or cal.order != 1:
            return cal
        window = self._lifespan_day_window(record)
        if window is None:
            return cal
        return cal.intersection(
            Calendar.interval(window[0], window[1], cal.granularity))

    def _lifespan_day_window(self, record: CalendarRecord
                             ) -> tuple[int, int] | None:
        lo, hi = record.lifespan
        epoch = self.system.epoch
        day_lo = (self.default_window[0] if lo == -math.inf
                  else epoch.day_number(CivilDate(int(lo), 1, 1)))
        day_hi = (self.default_window[1] if hi == math.inf
                  else epoch.day_number(CivilDate(int(hi), 12, 31)))
        if day_lo > day_hi:
            raise LifespanError(
                f"calendar {record.name!r} lifespan is empty on the day axis")
        return day_lo, day_hi

    # -- periodic compilation ------------------------------------------------------

    #: Oracle-evaluation budgets (in days) for periodic compilation.
    #: The full tier admits the 146 097-day Gregorian master period
    #: (scheduling and DB probe paths, where the one-time cost amortises
    #: over every later O(offsets) probe); the small tier only admits
    #: cheap anchors (weekly patterns, year-anchored finite sets) so the
    #: per-expression optimizer path never stalls on a 400-year
    #: interpretation.
    _PERIODIC_FULL_DAYS = 220_000
    _PERIODIC_SMALL_DAYS = 25_000

    def periodic_set(self, name_or_expr: str, *, full: bool = True,
                     peek: bool = False):
        """The compiled :class:`~repro.core.periodic.PeriodicSet` of a
        calendar name or expression — or ``None`` (fallback).

        Results (including fallbacks) are memoised in the shared cache
        keyed like the plan memo (text + registry token + version), one
        entry per budget tier; a full-tier hit also serves small-tier
        requests.  Returns ``None`` whenever the gate
        (``Session(periodic=)`` / ``REPRO_PERIODIC``) is off, the name
        has a clipped lifespan, or the expression cannot be proven
        eventually periodic within the tier's oracle budget.

        With ``peek=True`` only the memo tiers are consulted and no
        compilation happens — the side-effect-free form ``explain``
        uses (compilation evaluates the expression as its oracle, which
        materialises intervals).
        """
        if not self.periodic:
            return None
        text = name_or_expr
        full_key = ("periodic", text, "full", self.memo_token,
                    self.version)
        cached = self.matcache.memo_get(full_key)
        if cached is not None:
            return cached[0]
        if not full or peek:
            small_key = ("periodic", text, "small", self.memo_token,
                         self.version)
            cached = self.matcache.memo_get(small_key)
            if cached is not None:
                return cached[0]
            if peek:
                return None
            pset = self._compile_periodic(text, self._PERIODIC_SMALL_DAYS)
            self.matcache.memo_put(small_key, (pset,))
            return pset
        pset = self._compile_periodic(text, self._PERIODIC_FULL_DAYS)
        self.matcache.memo_put(full_key, (pset,))
        return pset

    def _compile_periodic(self, text: str, max_eval_days: int):
        """Uncached periodic compilation + compiled/fallback telemetry."""
        from repro.core.periodic import compile_expression_periodic
        reasons: list[str] = []
        pset = None
        record = self.table.get(text)
        if record is not None and record.lifespan != UNBOUNDED_LIFESPAN:
            # evaluate() clips such names to their lifespan; the inline
            # oracle does not, so the compiled set would disagree.
            reasons.append("lifespan-clipped calendar")
        else:
            try:
                factored = self._factorized_ast(text, None)
                pset = compile_expression_periodic(
                    factored, system=self.system, resolver=self.resolver,
                    evaluate=lambda win: self.eval_expression(
                        text, window=win, optimize=False),
                    source=text, max_eval_days=max_eval_days,
                    reason_out=reasons)
            except ReproError as exc:
                reasons.append(str(exc))
        metrics = self.instrumentation.metrics
        events = self.instrumentation.pipeline
        if pset is not None:
            if metrics is not None:
                metrics.counter("periodic.compiled").inc()
            if events is not None:
                events.emit("periodic.compiled", source=text,
                            form=pset.describe())
        else:
            reason = reasons[-1] if reasons else "unknown"
            if metrics is not None:
                metrics.counter("periodic.fallback").inc()
            if events is not None:
                events.emit("periodic.fallback", source=text,
                            reason=reason)
        return pset

    # -- rule support ------------------------------------------------------------------

    #: Window quantum for scheduling evaluations: windows are rounded out
    #: to multiples of this many day ticks so that successive
    #: ``next_occurrence`` calls (DBCRON reschedules after every fire)
    #: share cached evaluations instead of re-evaluating a slid window.
    _SCHED_BLOCK = 512

    def _quantize(self, lo: int, hi: int) -> tuple[int, int]:
        block = self._SCHED_BLOCK
        q_lo = (lo // block) * block
        q_hi = ((hi + block - 1) // block) * block
        return (q_lo if q_lo != 0 else -1, q_hi if q_hi != 0 else 1)

    def _scheduling_result(self, name_or_expr: str,
                           window: tuple[int, int]):
        """Evaluate for the scheduler, memoised on the quantized window."""
        key = ("sched", name_or_expr, window, self.memo_token,
               self.version)
        cached = self.matcache.memo_get(key)
        if cached is not None:
            return cached
        if name_or_expr in self.table:
            result = self.evaluate(name_or_expr, window=window)
        else:
            result = self.eval_expression(name_or_expr, window=window)
        if isinstance(result, Calendar):
            result = result.flatten()
        self.matcache.memo_put(key, result)
        return result

    def next_occurrence(self, name_or_expr: str, after: "int | str",
                        horizon_days: int = 3700,
                        _trust_margin: int = 35) -> int | None:
        """Smallest calendar point strictly after day tick ``after``.

        ``after`` may also be a date string or CivilDate (normalised via
        the same coercion as ``today=``).  With periodic compilation on,
        a compiled expression answers in O(log offsets) by modular
        arithmetic — no window is ever generated.  Otherwise this
        evaluates over geometrically growing (quantized) windows; a
        candidate point is only trusted when it lies ``_trust_margin``
        days clear of the window's end (boundary units may be
        truncated).  Returns ``None`` when no occurrence exists within
        ``horizon_days``.
        """
        after = self._coerce_tick(after)
        if self.periodic:
            pset = self.periodic_set(name_or_expr)
            if pset is not None:
                candidate = pset.next_occurrence(after)
                return candidate if candidate is not None and \
                    candidate <= after + horizon_days else None
        horizon = 64
        while True:
            horizon = min(horizon, horizon_days)
            lo = after - 366 if after - 366 != 0 else -1
            hi = after + horizon if after + horizon != 0 else 1
            window = self._quantize(lo, hi)
            result = self._scheduling_result(name_or_expr, window)
            if isinstance(result, Calendar):
                candidate = next_point(result, after)
                if candidate is not None and (
                        candidate <= window[1] - _trust_margin
                        or horizon >= horizon_days):
                    return candidate if candidate <= after + horizon_days \
                        else None
            if horizon >= horizon_days:
                return None
            horizon *= 4

    # -- cache introspection -------------------------------------------------------

    def cache_stats(self) -> dict:
        """Snapshot of the shared materialisation-cache counters."""
        return self.matcache.stats()

    # -- presentation --------------------------------------------------------------

    def render(self, name: str) -> str:
        """Figure 1-style rendering of a catalog record."""
        return self.record(name).render()
