"""Regular time series bound to calendars, plus pattern selection."""

from repro.timeseries.patterns import (
    Pattern,
    decreases,
    increases,
    local_maxima,
    local_minima,
    match_pattern,
    runs_of,
)
from repro.timeseries.integration import (
    drop_series,
    register_series,
    registered_series,
)
from repro.timeseries.series import RegularTimeSeries

__all__ = [
    "RegularTimeSeries", "Pattern", "match_pattern",
    "increases", "decreases", "local_maxima", "local_minima", "runs_of",
    "register_series", "registered_series", "drop_series",
]
