"""Property-based tests: DBCRON fires exactly on calendar points.

Random explicit calendars and probe periods; the daemon must fire once
per calendar point after the start, never early, regardless of T.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import CalendarRegistry
from repro.core import CalendarSystem
from repro.db import Database
from repro.rules import DBCron, RuleManager, SimulatedClock

fire_days = st.lists(st.integers(min_value=10, max_value=400),
                     min_size=1, max_size=15, unique=True)
periods = st.integers(min_value=1, max_value=40)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fire_days, periods)
def test_fires_exactly_on_calendar_points(days, period):
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    registry.define("SCHEDULE", values=[(d, d) for d in sorted(days)],
                    granularity="DAYS")
    manager = RuleManager(db)
    clock = SimulatedClock(now=1)
    cron = DBCron(manager, clock, period=period)
    fired: list[tuple[int, int]] = []
    manager.define_temporal_rule(
        "r", "SCHEDULE",
        callback=lambda d, t: fired.append((t, clock.now)), after=1)
    cron.run_until(450)

    fire_ticks = [t for t, _ in fired]
    assert fire_ticks == sorted(days), \
        f"period={period}: fired {fire_ticks}, expected {sorted(days)}"
    # Never fires before its scheduled tick.
    assert all(tick <= now for tick, now in fired)
    # Fires within one probe period of the scheduled tick.
    assert all(now - tick <= period for tick, now in fired)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(fire_days, min_size=2, max_size=4), periods)
def test_multiple_rules_independent(schedules, period):
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    db = Database(calendars=registry)
    manager = RuleManager(db)
    clock = SimulatedClock(now=1)
    cron = DBCron(manager, clock, period=period)
    fired: dict[int, list[int]] = {}
    for i, days in enumerate(schedules):
        registry.define(f"S{i}", values=[(d, d) for d in sorted(days)],
                        granularity="DAYS")
        fired[i] = []
        manager.define_temporal_rule(
            f"rule{i}", f"S{i}",
            callback=(lambda idx: lambda d, t: fired[idx].append(t))(i),
            after=1)
    cron.run_until(450)
    for i, days in enumerate(schedules):
        assert fired[i] == sorted(days)


@settings(max_examples=40, deadline=None)
@given(fire_days, st.integers(min_value=1, max_value=420))
def test_next_occurrence_equals_brute_force(days, after):
    """The scheduler primitive agrees with a brute-force minimum."""
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=3)
    registry.define("SCHED2", values=[(d, d) for d in sorted(days)],
                    granularity="DAYS")
    expected = min((d for d in days if d > after), default=None)
    assert registry.next_occurrence("SCHED2", after,
                                    horizon_days=600) == expected
