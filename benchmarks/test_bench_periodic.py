"""B7: periodic-set compilation — O(1) membership and next_trigger.

Three report rows for BENCH_core.json:

* ``periodic/next_trigger_10k`` and ``periodic/next_trigger_100k`` —
  the DBCRON rescheduling workload: N rules drawing expressions from a
  shared pool, each asking for its next trigger point after a distinct
  tick.  With periodic compilation on, every call is modular arithmetic
  over the memoised compiled form; with it off, each call walks
  materialised schedule blocks.  The rows assert the compiled path is
  at least 5x faster.
* ``periodic/rrule_gap`` — the Tuesdays-1993 enumeration of
  ``test_bench_algebra.TestRruleBaseline`` timed against
  ``dateutil.rrule``.  Before compilation the pipeline was two orders
  of magnitude behind rrule on this shape; the row tracks the ratio and
  asserts it stays within 10x.
"""

from __future__ import annotations

import datetime

from statistics import median
from time import perf_counter

import pytest

from dateutil import rrule

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.core.matcache import MaterialisationCache

#: The shared expression pool: weekly shapes a scheduling workload
#: would register many rules over (all compile to period-7 sets).
RULE_POOL = (
    "[1]/DAYS:during:WEEKS",
    "[2]/DAYS:during:WEEKS",
    "[3]/DAYS:during:WEEKS",
    "[4]/DAYS:during:WEEKS",
    "[5]/DAYS:during:WEEKS",
    "[6]/DAYS:during:WEEKS",
    "flatten([1-5]/DAYS:during:WEEKS)",
    "Weekdays",
)


def _build_registry(periodic: bool) -> CalendarRegistry:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=30,
                                matcache=MaterialisationCache(),
                                periodic=periodic)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2016)
    return registry


def _next_trigger_sweep(registry: CalendarRegistry, n_rules: int) -> float:
    """Wall time of one ``next_occurrence`` per simulated rule.

    Each rule's ``after`` tick is distinct (spread over ten years) so
    the sweep measures the computation, not the rule-level result memo.
    """
    base = registry.system.day_of("Jan 4 1993")
    pool = RULE_POOL
    start = perf_counter()
    for i in range(n_rules):
        nxt = registry.next_occurrence(pool[i % len(pool)],
                                       base + (i % 3650))
        assert nxt is not None
    return perf_counter() - start


class TestNextTriggerScaling:
    @pytest.mark.parametrize("n_rules", [10_000, 100_000])
    def test_compiled_beats_materialised_5x(self, n_rules):
        from conftest import record_benchmark

        compiled = _build_registry(periodic=True)
        materialised = _build_registry(periodic=False)
        _next_trigger_sweep(compiled, 100)      # warm the compile memo
        _next_trigger_sweep(materialised, 100)  # warm the sched blocks
        t_compiled = _next_trigger_sweep(compiled, n_rules)
        t_materialised = _next_trigger_sweep(materialised, n_rules)
        speedup = t_materialised / t_compiled
        record_benchmark(f"periodic/next_trigger_{n_rules // 1000}k",
                         samples=[t_compiled],
                         materialised_s=t_materialised,
                         per_rule_us=t_compiled / n_rules * 1e6,
                         speedup=speedup)
        print(f"\n=== B7: next_trigger across {n_rules} rules")
        print(f"   compiled:     {t_compiled * 1e3:8.1f} ms "
              f"({t_compiled / n_rules * 1e6:.2f} us/rule)")
        print(f"   materialised: {t_materialised * 1e3:8.1f} ms  "
              f"({speedup:.1f}x slower)")
        assert speedup >= 5.0, (
            f"compiled next_trigger no longer >=5x the materialised "
            f"path at {n_rules} rules: {speedup:.2f}x")


class TestRruleGap:
    """Track the Tuesdays-1993 gap against dateutil.rrule."""

    EXPRESSION = "([2]/DAYS:during:WEEKS) & 1993/YEARS"

    def _ours(self, registry):
        cal = registry.eval_expression(self.EXPRESSION)
        return [registry.system.date_of(iv.lo) for iv in cal.elements]

    @staticmethod
    def _rrule():
        return list(rrule.rrule(
            rrule.WEEKLY, byweekday=rrule.TU,
            dtstart=datetime.datetime(1993, 1, 1),
            until=datetime.datetime(1993, 12, 31)))

    @staticmethod
    def _median_time(fn, repeats: int = 9) -> float:
        times = []
        for _ in range(repeats):
            start = perf_counter()
            fn()
            times.append(perf_counter() - start)
        return median(times)

    def test_gap_within_10x(self):
        from conftest import record_benchmark

        registry = _build_registry(periodic=True)
        ours = self._ours(registry)
        oracle = self._rrule()
        assert [(d.year, d.month, d.day) for d in ours] == \
            [(d.year, d.month, d.day) for d in oracle]
        for _ in range(3):  # warm the compile memo and rrule imports
            self._ours(registry)
            self._rrule()
        t_ours = self._median_time(lambda: self._ours(registry))
        t_rrule = self._median_time(self._rrule)
        gap = t_ours / t_rrule
        record_benchmark("periodic/rrule_gap",
                         samples=[t_ours],
                         rrule_s=t_rrule,
                         rrule_gap=gap)
        print(f"\n=== B7: Tuesdays-1993 vs dateutil.rrule")
        print(f"   ours:  {t_ours * 1e6:8.0f} us")
        print(f"   rrule: {t_rrule * 1e6:8.0f} us  (gap {gap:.2f}x)")
        assert gap <= 10.0, (
            f"Tuesdays-1993 enumeration fell behind rrule by "
            f"{gap:.1f}x (budget: 10x)")
