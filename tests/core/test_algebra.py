"""Unit tests for foreach, selection, label selection and caloperate."""

import pytest

from repro.core import (
    Calendar,
    CalendarError,
    Interval,
    LAST,
    OperatorError,
    SelectionError,
    SelectionPredicate,
    caloperate,
    foreach,
    label_select,
    select,
)


def cal(*pairs, labels=None):
    return Calendar.from_intervals(pairs, labels=labels)


WEEKS93 = cal((-4, 3), (4, 10), (11, 17), (18, 24), (25, 31), (32, 38))
JAN93 = Interval(1, 31)


class TestForeachWithInterval:
    def test_strict_during(self):
        result = foreach("during", WEEKS93, JAN93)
        assert result.to_pairs() == ((4, 10), (11, 17), (18, 24), (25, 31))

    def test_strict_overlaps_clips(self):
        result = foreach("overlaps", WEEKS93, JAN93)
        assert result.to_pairs() == (
            (1, 3), (4, 10), (11, 17), (18, 24), (25, 31))

    def test_relaxed_overlaps_keeps_whole(self):
        result = foreach("overlaps", WEEKS93, JAN93, strict=False)
        assert result.to_pairs() == (
            (-4, 3), (4, 10), (11, 17), (18, 24), (25, 31))

    def test_strict_and_relaxed_during_agree(self):
        strict = foreach("during", WEEKS93, JAN93, strict=True)
        relaxed = foreach("during", WEEKS93, JAN93, strict=False)
        assert strict.to_pairs() == relaxed.to_pairs()

    def test_before_keeps_unclipped(self):
        days = cal((1, 1), (2, 2), (3, 3), (9, 9))
        result = foreach("<", days, Interval(3, 5))
        assert result.to_pairs() == ((1, 1), (2, 2), (3, 3))

    def test_meets(self):
        result = foreach("meets", cal((1, 5), (3, 9)), Interval(5, 12))
        assert result.to_pairs() == ((1, 5),)

    def test_empty_result(self):
        result = foreach("during", cal((40, 45)), JAN93)
        assert result.is_empty()

    def test_result_order1(self):
        assert foreach("during", WEEKS93, JAN93).order == 1


class TestForeachWithCalendar:
    MONTHS = cal((1, 31), (32, 59), (60, 90))

    def test_grouping_gives_order2(self):
        result = foreach("during", WEEKS93, self.MONTHS)
        assert result.order == 2
        assert result.to_pairs()[0] == ((4, 10), (11, 17), (18, 24),
                                        (25, 31))

    def test_empty_groups_dropped(self):
        months = cal((1, 31), (400, 430))
        result = foreach("during", WEEKS93, months)
        assert len(result) == 1  # the out-of-range month vanishes

    def test_labels_follow_groups(self):
        months = Calendar.from_intervals([(1, 31), (400, 430)],
                                         labels=["jan", "far"])
        result = foreach("during", WEEKS93, months)
        assert result.labels == ("jan",)

    def test_filtering_intersects_stays_order1(self):
        ldom = cal((31, 31), (59, 59), (90, 90))
        holidays = cal((31, 31), (90, 90), (200, 200))
        result = foreach("intersects", ldom, holidays)
        assert result.order == 1
        assert result.to_pairs() == ((31, 31), (90, 90))

    def test_filtering_relaxed_keeps_whole_elements(self):
        weeks = cal((1, 7), (8, 14))
        holidays = cal((3, 3))
        strict = foreach("intersects", weeks, holidays, strict=True)
        relaxed = foreach("intersects", weeks, holidays, strict=False)
        assert strict.to_pairs() == ((3, 3),)
        assert relaxed.to_pairs() == ((1, 7),)

    def test_order2_right_operand_recurses(self):
        months_by_quarter = Calendar.from_calendars(
            [cal((1, 31), (32, 59)), cal((60, 90))])
        result = foreach("during", WEEKS93, months_by_quarter)
        assert result.order == 3

    def test_left_must_be_order1(self):
        nested = Calendar.from_calendars([WEEKS93])
        with pytest.raises(OperatorError):
            foreach("during", nested, JAN93)

    def test_unknown_op(self):
        with pytest.raises(OperatorError):
            foreach("bogus", WEEKS93, JAN93)

    def test_bad_right_operand(self):
        with pytest.raises(OperatorError):
            foreach("during", WEEKS93, 42)


class TestSelectionPredicate:
    def test_positions_simple(self):
        assert SelectionPredicate.of(3).positions(5) == [2]

    def test_last(self):
        assert SelectionPredicate.of(LAST).positions(5) == [4]
        assert SelectionPredicate.of(LAST).positions(0) == []

    def test_negative(self):
        assert SelectionPredicate.of(-2).positions(5) == [3]

    def test_range(self):
        assert SelectionPredicate.of((2, 4)).positions(5) == [1, 2, 3]

    def test_list(self):
        assert SelectionPredicate.of(1, 3).positions(5) == [0, 2]

    def test_out_of_range_skipped(self):
        assert SelectionPredicate.of(9).positions(5) == []
        assert SelectionPredicate.of(-9).positions(5) == []

    def test_duplicates_removed_in_order(self):
        assert SelectionPredicate.of(3, 1, 3).positions(5) == [0, 2]

    def test_singleton_detection(self):
        assert SelectionPredicate.of(3).is_singleton()
        assert SelectionPredicate.of(LAST).is_singleton()
        assert not SelectionPredicate.of(1, 2).is_singleton()
        assert not SelectionPredicate.of((1, 3)).is_singleton()

    def test_zero_index_rejected(self):
        with pytest.raises(SelectionError):
            SelectionPredicate.of(0)

    def test_empty_rejected(self):
        with pytest.raises(SelectionError):
            SelectionPredicate(())

    def test_bad_range_rejected(self):
        with pytest.raises(SelectionError):
            SelectionPredicate.of((4, 2))

    def test_str(self):
        assert str(SelectionPredicate.of(3)) == "[3]"
        assert str(SelectionPredicate.of(LAST)) == "[n]"
        assert str(SelectionPredicate.of((2, 4), -1)) == "[2-4;-1]"


class TestSelect:
    def test_order1(self):
        third = select(WEEKS93, SelectionPredicate.of(3))
        assert third.to_pairs() == ((11, 17),)

    def test_order2_singleton_reduces_order(self):
        months = cal((1, 31), (32, 59), (60, 90))
        by_month = foreach("overlaps", WEEKS93, months)
        third = select(by_month, SelectionPredicate.of(3))
        assert third.order == 1
        assert third.to_pairs()[0] == (11, 17)

    def test_order2_multi_keeps_structure(self):
        months = cal((1, 31), (32, 59))
        by_month = foreach("overlaps", WEEKS93, months)
        first_two = select(by_month, SelectionPredicate.of(1, 2))
        assert first_two.order == 2
        # January overlaps five weeks (two selected); February overlaps
        # only (32,38) within the fixture, so its group keeps one element.
        assert [len(sub) for sub in first_two] == [2, 1]

    def test_short_groups_skipped(self):
        groups = Calendar.from_calendars([cal((1, 1)), cal((2, 2), (3, 3))])
        third = select(groups, SelectionPredicate.of(2))
        assert third.to_pairs() == ((3, 3),)

    def test_labels_preserved_order1(self):
        years = cal((1, 365), (366, 731), labels=[1987, 1988])
        picked = select(years, SelectionPredicate.of(2))
        assert picked.labels == (1988,)


class TestLabelSelect:
    def test_basic(self):
        years = cal((1, 365), (366, 731), labels=[1987, 1988])
        assert label_select(years, 1988).to_pairs() == ((366, 731),)

    def test_missing_label_gives_empty(self):
        years = cal((1, 365), labels=[1987])
        assert label_select(years, 1999).is_empty()

    def test_unlabelled_rejected(self):
        with pytest.raises(SelectionError):
            label_select(cal((1, 2)), 1987)

    def test_order2_rejected(self):
        nested = Calendar.from_calendars([cal((1, 2))])
        with pytest.raises(SelectionError):
            label_select(nested, 1987)


class TestCaloperate:
    DAYS = Calendar.from_intervals([(d, d) for d in range(1, 22)])

    def test_weeks_from_days(self):
        weeks = caloperate(self.DAYS, (7,))
        assert weeks.to_pairs() == ((1, 7), (8, 14), (15, 21))

    def test_partial_tail_kept(self):
        days = Calendar.from_intervals([(d, d) for d in range(1, 11)])
        groups = caloperate(days, (7,))
        assert groups.to_pairs() == ((1, 7), (8, 10))

    def test_circular_counts(self):
        days = Calendar.from_intervals([(d, d) for d in range(1, 11)])
        groups = caloperate(days, (2, 3))
        assert groups.to_pairs() == ((1, 2), (3, 5), (6, 7), (8, 10))

    def test_end_clips(self):
        groups = caloperate(self.DAYS, (7,), end=10)
        assert groups.to_pairs() == ((1, 7), (8, 10))

    def test_end_before_group_stops(self):
        groups = caloperate(self.DAYS, (7,), end=7)
        assert groups.to_pairs() == ((1, 7),)

    def test_quarters_from_months(self):
        months = cal((1, 31), (32, 59), (60, 90), (91, 120), (121, 151),
                     (152, 181))
        quarters = caloperate(months, (3,))
        assert quarters.to_pairs() == ((1, 90), (91, 181))

    def test_rejects_order2(self):
        nested = Calendar.from_calendars([cal((1, 2))])
        with pytest.raises(CalendarError):
            caloperate(nested, (7,))

    def test_rejects_bad_counts(self):
        with pytest.raises(CalendarError):
            caloperate(self.DAYS, ())
        with pytest.raises(CalendarError):
            caloperate(self.DAYS, (0,))
        with pytest.raises(CalendarError):
            caloperate(self.DAYS, (-3,))
