"""Basic calendars and the ``generate`` function of section 3.2.

The paper fixes the basic calendars ``SECONDS … CENTURY`` and materialises
them with ``generate(cal1, cal2, [Ts, Te])``: the intervals of ``cal1``
expressed in units of ``cal2`` over the window ``[Ts, Te]``, relative to a
*system start date* (Jan 1, 1987 in the paper's example, configurable
here via :class:`CalendarSystem`).

Two materialisation modes are provided:

* ``"clip"`` — the paper's ``generate``: the first/last intervals are
  truncated at the window boundary (the example's final ``(1827, 1829)``
  for Jan 1–3, 1992).
* ``"cover"`` — whole units overlapping the window are kept unclipped;
  this is what the algebra examples use (the WEEKS calendar of 1993 starts
  at ``(-4, 3)``, a whole week reaching back into 1992).

Month- and year-granularity tick axes require the epoch to fall on the
first day of a month/year respectively; :class:`CalendarSystem` validates
this lazily when such an axis is first used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core import columnar
from repro.core.calendar import Calendar
from repro.core.columnar import IntervalColumns
from repro.core.chrono import (
    CivilDate,
    Epoch,
    days_in_month,
    parse_date,
)
from repro.core.errors import ChronologyError, GranularityError
from repro.core.granularity import Granularity, exact_ratio
from repro.core.interval import Interval

__all__ = ["CalendarSystem", "BASIC_CALENDARS"]

BASIC_CALENDARS = tuple(g.name for g in Granularity)

_SUBDAY = (Granularity.SECONDS, Granularity.MINUTES, Granularity.HOURS)


def _scale_lo(t: int, k: int) -> int:
    """First fine tick of coarse tick ``t`` with ``k`` fine units per coarse."""
    return (t - 1) * k + 1 if t > 0 else t * k


def _scale_hi(t: int, k: int) -> int:
    """Last fine tick of coarse tick ``t``."""
    return t * k if t > 0 else (t + 1) * k - 1


def _unscale(tick: int, k: int) -> int:
    """Coarse tick containing fine tick ``tick``."""
    if tick > 0:
        return (tick - 1) // k + 1
    return -((-tick - 1) // k + 1)


@dataclass
class CalendarSystem:
    """A time domain anchored at a system start date.

    All axis numbers produced by this object count units from the epoch
    (unit tick 1 begins at the epoch instant; there is no tick 0).
    """

    epoch: Epoch = field(
        default_factory=lambda: Epoch.of(CivilDate(1987, 1, 1)))

    @classmethod
    def starting(cls, date: "CivilDate | str") -> "CalendarSystem":
        return cls(Epoch.of(date))

    # -- window coercion ------------------------------------------------------

    def day_of(self, date: "CivilDate | str") -> int:
        """Axis day number of a civil date."""
        return self.epoch.day_number(date)

    def date_of(self, day: int) -> CivilDate:
        """Civil date of an axis day number."""
        return self.epoch.date_of(day)

    def day_window(self, start: "CivilDate | str | int",
                   end: "CivilDate | str | int") -> tuple[int, int]:
        """Coerce a ``[Ts, Te]`` pair to inclusive axis day numbers."""
        lo = start if isinstance(start, int) else self.day_of(start)
        hi = end if isinstance(end, int) else self.day_of(end)
        if lo > hi:
            raise ChronologyError(f"window start {lo} after end {hi}")
        return lo, hi

    # -- month / year tick axes ----------------------------------------------

    def _require_month_aligned(self) -> None:
        if self.epoch.date.day != 1:
            raise GranularityError(
                "month-granularity ticks require the system start date to be "
                f"the first of a month (epoch is {self.epoch.date})")

    def _require_year_aligned(self) -> None:
        if self.epoch.date.month != 1 or self.epoch.date.day != 1:
            raise GranularityError(
                "year-granularity ticks require the system start date to be "
                f"January 1 (epoch is {self.epoch.date})")

    def month_tick(self, year: int, month: int) -> int:
        """Month-axis tick of civil month ``year-month``."""
        self._require_month_aligned()
        e = self.epoch.date
        diff = (year - e.year) * 12 + (month - e.month)
        return diff + 1 if diff >= 0 else diff

    def month_of_tick(self, tick: int) -> tuple[int, int]:
        """(year, month) of a month-axis tick."""
        self._require_month_aligned()
        if tick == 0:
            raise ChronologyError("month tick 0 does not exist")
        e = self.epoch.date
        diff = tick - 1 if tick > 0 else tick
        total = (e.year * 12 + (e.month - 1)) + diff
        return total // 12, total % 12 + 1

    def year_tick(self, year: int) -> int:
        """Year-axis tick of a civil year."""
        self._require_year_aligned()
        diff = year - self.epoch.date.year
        return diff + 1 if diff >= 0 else diff

    def year_of_tick(self, tick: int) -> int:
        """Civil year of a year-axis tick."""
        self._require_year_aligned()
        if tick == 0:
            raise ChronologyError("year tick 0 does not exist")
        diff = tick - 1 if tick > 0 else tick
        return self.epoch.date.year + diff

    # -- day-level decomposition of coarse calendars ----------------------------

    def _iter_units_days(self, gran: Granularity,
                         dlo: int, dhi: int) -> Iterator[tuple[int, int, object]]:
        """Yield ``(day_lo, day_hi, label)`` for whole ``gran`` units that
        overlap the day window ``[dlo, dhi]``, in order."""
        epoch = self.epoch
        if gran == Granularity.DAYS:
            for d in epoch.iter_days(dlo, dhi):
                yield d, d, epoch.date_of(d).day
        elif gran == Granularity.WEEKS:
            w = epoch.weekday_of(dlo)
            start = epoch.add_days(dlo, -(w - 1))
            while start <= dhi:
                end = epoch.add_days(start, 6)
                yield start, end, None
                start = epoch.add_days(end, 1)
        elif gran == Granularity.MONTHS:
            date = epoch.date_of(dlo)
            year, month = date.year, date.month
            while True:
                lo, hi = epoch.days_of_month(year, month)
                if lo > dhi:
                    break
                yield lo, hi, month
                month += 1
                if month == 13:
                    month, year = 1, year + 1
        elif gran == Granularity.YEARS:
            year = epoch.date_of(dlo).year
            while True:
                lo, hi = epoch.days_of_year(year)
                if lo > dhi:
                    break
                yield lo, hi, year
                year += 1
        elif gran == Granularity.DECADES:
            year = epoch.date_of(dlo).year // 10 * 10
            while True:
                lo = epoch.day_number(CivilDate(year, 1, 1))
                if lo > dhi:
                    break
                hi = epoch.day_number(CivilDate(year + 9, 12, 31))
                yield lo, hi, year
                year += 10
        elif gran == Granularity.CENTURY:
            year = epoch.date_of(dlo).year // 100 * 100
            while True:
                lo = epoch.day_number(CivilDate(year, 1, 1))
                if lo > dhi:
                    break
                hi = epoch.day_number(CivilDate(year + 99, 12, 31))
                yield lo, hi, year
                year += 100
        else:
            raise GranularityError(
                f"{gran} has no day-level decomposition")

    # -- generate ---------------------------------------------------------------

    @staticmethod
    def _tiling_calendar(los: list, his: list, cal_g: Granularity,
                         labels: "list | None" = None) -> Calendar:
        """Order-1 calendar over a generated tiling.

        Every generation path produces units in axis order without
        overlap, so the endpoint lanes go straight into column buffers
        with the sorted/disjoint flags pre-set (no ``Interval`` objects
        at all); with the columnar representation disabled (or endpoints
        beyond int64) this falls back to the object build.
        """
        if columnar.enabled():
            cols = IntervalColumns.from_lists(
                los, his, lo_sorted=True, hi_sorted=True, disjoint=True)
            if cols is not None:
                return Calendar._from_columns(
                    cols, cal_g,
                    tuple(labels) if labels is not None else None)
        cal = Calendar.from_intervals(zip(los, his), cal_g)
        if labels is not None:
            cal = cal.with_labels(labels)
        return cal

    def generate(self, cal: "str | Granularity", unit: "str | Granularity",
                 window: tuple, mode: str = "clip") -> Calendar:
        """The paper's ``generate(cal1, cal2, [Ts, Te])``.

        ``cal`` is the calendar to materialise and ``unit`` the granularity
        its interval endpoints are expressed in; ``unit`` must not be coarser
        than ``cal``.  ``window`` is a ``(start, end)`` pair of civil dates,
        date strings, or axis ticks *of the unit granularity*.

        ``mode="clip"`` truncates boundary units (the paper's generate);
        ``mode="cover"`` keeps whole overlapping units.
        """
        cal_g = Granularity.parse(cal)
        unit_g = Granularity.parse(unit)
        if unit_g > cal_g:
            raise GranularityError(
                f"cannot express {cal_g} in coarser unit {unit_g}")
        if mode not in ("clip", "cover"):
            raise GranularityError(f"unknown generate mode {mode!r}")
        start, end = window
        if unit_g in _SUBDAY or unit_g == Granularity.DAYS:
            return self._generate_day_based(cal_g, unit_g, start, end, mode)
        if unit_g == Granularity.WEEKS:
            if cal_g != Granularity.WEEKS:
                raise GranularityError(
                    "weeks do not evenly tile coarser calendars; "
                    "express the calendar in DAYS instead")
            return self._generate_day_based(cal_g, unit_g, start, end, mode)
        return self._generate_month_year_based(cal_g, unit_g, start, end, mode)

    # The day-based path covers unit granularities SECONDS..DAYS (and the
    # WEEKS-in-WEEKS identity): decompose the coarse calendar into civil
    # days, then rescale day numbers to the requested unit.
    def _generate_day_based(self, cal_g: Granularity, unit_g: Granularity,
                            start, end, mode: str) -> Calendar:
        if cal_g in _SUBDAY:
            return self._generate_subday_calendar(cal_g, unit_g, start, end,
                                                  mode)
        los: list[int] = []
        his: list[int] = []
        labels: list[object] = []
        has_labels = unit_g != Granularity.WEEKS and cal_g in (
            Granularity.DAYS, Granularity.MONTHS, Granularity.YEARS,
            Granularity.DECADES, Granularity.CENTURY)
        for lo, hi, label in self._iter_day_based_raw(cal_g, unit_g, start,
                                                      end, mode):
            los.append(lo)
            his.append(hi)
            labels.append(label)
        return self._tiling_calendar(los, his, cal_g,
                                     labels if has_labels else None)

    def _iter_day_based(self, cal_g: Granularity, unit_g: Granularity,
                        start, end, mode: str
                        ) -> Iterator[tuple[Interval, object]]:
        """Lazy ``(interval, label)`` stream behind :meth:`_generate_day_based`.

        Units are produced one at a time in axis order; nothing beyond the
        current unit is held in memory, which is what lets streaming plan
        pipelines consume basic calendars without materialising them.
        """
        _of = Interval._of
        for lo, hi, label in self._iter_day_based_raw(cal_g, unit_g,
                                                      start, end, mode):
            yield _of(lo, hi), label

    def _iter_day_based_raw(self, cal_g: Granularity, unit_g: Granularity,
                            start, end, mode: str
                            ) -> Iterator[tuple[int, int, object]]:
        """``(lo, hi, label)`` integer triples behind :meth:`_iter_day_based`
        — the object-free form the columnar builders consume."""
        if unit_g in _SUBDAY:
            k = exact_ratio(unit_g, Granularity.DAYS)
            if isinstance(start, int) and isinstance(end, int):
                ws, we = start, end
                dlo, dhi = _unscale(ws, k), _unscale(we, k)
            else:
                dlo, dhi = self.day_window(start, end)
                ws, we = _scale_lo(dlo, k), _scale_hi(dhi, k)
        elif unit_g == Granularity.WEEKS:
            # identity materialisation of WEEKS in week ticks
            if not (isinstance(start, int) and isinstance(end, int)):
                dlo, dhi = self.day_window(start, end)
                ws = _unscale(dlo, 7)
                we = _unscale(dhi, 7)
            else:
                ws, we = start, end
            for t in range(ws, we + 1):
                if t != 0:
                    yield t, t, None
            return
        else:
            if isinstance(start, int) and isinstance(end, int):
                ws, we = start, end
            else:
                ws, we = self.day_window(start, end)
            dlo, dhi = ws, we
            k = 1
        for day_lo, day_hi, label in self._iter_units_days(cal_g, dlo, dhi):
            lo = _scale_lo(day_lo, k) if k != 1 else day_lo
            hi = _scale_hi(day_hi, k) if k != 1 else day_hi
            if mode == "clip":
                if lo < ws:
                    lo = ws
                if hi > we:
                    hi = we
                if lo > hi:
                    continue
            elif lo > we or hi < ws:
                continue
            yield lo, hi, label

    def iter_generate(self, cal: "str | Granularity",
                      unit: "str | Granularity", window: tuple,
                      mode: str = "clip"
                      ) -> Iterator[tuple[Interval, object]]:
        """Bounded-memory iterator form of :meth:`generate`.

        Yields ``(interval, label)`` pairs in axis order, producing one
        unit at a time instead of materialising the whole window.  The
        pairs are exactly the elements (and labels, ``None`` where
        :meth:`generate` attaches none) that ``generate`` would return
        for the same arguments.  Day-based unit granularities stream
        natively; month/year-based unit axes fall back to eager
        generation and yield from the result.
        """
        cal_g = Granularity.parse(cal)
        unit_g = Granularity.parse(unit)
        if unit_g > cal_g:
            raise GranularityError(
                f"cannot express {cal_g} in coarser unit {unit_g}")
        if mode not in ("clip", "cover"):
            raise GranularityError(f"unknown generate mode {mode!r}")
        start, end = window
        if (unit_g in _SUBDAY or unit_g == Granularity.DAYS
                or unit_g == Granularity.WEEKS) and cal_g not in _SUBDAY:
            if unit_g == Granularity.WEEKS and cal_g != Granularity.WEEKS:
                raise GranularityError(
                    "weeks do not evenly tile coarser calendars; "
                    "express the calendar in DAYS instead")
            yield from self._iter_day_based(cal_g, unit_g, start, end, mode)
            return
        eager = self.generate(cal_g, unit_g, (start, end), mode)
        for i, iv in enumerate(eager):
            yield iv, eager.label_of(i)

    def _generate_subday_calendar(self, cal_g: Granularity,
                                  unit_g: Granularity, start, end,
                                  mode: str) -> Calendar:
        """A sub-day calendar (SECONDS/MINUTES/HOURS) in a sub-day unit.

        Both axes are regular, so this is pure tick arithmetic: one cal
        unit spans ``r`` unit ticks (``r`` = exact units per cal unit).
        """
        r = exact_ratio(unit_g, cal_g)
        if isinstance(start, int) and isinstance(end, int):
            ws, we = start, end
        else:
            k = exact_ratio(unit_g, Granularity.DAYS)
            dlo, dhi = self.day_window(start, end)
            ws, we = _scale_lo(dlo, k), _scale_hi(dhi, k)
        c_lo, c_hi = _unscale(ws, r), _unscale(we, r)
        los: list[int] = []
        his: list[int] = []
        for c in range(c_lo, c_hi + 1):
            if c == 0:
                continue
            lo = _scale_lo(c, r)
            hi = _scale_hi(c, r)
            if mode == "clip":
                if lo < ws:
                    lo = ws
                if hi > we:
                    hi = we
                if lo > hi:
                    continue
            elif lo > we or hi < ws:
                continue
            los.append(lo)
            his.append(hi)
        return self._tiling_calendar(los, his, cal_g)

    # The month/year-based path covers unit granularities MONTHS..CENTURY.
    def _generate_month_year_based(self, cal_g: Granularity,
                                   unit_g: Granularity,
                                   start, end, mode: str) -> Calendar:
        if unit_g == Granularity.MONTHS:
            self._require_month_aligned()
            to_tick = lambda y, m: self.month_tick(y, m)  # noqa: E731
            if isinstance(start, int) and isinstance(end, int):
                ws, we = start, end
                sy, sm = self.month_of_tick(ws)
                ey, em = self.month_of_tick(we)
            else:
                sd = start if isinstance(start, CivilDate) else parse_date(start)
                ed = end if isinstance(end, CivilDate) else parse_date(end)
                sy, sm, ey, em = sd.year, sd.month, ed.year, ed.month
                ws, we = to_tick(sy, sm), to_tick(ey, em)
        else:
            self._require_year_aligned()
            if isinstance(start, int) and isinstance(end, int):
                ws, we = start, end
                sy = self.year_of_tick(ws)
                ey = self.year_of_tick(we)
            else:
                sd = start if isinstance(start, CivilDate) else parse_date(start)
                ed = end if isinstance(end, CivilDate) else parse_date(end)
                sy, ey = sd.year, ed.year
                if unit_g == Granularity.YEARS:
                    ws, we = self.year_tick(sy), self.year_tick(ey)
                elif unit_g == Granularity.DECADES:
                    ws, we = (self._decade_tick(sy), self._decade_tick(ey))
                else:
                    raise GranularityError(
                        f"unsupported unit granularity {unit_g}")
        los: list[int] = []
        his: list[int] = []
        labels: list[object] = []
        if unit_g == Granularity.MONTHS:
            units = self._iter_units_months(cal_g, sy, sm, ey, em)
        else:
            units = self._iter_units_years(cal_g, unit_g, sy, ey)
        for lo, hi, label in units:
            if mode == "clip":
                if lo < ws:
                    lo = ws
                if hi > we:
                    hi = we
                if lo > hi:
                    continue
            elif lo > we or hi < ws:
                continue
            los.append(lo)
            his.append(hi)
            labels.append(label)
        return self._tiling_calendar(los, his, cal_g, labels)

    def _decade_tick(self, year: int) -> int:
        self._require_year_aligned()
        diff = (year - self.epoch.date.year) // 10
        return diff + 1 if diff >= 0 else diff

    def _iter_units_months(self, cal_g: Granularity, sy: int, sm: int,
                           ey: int, em: int):
        if cal_g == Granularity.MONTHS:
            y, m = sy, sm
            while (y, m) <= (ey, em):
                t = self.month_tick(y, m)
                yield t, t, m
                m += 1
                if m == 13:
                    m, y = 1, y + 1
        elif cal_g == Granularity.YEARS:
            for year in range(sy, ey + 1):
                yield (self.month_tick(year, 1),
                       self.month_tick(year, 12), year)
        elif cal_g == Granularity.DECADES:
            for year in range(sy // 10 * 10, ey + 1, 10):
                yield (self.month_tick(year, 1),
                       self.month_tick(year + 9, 12), year)
        elif cal_g == Granularity.CENTURY:
            for year in range(sy // 100 * 100, ey + 1, 100):
                yield (self.month_tick(year, 1),
                       self.month_tick(year + 99, 12), year)
        else:
            raise GranularityError(
                f"{cal_g} cannot be expressed in months")

    def _iter_units_years(self, cal_g: Granularity, unit_g: Granularity,
                          sy: int, ey: int):
        if unit_g == Granularity.YEARS:
            tick = self.year_tick
        elif unit_g == Granularity.DECADES:
            tick = self._decade_tick
        else:
            raise GranularityError(f"unsupported unit granularity {unit_g}")
        if cal_g == Granularity.YEARS:
            for year in range(sy, ey + 1):
                yield tick(year), tick(year), year
        elif cal_g == Granularity.DECADES:
            step_lo = 0 if unit_g == Granularity.DECADES else 9
            for year in range(sy // 10 * 10, ey + 1, 10):
                yield tick(year), tick(year + step_lo), year
        elif cal_g == Granularity.CENTURY:
            last_offset = 90 if unit_g == Granularity.DECADES else 99
            for year in range(sy // 100 * 100, ey + 1, 100):
                yield tick(year), tick(year + last_offset), year
        else:
            raise GranularityError(
                f"{cal_g} cannot be expressed in {unit_g}")

    # -- convenience day-level materialisation ----------------------------------

    def days(self, start, end, mode: str = "clip") -> Calendar:
        """The DAYS calendar over a window (day ticks)."""
        return self.generate(Granularity.DAYS, Granularity.DAYS,
                             (start, end), mode)

    def weeks(self, start, end, mode: str = "cover") -> Calendar:
        """The WEEKS calendar over a window (whole weeks by default)."""
        return self.generate(Granularity.WEEKS, Granularity.DAYS,
                             (start, end), mode)

    def months(self, start, end, mode: str = "clip") -> Calendar:
        """The MONTHS calendar over a window, in day ticks."""
        return self.generate(Granularity.MONTHS, Granularity.DAYS,
                             (start, end), mode)

    def years(self, start, end, mode: str = "clip") -> Calendar:
        """The YEARS calendar over a window, in day ticks."""
        return self.generate(Granularity.YEARS, Granularity.DAYS,
                             (start, end), mode)

    def year_days(self, year: int, mode: str = "clip") -> Calendar:
        """All days of ``year`` as an order-1 DAYS calendar."""
        lo, hi = self.epoch.days_of_year(year)
        return self.days(lo, hi, mode)
