"""Unit tests for the concurrent batch engine: ``Session.eval_many``.

Covers what the Hypothesis parity property does not pin down directly:
result ordering and object sharing for duplicate inputs, error
propagation order, the worker knobs (``max_workers``, ``REPRO_WORKERS``,
``workers=``), and the cross-thread trace rollup under one
``session.eval_many`` root span.
"""

import pytest

from repro.core import Calendar
from repro.errors import ReproError
from repro.obs.instrument import Instrumentation
from repro.runtime import WorkerPool, default_workers
from repro.session import Session

WINDOW = ("Jan 1 1993", "Dec 31 1993")

MIXED = [
    "[1]/MONTHS:during:1993/YEARS",
    "HOLIDAYS",
    "AM_BUS_DAYS - HOLIDAYS",
    "x = (DAYS:during:[1]/MONTHS:during:1993/YEARS); return (x)",
]


@pytest.fixture()
def session():
    return Session("Jan 1 1987", holiday_years=(1993, 1994),
                   instrumentation=Instrumentation())


class TestOrderingAndDedup:
    def test_results_in_input_order(self, session):
        expected = [session.eval(t, window=WINDOW) for t in MIXED]
        got = session.eval_many(MIXED, window=WINDOW, max_workers=4)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g.to_pairs() == e.to_pairs()

    def test_duplicates_share_one_result_object(self, session):
        batch = ["HOLIDAYS", "[1]/MONTHS:during:1993/YEARS", "HOLIDAYS",
                 "HOLIDAYS"]
        got = session.eval_many(batch, window=WINDOW, max_workers=2)
        assert got[0] is got[2]
        assert got[0] is got[3]
        assert got[1] is not got[0]

    def test_empty_batch(self, session):
        assert session.eval_many([], window=WINDOW) == []

    def test_accepts_any_iterable(self, session):
        got = session.eval_many(iter(["HOLIDAYS"]), window=WINDOW)
        assert isinstance(got[0], Calendar)


class TestErrorPropagation:
    def test_unknown_name_raises(self, session):
        with pytest.raises(ReproError):
            session.eval_many(["NO_SUCH_CAL_XYZ"], window=WINDOW)

    def test_first_error_by_input_order(self, session):
        batch = ["HOLIDAYS", "UNDEFINED_B + DAYS", "UNDEFINED_A",
                 "HOLIDAYS"]
        with pytest.raises(ReproError) as excinfo:
            session.eval_many(batch, window=WINDOW, max_workers=4)
        assert "UNDEFINED_B" in str(excinfo.value)

    def test_good_scripts_unaffected_by_bad_sibling(self, session):
        # The same session still answers after a failed batch.
        with pytest.raises(ReproError):
            session.eval_many(["HOLIDAYS", "NO_SUCH_CAL_XYZ"],
                              window=WINDOW)
        got = session.eval_many(["HOLIDAYS"], window=WINDOW)
        assert isinstance(got[0], Calendar)


class TestWorkerKnobs:
    def test_session_workers_argument_sets_pool(self):
        s = Session("Jan 1 1987", holiday_years=(1993, 1994),
                    workers=3, instrumentation=Instrumentation())
        assert s.pool.size == 3

    def test_repro_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_workers() == 5
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_transient_pool_for_mismatched_max_workers(self, session):
        # max_workers differing from the session pool must not resize it.
        before = session.pool.size
        session.eval_many(MIXED, window=WINDOW, max_workers=before + 3)
        assert session.pool.size == before

    def test_pool_map_preserves_order(self):
        pool = WorkerPool(4)
        try:
            assert pool.map(lambda x: x * x, range(10)) == \
                [x * x for x in range(10)]
        finally:
            pool.close()


class TestTraceRollup:
    def test_one_root_with_adopted_job_spans(self, session):
        session.instrumentation.tracing = True
        session.eval_many(MIXED, window=WINDOW, max_workers=4)
        roots = [s for s in session.recent_traces()
                 if s.name == "session.eval_many"]
        assert len(roots) == 1
        root = roots[0]
        assert root.meta["scripts"] == len(MIXED)
        assert root.meta["unique"] == len(MIXED)
        names = [c.name for c in root.children]
        assert names.count("eval_many.plan") == 1
        assert names.count("eval_many.hoist") == 1
        jobs = [c for c in root.children if c.name == "session.eval_job"]
        assert len(jobs) == len(MIXED)
        assert {j.meta["script"] for j in jobs} == set(MIXED)

    def test_hoist_span_reports_materialisations(self, session):
        session.instrumentation.tracing = True
        session.eval_many(MIXED, window=WINDOW, max_workers=1)
        root = [s for s in session.recent_traces()
                if s.name == "session.eval_many"][0]
        hoist = root.find("eval_many.hoist")[0]
        assert hoist.meta["materialised"] >= 1

    def test_tracing_off_is_fine(self, session):
        session.instrumentation.tracing = False
        got = session.eval_many(MIXED, window=WINDOW, max_workers=4)
        assert len(got) == len(MIXED)
        assert session.recent_traces() == []
