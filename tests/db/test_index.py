"""Unit tests for ordered and interval indexes."""

from repro.core import Calendar
from repro.db import IntervalIndex, OrderedIndex


def row(tid, value):
    return {"_tid": tid, "day": value}


class TestOrderedIndex:
    def test_insert_lookup_eq(self):
        index = OrderedIndex("day")
        for tid, value in [(1, 5), (2, 3), (3, 5)]:
            index.insert(row(tid, value))
        assert sorted(index.lookup_eq(5)) == [1, 3]
        assert index.lookup_eq(4) == []

    def test_remove(self):
        index = OrderedIndex("day")
        index.insert(row(1, 5))
        index.insert(row(2, 5))
        index.remove(row(1, 5))
        assert index.lookup_eq(5) == [2]

    def test_none_values_skipped(self):
        index = OrderedIndex("day")
        index.insert(row(1, None))
        assert len(index) == 0
        index.remove(row(1, None))  # no error

    def test_range_lookup(self):
        index = OrderedIndex("day")
        for tid, value in enumerate([10, 20, 30, 40], start=1):
            index.insert(row(tid, value))
        assert index.lookup_range(lo=20, hi=30) == [2, 3]
        assert index.lookup_range(hi=25) == [1, 2]
        assert index.lookup_range(lo=25) == [3, 4]
        assert index.lookup_range(lo=20, hi=30, lo_inclusive=False) == [3]
        assert index.lookup_range(lo=20, hi=30, hi_inclusive=False) == [2]

    def test_rebuild(self):
        index = OrderedIndex("day")
        index.rebuild([row(2, 9), row(1, 3)])
        assert index.lookup_range() == [1, 2]


class TestIntervalIndex:
    CAL = Calendar.from_intervals([(1, 5), (8, 12), (20, 20)])

    def test_contains(self):
        index = IntervalIndex(self.CAL)
        assert index.contains(1)
        assert index.contains(5)
        assert index.contains(10)
        assert index.contains(20)
        assert not index.contains(6)
        assert not index.contains(0)
        assert not index.contains(25)

    def test_merges_overlapping(self):
        index = IntervalIndex(Calendar.from_intervals([(1, 5), (4, 9)]))
        assert len(index) == 1
        assert index.contains(7)

    def test_next_at_or_after(self):
        index = IntervalIndex(self.CAL)
        assert index.next_at_or_after(3) == 3
        assert index.next_at_or_after(6) == 8
        assert index.next_at_or_after(13) == 20
        assert index.next_at_or_after(21) is None

    def test_next_skips_zero(self):
        index = IntervalIndex(Calendar.from_intervals([(-3, 3)]))
        assert index.next_at_or_after(0) == 1

    def test_iter_points(self):
        index = IntervalIndex(Calendar.from_intervals([(-2, 2)]))
        assert list(index.iter_points()) == [-2, -1, 1, 2]

    def test_empty(self):
        index = IntervalIndex(Calendar())
        assert not index.contains(1)
        assert index.next_at_or_after(1) is None
