"""The continuous sampling profiler: folded stacks, bounds, windows."""

import re
import threading
import time

import pytest

from repro.obs.profiler import OTHER_STACK, SamplingProfiler


def _busy_marker_fn(stop_event):
    """A recognisable frame to find in sampled stacks."""
    while not stop_event.is_set():
        sum(i * i for i in range(200))


class TestLifecycle:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hertz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)

    def test_start_stop_idempotent(self):
        def sampler_threads():
            return sum(t.name == "repro-profiler"
                       for t in threading.enumerate())

        # Other sessions' samplers (e.g. under REPRO_PROFILE=1) may
        # still be winding down — assert on the delta, not the total.
        baseline = sampler_threads()
        profiler = SamplingProfiler(hertz=200)
        assert not profiler.running
        profiler.start()
        profiler.start()  # no-op
        assert profiler.running
        assert sampler_threads() == baseline + 1
        profiler.stop()
        profiler.stop()  # no-op
        assert not profiler.running

    def test_samples_survive_stop_and_clear_drops_them(self):
        profiler = SamplingProfiler(hertz=500)
        profiler.start()
        time.sleep(0.1)
        profiler.stop()
        assert profiler.samples > 0
        profiler.clear()
        assert profiler.samples == 0
        assert profiler.counts() == {}


class TestSampling:
    def test_busy_thread_appears_in_folded_stacks(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_fn, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler = SamplingProfiler(hertz=500)
        profiler.start()
        time.sleep(0.3)
        profiler.stop()
        stop.set()
        worker.join()
        folded = profiler.folded()
        assert "_busy_marker_fn" in folded

    def test_folded_format_is_stack_space_count(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_fn, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler = SamplingProfiler(hertz=500)
        profiler.start()
        time.sleep(0.2)
        profiler.stop()
        stop.set()
        worker.join()
        lines = profiler.folded().splitlines()
        assert lines
        line_re = re.compile(r"^\S.* \d+$")
        counts = []
        for line in lines:
            assert line_re.match(line), line
            stack, _, count = line.rpartition(" ")
            assert ";" in stack or ":" in stack
            counts.append(int(count))
        assert counts == sorted(counts, reverse=True), "hottest first"

    def test_stacks_are_root_first(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_fn, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler = SamplingProfiler(hertz=500)
        profiler.start()
        time.sleep(0.2)
        profiler.stop()
        stop.set()
        worker.join()
        marker_stacks = [s for s in profiler.counts()
                         if "_busy_marker_fn" in s]
        assert marker_stacks
        # The thread bootstrap frames precede the marker leaf.
        for stack in marker_stacks:
            frames = stack.split(";")
            marker_index = next(i for i, f in enumerate(frames)
                                if "_busy_marker_fn" in f)
            assert any("threading" in f for f in frames[:marker_index])

    def test_own_thread_excluded(self):
        profiler = SamplingProfiler(hertz=500)
        profiler.start()
        time.sleep(0.15)
        profiler.stop()
        assert "_sample_once" not in profiler.folded()

    def test_bounded_stack_table_collapses_into_other(self):
        profiler = SamplingProfiler(max_stacks=2)
        with profiler._lock:
            pass  # table manipulated directly: simulate sampling sweeps
        for stack in ("a;b", "a;c", "a;d", "a;e", "a;d"):
            with profiler._lock:
                profiler._samples += 1
                if stack in profiler._counts:
                    profiler._counts[stack] += 1
                elif len(profiler._counts) < profiler.max_stacks:
                    profiler._counts[stack] = 1
                else:
                    profiler._counts[OTHER_STACK] = \
                        profiler._counts.get(OTHER_STACK, 0) + 1
                    profiler._overflowed += 1
        counts = profiler.counts()
        assert set(counts) == {"a;b", "a;c", OTHER_STACK}
        assert counts[OTHER_STACK] == 3
        assert profiler.overflowed == 3

    def test_top_aggregates_leaves(self):
        profiler = SamplingProfiler()
        profiler._counts = {"a;leaf": 3, "b;x;leaf": 2, "c;other": 1}
        top = profiler.top(2)
        assert top == [("leaf", 5), ("other", 1)]


class TestProfileFor:
    def test_one_shot_window_stops_sampler_after(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_fn, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler = SamplingProfiler(hertz=500)
        folded = profiler.profile_for(0.2)
        stop.set()
        worker.join()
        assert not profiler.running
        assert "_busy_marker_fn" in folded

    def test_window_is_a_delta_while_running(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy_marker_fn, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler = SamplingProfiler(hertz=500)
        profiler.start()
        time.sleep(0.2)
        baseline = sum(profiler.counts().values())
        folded = profiler.profile_for(0.2)
        assert profiler.running, "running sampler must be left running"
        profiler.stop()
        stop.set()
        worker.join()
        window_total = sum(int(line.rpartition(" ")[2])
                           for line in folded.splitlines())
        assert 0 < window_total < sum(profiler.counts().values())
        assert baseline > 0

    def test_stats_shape(self):
        profiler = SamplingProfiler()
        stats = profiler.stats()
        assert stats["running"] is False
        assert stats["samples"] == 0
        assert stats["hertz"] == profiler.hertz
        assert set(stats) == {"running", "hertz", "samples", "stacks",
                              "max_stacks", "overflowed", "errors"}
