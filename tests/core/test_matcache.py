"""Unit tests for the shared materialisation cache."""

import pytest

from repro.core import CalendarSystem
from repro.core.algebra import _SortedView
from repro.core.calendar import Calendar
from repro.core.errors import CalendarError
from repro.core.matcache import (
    MaterialisationCache,
    get_default_cache,
    set_default_cache,
)


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


@pytest.fixture
def cache():
    return MaterialisationCache()


class TestSubsumption:
    def test_sub_window_is_a_hit(self, sys87, cache):
        cache.generate(sys87, "MONTHS", "DAYS", (1, 1461), "cover")
        before = cache.stats()
        got = cache.generate(sys87, "MONTHS", "DAYS", (100, 400), "clip")
        after = cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert after["generated_intervals"] == \
            before["generated_intervals"]
        want = sys87.generate("MONTHS", "DAYS", (100, 400), mode="clip")
        assert got.to_pairs() == want.to_pairs()
        assert got.labels == want.labels

    def test_identical_request_returns_identical_object(self, sys87,
                                                        cache):
        """Repeats share one Calendar, so per-calendar memos are shared."""
        a = cache.generate(sys87, "WEEKS", "DAYS", (50, 250), "clip")
        b = cache.generate(sys87, "WEEKS", "DAYS", (50, 250), "clip")
        assert a is b

    def test_clip_paper_example_from_wider_cover_entry(self, sys87,
                                                       cache):
        """Section 3.2's clipped years, served off a wider cover entry."""
        cache.generate(sys87, "YEARS", "DAYS", (-400, 2500), "cover")
        got = cache.generate(sys87, "YEARS", "DAYS",
                             ("Jan 1 1987", "Jan 3 1992"), "clip")
        assert got.to_pairs() == (
            (1, 365), (366, 731), (732, 1096),
            (1097, 1461), (1462, 1826), (1827, 1829))


class TestExtension:
    def test_partial_overlap_extends_instead_of_regenerating(self, sys87,
                                                             cache):
        cache.generate(sys87, "DAYS", "DAYS", (1, 400), "cover")
        mid = cache.stats()
        got = cache.generate(sys87, "DAYS", "DAYS", (200, 800), "cover")
        after = cache.stats()
        assert after["extensions"] == mid["extensions"] + 1
        # Only the uncovered right span (401..800) was generated.
        assert after["generated_intervals"] - \
            mid["generated_intervals"] == 400
        want = sys87.generate("DAYS", "DAYS", (200, 800), mode="cover")
        assert got.to_pairs() == want.to_pairs()

    def test_extension_grows_both_sides(self, sys87, cache):
        cache.generate(sys87, "MONTHS", "DAYS", (300, 600), "cover")
        got = cache.generate(sys87, "MONTHS", "DAYS", (-300, 900), "clip")
        want = sys87.generate("MONTHS", "DAYS", (-300, 900), mode="clip")
        assert got.to_pairs() == want.to_pairs()
        assert got.labels == want.labels
        # The widened entry now serves the union window outright.
        before = cache.stats()
        cache.generate(sys87, "MONTHS", "DAYS", (-300, 900), "cover")
        assert cache.stats()["hits"] == before["hits"] + 1


class TestEviction:
    def test_lru_evicts_oldest_key(self, sys87):
        small = MaterialisationCache(maxsize=2)
        small.generate(sys87, "DAYS", "DAYS", (1, 10), "clip")
        small.generate(sys87, "WEEKS", "DAYS", (1, 10), "clip")
        small.generate(sys87, "MONTHS", "DAYS", (1, 10), "clip")
        stats = small.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        # The evicted (DAYS, DAYS) key is a miss again — and correct.
        got = small.generate(sys87, "DAYS", "DAYS", (1, 10), "clip")
        assert got.to_pairs() == tuple((t, t) for t in range(1, 11))
        assert small.stats()["misses"] == stats["misses"] + 1


class TestDisabled:
    def test_maxsize_zero_is_pass_through(self, sys87):
        off = MaterialisationCache(maxsize=0)
        assert not off.enabled
        got = off.generate(sys87, "YEARS", "DAYS", (1, 1000), "clip")
        want = sys87.generate("YEARS", "DAYS", (1, 1000), mode="clip")
        assert got.to_pairs() == want.to_pairs()
        stats = off.stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0

    def test_memo_is_a_no_op_when_disabled(self):
        off = MaterialisationCache(maxsize=0)
        off.memo_put(("k",), 123)
        assert off.memo_get(("k",)) is None
        assert off.stats()["memo_entries"] == 0

    def test_errors_match_fresh_generate(self, sys87, cache):
        with pytest.raises(CalendarError):
            cache.generate(sys87, "DAYS", "YEARS", (1, 10), "clip")
        with pytest.raises(CalendarError):
            cache.generate(sys87, "DAYS", "DAYS", (1, 10), "sideways")


class TestMemo:
    def test_put_get_roundtrip(self, cache):
        cache.memo_put(("a", 1), "value")
        assert cache.memo_get(("a", 1)) == "value"
        assert cache.memo_get(("a", 2)) is None

    def test_memo_lru_bound(self):
        tiny = MaterialisationCache(memo_maxsize=2)
        tiny.memo_put(("a",), 1)
        tiny.memo_put(("b",), 2)
        tiny.memo_put(("c",), 3)
        assert tiny.memo_get(("a",)) is None
        assert tiny.memo_get(("c",)) == 3


class TestSortedViewMemo:
    def test_of_returns_one_view_per_calendar(self):
        cal = Calendar.from_intervals([(1, 5), (8, 12)])
        assert _SortedView.of(cal) is _SortedView.of(cal)

    def test_memo_does_not_leak_across_equal_calendars(self):
        a = Calendar.from_intervals([(1, 5)])
        b = Calendar.from_intervals([(1, 5)])
        assert _SortedView.of(a) is not _SortedView.of(b)


class TestDefaultCache:
    def test_set_and_restore(self):
        original = get_default_cache()
        replacement = MaterialisationCache(maxsize=4)
        try:
            set_default_cache(replacement)
            assert get_default_cache() is replacement
        finally:
            set_default_cache(original)


class TestRegistryInvalidation:
    def test_redefine_is_never_served_stale(self):
        from repro.catalog import CalendarRegistry
        registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                    matcache=MaterialisationCache())
        registry.define("SPOT", values=Calendar.point(5),
                        granularity="DAYS")
        first = registry.eval_expression("SPOT")
        assert first.to_pairs() == ((5, 5),)
        registry.define("SPOT", values=Calendar.point(9),
                        granularity="DAYS", replace=True)
        second = registry.eval_expression("SPOT")
        assert second.to_pairs() == ((9, 9),)

    def test_drop_is_never_served_stale(self):
        from repro.catalog import CalendarRegistry
        registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                    matcache=MaterialisationCache())
        registry.define("SPOT", values=Calendar.point(5),
                        granularity="DAYS")
        registry.eval_expression("SPOT")
        registry.drop("SPOT")
        with pytest.raises(CalendarError):
            registry.eval_expression("SPOT")

    def test_two_registries_never_share_memo_entries(self):
        from repro.catalog import CalendarRegistry
        shared = MaterialisationCache()
        system = CalendarSystem.starting("Jan 1 1987")
        first = CalendarRegistry(system, matcache=shared)
        second = CalendarRegistry(system, matcache=shared)
        first.define("SPOT", values=Calendar.point(5),
                     granularity="DAYS")
        second.define("SPOT", values=Calendar.point(9),
                      granularity="DAYS")
        assert first.eval_expression("SPOT").to_pairs() == ((5, 5),)
        assert second.eval_expression("SPOT").to_pairs() == ((9, 9),)
