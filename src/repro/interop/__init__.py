"""Interoperability bridges (iCalendar RRULE <-> calendar expressions)."""

from repro.interop.rrule_bridge import (
    UnsupportedExpression,
    calendar_to_dates,
    expression_to_rrule,
    rrule_to_calendar,
)

__all__ = ["expression_to_rrule", "rrule_to_calendar",
           "calendar_to_dates", "UnsupportedExpression"]
