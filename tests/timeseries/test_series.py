"""Unit tests for regular time series (E12: GNP-style valid time)."""

import pytest

from repro.core import Calendar, CalendarError, CalendarSystem, caloperate


@pytest.fixture(scope="module")
def sys87():
    return CalendarSystem.starting("Jan 1 1987")


@pytest.fixture()
def quarters(sys87):
    months = sys87.months("Jan 1 1993", "Dec 31 1994")
    return caloperate(months, (3,))


@pytest.fixture()
def gnp(quarters):
    from repro.timeseries import RegularTimeSeries
    return RegularTimeSeries(quarters,
                             [6520.3, 6595.9, 6657.0, 6729.5, 6808.5],
                             name="GNP")


class TestTimepoints:
    def test_anchored_at_quarter_end(self, sys87, gnp):
        dates = [str(sys87.date_of(t)) for t in gnp.timepoints()]
        assert dates == ["Mar 31 1993", "Jun 30 1993", "Sep 30 1993",
                         "Dec 31 1993", "Mar 31 1994"]

    def test_start_anchor(self, sys87, quarters):
        from repro.timeseries import RegularTimeSeries
        ts = RegularTimeSeries(quarters, [1, 2], anchor="start")
        assert str(sys87.date_of(ts.timepoint(0))) == "Jan 1 1993"

    def test_items(self, gnp):
        items = list(gnp.items())
        assert len(items) == 5
        assert items[0][1] == 6520.3

    def test_bad_anchor(self, quarters):
        from repro.timeseries import RegularTimeSeries
        with pytest.raises(CalendarError):
            RegularTimeSeries(quarters, [1], anchor="middle")

    def test_too_many_values(self, quarters):
        from repro.timeseries import RegularTimeSeries
        with pytest.raises(CalendarError):
            RegularTimeSeries(quarters, list(range(100)))

    def test_order2_calendar_rejected(self):
        from repro.timeseries import RegularTimeSeries
        nested = Calendar.from_calendars(
            [Calendar.from_intervals([(1, 2)])])
        with pytest.raises(CalendarError):
            RegularTimeSeries(nested, [])


class TestAccess:
    def test_at_exact_instant(self, sys87, gnp):
        t = sys87.day_of("Jun 30 1993")
        assert gnp.at(t) == 6595.9
        assert gnp.at(t + 1) is None

    def test_at_or_before(self, sys87, gnp):
        t = sys87.day_of("Aug 15 1993")
        assert gnp.at_or_before(t) == 6595.9
        assert gnp.at_or_before(sys87.day_of("Jan 1 1993")) is None

    def test_index_of_instant(self, sys87, gnp):
        assert gnp.index_of_instant(sys87.day_of("Mar 31 1993")) == 0
        assert gnp.index_of_instant(12345) is None

    def test_append_implies_instant(self, sys87, gnp):
        t = gnp.append(6850.1)
        assert str(sys87.date_of(t)) == "Jun 30 1994"

    def test_append_exhausts_calendar(self, quarters):
        from repro.timeseries import RegularTimeSeries
        ts = RegularTimeSeries(quarters, [0] * len(quarters))
        with pytest.raises(CalendarError):
            ts.append(1.0)


class TestTransforms:
    def test_map(self, gnp):
        doubled = gnp.map(lambda v: v * 2)
        assert doubled.values[0] == pytest.approx(13040.6)
        assert doubled.timepoints() == gnp.timepoints()

    def test_binop_same_calendar(self, gnp):
        diff = gnp.binop(gnp, lambda a, b: a - b)
        assert all(v == 0 for v in diff.values)

    def test_binop_rejects_mismatched_calendars(self, gnp, sys87):
        from repro.timeseries import RegularTimeSeries
        other = RegularTimeSeries(
            Calendar.from_intervals([(1, 10)]), [1.0])
        with pytest.raises(CalendarError):
            gnp.binop(other, lambda a, b: a + b)

    def test_resample_months_to_quarters(self, sys87, quarters):
        from repro.timeseries import RegularTimeSeries
        months = sys87.months("Jan 1 1993", "Dec 31 1993")
        monthly = RegularTimeSeries(months, list(range(1, 13)))
        quarterly = monthly.resample(
            caloperate(months, (3,)), aggregate=sum)
        assert quarterly.values == [6, 15, 24, 33]
        assert str(sys87.date_of(quarterly.timepoint(0))) == "Mar 31 1993"


class TestDatabaseBridge:
    def test_values_only_storage(self, db, gnp):
        gnp.to_relation(db, "gnp")
        relation = db.relation("gnp")
        assert relation.schema.column_names() == ["seq", "value"]
        assert len(relation) == 5  # no time points stored

    def test_roundtrip_regenerates_timepoints(self, db, gnp):
        from repro.timeseries import RegularTimeSeries
        gnp.to_relation(db, "gnp")
        loaded = RegularTimeSeries.from_relation(db, "gnp", gnp.calendar)
        assert loaded.values == gnp.values
        assert loaded.timepoints() == gnp.timepoints()

    def test_rewrite_overwrites(self, db, gnp):
        gnp.to_relation(db, "gnp")
        gnp.to_relation(db, "gnp")
        assert len(db.relation("gnp")) == 5
