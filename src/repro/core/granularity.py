"""The granularity lattice of the basic calendars.

Section 3.2 of the paper fixes the set of basic calendars —
``SECONDS, MINUTES, HOURS, DAYS, WEEKS, MONTHS, YEARS, DECADES, CENTURY`` —
and requires every user-defined calendar to carry one of these as its
*granularity*.  The parser uses granularities to factorize expressions and
the planner uses them to pick the smallest common unit in which all
calendars of an expression can be generated.

Granularities are totally ordered by coarseness.  Conversion factors are
exact only along the *regular* chains (``SECONDS→MINUTES→HOURS→DAYS`` and
``YEARS→DECADES→CENTURY``); ``WEEKS``/``MONTHS``/``YEARS`` relative to days
are irregular and handled by the chronology instead.
"""

from __future__ import annotations

import enum

from repro.core.errors import GranularityError

__all__ = ["Granularity", "finest", "coarsest", "seconds_per", "exact_ratio"]


class Granularity(enum.IntEnum):
    """Basic granularities ordered from finest to coarsest."""

    SECONDS = 1
    MINUTES = 2
    HOURS = 3
    DAYS = 4
    WEEKS = 5
    MONTHS = 6
    YEARS = 7
    DECADES = 8
    CENTURY = 9

    def __str__(self) -> str:  # noqa: D105 - obvious
        return self.name

    @classmethod
    def parse(cls, name: "str | Granularity") -> "Granularity":
        """Look up a granularity by (case-insensitive) name."""
        if isinstance(name, Granularity):
            return name
        try:
            return cls[name.upper()]
        except (KeyError, AttributeError):
            raise GranularityError(f"unknown granularity {name!r}") from None

    def finer_than(self, other: "Granularity") -> bool:
        """Strictly finer (shorter unit) than ``other``."""
        return self < other

    def coarser_than(self, other: "Granularity") -> bool:
        """Strictly coarser (longer unit) than ``other``."""
        return self > other


#: Nominal length of one unit of each granularity in seconds.  Exact for the
#: sub-day units; nominal (non-leap, 30/365-day style) for the rest — used
#: only for ordering heuristics and DBCRON horizon estimates, never for
#: civil-calendar arithmetic.
_NOMINAL_SECONDS = {
    Granularity.SECONDS: 1,
    Granularity.MINUTES: 60,
    Granularity.HOURS: 3600,
    Granularity.DAYS: 86400,
    Granularity.WEEKS: 7 * 86400,
    Granularity.MONTHS: 30 * 86400,
    Granularity.YEARS: 365 * 86400,
    Granularity.DECADES: 10 * 365 * 86400,
    Granularity.CENTURY: 100 * 365 * 86400,
}

#: Pairs with an exact integral conversion factor (coarse unit = k fine units).
_EXACT_FACTORS = {
    (Granularity.SECONDS, Granularity.MINUTES): 60,
    (Granularity.SECONDS, Granularity.HOURS): 3600,
    (Granularity.SECONDS, Granularity.DAYS): 86400,
    (Granularity.MINUTES, Granularity.HOURS): 60,
    (Granularity.MINUTES, Granularity.DAYS): 1440,
    (Granularity.HOURS, Granularity.DAYS): 24,
    (Granularity.DAYS, Granularity.WEEKS): 7,
    (Granularity.MONTHS, Granularity.YEARS): 12,
    (Granularity.YEARS, Granularity.DECADES): 10,
    (Granularity.YEARS, Granularity.CENTURY): 100,
    (Granularity.DECADES, Granularity.CENTURY): 10,
    (Granularity.MONTHS, Granularity.DECADES): 120,
    (Granularity.MONTHS, Granularity.CENTURY): 1200,
}


def finest(*grans: Granularity) -> Granularity:
    """The finest of the given granularities."""
    if not grans:
        raise GranularityError("finest() requires at least one granularity")
    return min(grans)


def coarsest(*grans: Granularity) -> Granularity:
    """The coarsest of the given granularities."""
    if not grans:
        raise GranularityError("coarsest() requires at least one granularity")
    return max(grans)


def seconds_per(gran: Granularity) -> int:
    """Nominal seconds per unit (see module notes on exactness)."""
    return _NOMINAL_SECONDS[gran]


def exact_ratio(fine: Granularity, coarse: Granularity) -> int | None:
    """Exact number of ``fine`` units per ``coarse`` unit, or ``None``.

    Returns 1 when the two are equal.  ``None`` signals an irregular pair
    (e.g. DAYS per MONTH) that must be resolved by the chronology.
    """
    if fine == coarse:
        return 1
    if fine > coarse:
        raise GranularityError(
            f"{fine} is coarser than {coarse}; ratio undefined")
    return _EXACT_FACTORS.get((fine, coarse))
