"""Data-triggered temporal rules: section 6(a) meets section 4.

The paper closes with "Retrieve the time points at which the end-of-day
closing prices for two successive days showed an increase" and asks for
the calendar language to support such selection predicates.  Here the
``pattern`` function makes series predicates first-class calendar
expressions — and therefore valid ``On Calendar-Expression do Action``
triggers for DBCRON.

Run with::

    python examples/stock_alerts.py
"""

from repro import (
    CalendarRegistry,
    CalendarSystem,
    Database,
    DBCron,
    RuleManager,
    SimulatedClock,
)
from repro.catalog import install_standard_calendars, install_us_holidays
from repro.core import Calendar
from repro.timeseries import RegularTimeSeries, register_series


def main() -> None:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1993"),
                                default_horizon_years=5)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1993, 1997)
    db = Database(calendars=registry)
    system = db.system

    # Two weeks of end-of-day closes for one stock.
    start = system.day_of("Jan 4 1993")
    closes = [461.2, 462.9, 461.0, 463.7, 464.9,      # week 1 (Mon-Fri)
              465.3, 463.0, 462.1, 466.4, 468.2]      # week 2
    trading_days = [start + offset for offset in
                    (0, 1, 2, 3, 4, 7, 8, 9, 10, 11)]
    series = RegularTimeSeries(
        Calendar.from_intervals([(d, d) for d in trading_days]),
        closes, name="spx")
    register_series(registry, series)

    # Pure retrieval, the paper's closing query:
    ups = registry.eval_expression('pattern("spx", "s(t) < s(t+1)")')
    print("Days whose close increased into the next session:")
    for iv in ups.elements:
        print(f"   {system.date_of(iv.lo)}")
    print()

    # Momentum: two consecutive increases, as one expression.
    runs = registry.eval_expression(
        'pattern("spx", "s(t) < s(t+1) and s(t+1) < s(t+2)")')
    print("Momentum anchors (two consecutive increases):",
          ", ".join(str(system.date_of(iv.lo)) for iv in runs.elements))
    print()

    # The same predicates as DBCRON alerts.
    manager = RuleManager(db)
    clock = SimulatedClock(now=start - 1)
    cron = DBCron(manager, clock, period=1)
    db.create_table("alerts", [("day", "abstime"), ("kind", "text")])
    manager.declare_temporal(
        "uptick", expression='pattern("spx", "s(t) < s(t+1)")',
        actions=['append alerts (day = now.t, kind = "uptick")'])
    manager.declare_temporal(
        "momentum",
        expression='pattern("spx", "s(t) < s(t+1) and s(t+1) < s(t+2)")',
        actions=['append alerts (day = now.t, kind = "momentum")'])
    cron.run_until(start + 14)

    print("Alert log produced by DBCRON while the clock replayed the "
          "fortnight:")
    for row in db.execute("retrieve (a.day, a.kind) from a in alerts "
                          "order by day"):
        print(f"   {system.date_of(row['day'])}: {row['kind']}")


if __name__ == "__main__":
    main()
