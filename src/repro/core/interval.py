"""Intervals on the paper's zero-skipping integer time axis.

The paper (section 3.1) adopts the convention that the time axis is the set
of non-zero integers: *"an interval will never contain 0"*.  Day ``1`` is the
first day of the system epoch and day ``-1`` is the day immediately before
it; ``0`` simply does not exist.  The helpers :func:`axis_add`,
:func:`axis_diff` and :func:`axis_distance` implement arithmetic on that
axis, and :class:`Interval` is the primitive temporal entity from Allen's
algebra with inclusive integer endpoints.

Interval relations follow the paper's definitions verbatim:

* ``overlaps(a, b)``   — the intersection of *a* and *b* is non-empty,
* ``during(a, b)``     — ``a.lo >= b.lo and b.hi >= a.hi``,
* ``meets(a, b)``      — ``a.hi == b.lo``,
* ``before(a, b)``     — (the paper's ``<``) ``a.hi <= b.lo``,
* ``starts_before(a, b)`` — (the paper's ``<=``) ``a.lo <= b.lo and b.hi >= a.hi``.

The remaining Allen relations (``equals``, ``starts``, ``finishes``,
``strictly_before`` …) are provided for completeness; the *listop registry*
at the bottom of the module maps the surface names used by the calendar
expression language (``overlaps``, ``during``, ``meets``, ``<``, ``<=``,
``intersects``, …) to predicate functions together with the *shape* of the
``foreach`` result they induce (see :mod:`repro.core.algebra`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.errors import AxisError, InvalidIntervalError, OperatorError

__all__ = [
    "Interval",
    "axis_add",
    "axis_diff",
    "axis_distance",
    "axis_next",
    "axis_prev",
    "axis_points",
    "Listop",
    "LISTOPS",
    "get_listop",
    "register_listop",
]


# ---------------------------------------------------------------------------
# Zero-skipping axis arithmetic
# ---------------------------------------------------------------------------

def _check_point(t: int) -> int:
    if not isinstance(t, int) or isinstance(t, bool):
        raise AxisError(f"axis points must be ints, got {t!r}")
    if t == 0:
        raise AxisError("0 is not a point on the time axis")
    return t


def axis_add(t: int, delta: int) -> int:
    """Move ``delta`` ticks from point ``t``, skipping 0.

    ``axis_add(-1, 1) == 1`` and ``axis_add(1, -1) == -1``.
    """
    _check_point(t)
    result = t + delta
    # Crossing (or landing on) zero loses one slot in each direction.
    if t > 0 and result <= 0:
        result -= 1
    elif t < 0 and result >= 0:
        result += 1
    return result


def axis_diff(a: int, b: int) -> int:
    """Signed number of ticks from ``b`` to ``a`` (inverse of :func:`axis_add`).

    ``axis_add(b, axis_diff(a, b)) == a``.
    """
    _check_point(a)
    _check_point(b)
    d = a - b
    if a > 0 > b:
        d -= 1
    elif a < 0 < b:
        d += 1
    return d


def axis_distance(a: int, b: int) -> int:
    """Number of points in the inclusive span between ``a`` and ``b``."""
    return abs(axis_diff(a, b)) + 1


def axis_next(t: int) -> int:
    """The successor of ``t`` on the axis."""
    return axis_add(t, 1)


def axis_prev(t: int) -> int:
    """The predecessor of ``t`` on the axis."""
    return axis_add(t, -1)


def axis_points(lo: int, hi: int) -> Iterator[int]:
    """Iterate the axis points of the inclusive span ``[lo, hi]``, skipping 0."""
    _check_point(lo)
    _check_point(hi)
    if lo > hi:
        return
    t = lo
    while t <= hi:
        if t != 0:
            yield t
        t += 1


# ---------------------------------------------------------------------------
# Interval
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``(lo, hi)`` of axis points with ``lo <= hi``.

    Endpoints are non-zero integers.  The interval may *span* zero (the
    paper's ``(-4, 3)`` example) — enumeration simply skips the
    non-existent point 0.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not isinstance(self.lo, int) or not isinstance(self.hi, int) or \
                isinstance(self.lo, bool) or isinstance(self.hi, bool):
            raise InvalidIntervalError(
                f"interval endpoints must be ints, got ({self.lo!r}, {self.hi!r})")
        if self.lo == 0 or self.hi == 0:
            raise InvalidIntervalError(
                f"interval endpoints may not be 0: ({self.lo}, {self.hi})")
        if self.lo > self.hi:
            raise InvalidIntervalError(
                f"interval lower bound exceeds upper bound: ({self.lo}, {self.hi})")

    @classmethod
    def _of(cls, lo: int, hi: int) -> "Interval":
        """Trusted constructor for endpoints already known valid.

        Skips ``__post_init__`` validation — this is the materialisation
        fast path for column-backed calendars, whose endpoints were
        validated when the columns were built.
        """
        iv = object.__new__(cls)
        object.__setattr__(iv, "lo", lo)
        object.__setattr__(iv, "hi", hi)
        return iv

    # -- basic geometry ----------------------------------------------------

    def __len__(self) -> int:
        """Number of axis points contained in the interval."""
        return axis_distance(self.lo, self.hi)

    def __contains__(self, t: int) -> bool:
        return t != 0 and self.lo <= t <= self.hi

    def __iter__(self) -> Iterator[int]:
        return axis_points(self.lo, self.hi)

    def __str__(self) -> str:
        return f"({self.lo},{self.hi})"

    def is_instant(self) -> bool:
        """True when the interval contains exactly one axis point."""
        return len(self) == 1

    # -- set-like operations ------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection interval, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def union_hull(self, other: "Interval") -> "Interval":
        """The smallest interval covering both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def subtract(self, other: "Interval") -> "list[Interval]":
        """Pointwise difference ``self - other`` (0, 1 or 2 intervals)."""
        if other.hi < self.lo or other.lo > self.hi:
            return [self]
        pieces: list[Interval] = []
        if other.lo > self.lo:
            pieces.append(Interval(self.lo, axis_prev(other.lo)))
        if other.hi < self.hi:
            pieces.append(Interval(axis_next(other.hi), self.hi))
        return pieces

    def shift(self, delta: int) -> "Interval":
        """Translate both endpoints by ``delta`` ticks on the axis."""
        return Interval(axis_add(self.lo, delta), axis_add(self.hi, delta))

    # -- Allen / paper relations ---------------------------------------------

    def overlaps(self, other: "Interval") -> bool:
        """Paper ``overlaps``: the intersection is non-empty."""
        return self.lo <= other.hi and other.lo <= self.hi

    def during(self, other: "Interval") -> bool:
        """Paper ``during``: ``self`` is contained in ``other``."""
        return self.lo >= other.lo and other.hi >= self.hi

    def contains(self, other: "Interval") -> bool:
        """Inverse of :meth:`during`."""
        return other.during(self)

    def meets(self, other: "Interval") -> bool:
        """Paper ``meets``: ``self.hi == other.lo``."""
        return self.hi == other.lo

    def before(self, other: "Interval") -> bool:
        """Paper ``<``: ``self.hi <= other.lo``."""
        return self.hi <= other.lo

    def starts_before(self, other: "Interval") -> bool:
        """Paper ``<=``: ``self.lo <= other.lo`` and ``other.hi >= self.hi``."""
        return self.lo <= other.lo and other.hi >= self.hi

    def strictly_before(self, other: "Interval") -> bool:
        """Allen ``before`` proper: ends strictly before the other starts."""
        return self.hi < other.lo

    def starts(self, other: "Interval") -> bool:
        """Allen ``starts``: same lower bound, ends within."""
        return self.lo == other.lo and self.hi <= other.hi

    def finishes(self, other: "Interval") -> bool:
        """Allen ``finishes``: same upper bound, starts within."""
        return self.hi == other.hi and self.lo >= other.lo

    def equals(self, other: "Interval") -> bool:
        """Allen ``equals``: identical endpoints."""
        return self.lo == other.lo and self.hi == other.hi


# ---------------------------------------------------------------------------
# Listop registry
# ---------------------------------------------------------------------------

#: A listop predicate takes the candidate interval (from the left calendar)
#: and the reference interval (from the right operand) and returns a bool.
ListopPredicate = Callable[[Interval, Interval], bool]


@dataclass(frozen=True, slots=True)
class Listop:
    """A named binary interval predicate usable inside a ``foreach``.

    ``shape`` controls how :func:`repro.core.algebra.foreach` structures its
    result when the right operand is a calendar:

    * ``"grouping"`` — one sub-calendar per right-hand element (order-2
      result), the paper's default reading for ``during``/``overlaps``/
      ``meets``/``<``/``<=``.
    * ``"filtering"`` — the right operand is treated as a *set*; elements of
      the left calendar that relate to **any** right element are kept and the
      result stays order-1.  This is how the paper's scripts use
      ``intersects`` (section 3.3, EMP-DAYS walk-through).

    ``clips`` marks operators for which the strict ``foreach`` replaces a
    kept element by its intersection with the reference interval.  For
    non-overlapping operators (``<``, ``meets``) the intersection would be
    empty, so clipping is disabled: the paper's own
    ``[n]/AM_BUS_DAYS:<:LDOM_HOL`` example keeps the unclipped business
    days even though it is written with the strict separator.
    """

    name: str
    predicate: ListopPredicate
    shape: str = "grouping"
    clips: bool = True

    def __call__(self, a: Interval, b: Interval) -> bool:
        return self.predicate(a, b)


LISTOPS: dict[str, Listop] = {}


def register_listop(name: str, predicate: ListopPredicate, *,
                    shape: str = "grouping", clips: bool = True,
                    replace: bool = False) -> Listop:
    """Register a listop under ``name`` and return it.

    This is the extensibility hook the paper gets from POSTGRES operator
    declaration: applications may add their own interval predicates and
    immediately use them in calendar expressions.
    """
    if shape not in ("grouping", "filtering"):
        raise OperatorError(f"unknown listop shape {shape!r}")
    if name in LISTOPS and not replace:
        raise OperatorError(f"listop {name!r} is already registered")
    op = Listop(name, predicate, shape, clips)
    LISTOPS[name] = op
    return op


def get_listop(name: str) -> Listop:
    """Look up a listop by surface name; raises :class:`OperatorError`."""
    try:
        return LISTOPS[name]
    except KeyError:
        raise OperatorError(f"unknown listop {name!r}") from None


register_listop("overlaps", Interval.overlaps)
register_listop("during", Interval.during)
register_listop("contains", Interval.contains)
register_listop("meets", Interval.meets, clips=False)
register_listop("<", Interval.before, clips=False)
register_listop("<=", Interval.starts_before)
register_listop("intersects", Interval.overlaps, shape="filtering")
register_listop("starts", Interval.starts)
register_listop("finishes", Interval.finishes)
register_listop("equals", Interval.equals)
