"""The rule manager: declaration, storage and firing of rules.

Wires :class:`~repro.rules.rule.EventRule` objects into the storage-layer
event hooks and :class:`~repro.rules.temporal.TemporalRule` objects into
the RULE-INFO/RULE-TIME tables probed by DBCRON.  A cascade-depth guard
stops runaway rule chains (a rule whose action triggers itself).
"""

from __future__ import annotations

import threading
import warnings

from typing import Callable, Sequence

from repro.db.database import Database
from repro.db.errors import RuleError
from repro.rules.events import Event
from repro.rules.rule import EventRule
from repro.rules.tables import RuleTables
from repro.rules.temporal import TemporalRule
from repro.rules.throttle import ThrottledError

__all__ = ["RuleManager"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"RuleManager.{old} is deprecated and will be removed in the "
        f"next release; use {new} instead",
        DeprecationWarning, stacklevel=3)


class RuleManager:
    """Owns all rules of one database."""

    def __init__(self, database: Database,
                 max_cascade_depth: int = 16) -> None:
        self.db = database
        self.tables = RuleTables(database)
        self.event_rules: dict[str, EventRule] = {}
        self.temporal_rules: dict[str, TemporalRule] = {}
        self.max_cascade_depth = max_cascade_depth
        #: Cascade depth is tracked per *thread*: DBCRON may fire
        #: independent rules on pool workers concurrently, and each
        #: worker's rule chain is a separate cascade.
        self._local = threading.local()
        #: Serialises database-mutating rule work (``rule.fire``,
        #: RULE_TIME updates, schedule notifications) when rules fire on
        #: pool threads; re-entrant so a cascading rule on one thread is
        #: unaffected.  The expensive calendar-pipeline work
        #: (``next_trigger``) deliberately runs outside it.
        self._mutate_lock = threading.RLock()
        #: Set by DBCron; used as the default schedule start for rules
        #: declared without an explicit ``after``.
        self.clock = None
        #: Callbacks notified when a temporal rule is (re)scheduled.
        self._schedule_listeners: list[Callable[[str, int | None], None]] = []
        #: Optional :class:`~repro.rules.throttle.TenantThrottle`; when
        #: set, declarations are admission-controlled per tenant.
        self.throttle = None
        database.rule_manager = self

    @property
    def _depth(self) -> int:
        """This thread's cascade depth (see ``_local``)."""
        return getattr(self._local, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._local.depth = value

    # -- admission ----------------------------------------------------------------

    def _admit(self, name: str, tenant: str) -> None:
        """Check duplicate names and the tenant's registration budget."""
        if name in self.event_rules or name in self.temporal_rules:
            raise RuleError(f"rule {name!r} is already defined")
        if self.throttle is not None:
            now = self.clock.now if self.clock is not None else 0
            if not self.throttle.admit_registration(tenant, now):
                raise ThrottledError(
                    f"tenant {tenant!r} exceeded its registration budget "
                    f"(rule {name!r} refused)")

    # -- event rules --------------------------------------------------------------

    def declare_event(self, name: str, *, event: str, relation: str,
                      condition: "str | Callable | None" = None,
                      actions: "Sequence[str] | None" = None,
                      callback: Callable | None = None,
                      valid_between: tuple | None = None,
                      tenant: str = "default",
                      priority: int = 0) -> EventRule:
        """``On Event [to relation] where Condition do Action``."""
        self._admit(name, tenant)
        rule = EventRule.define(name, event, relation, condition, actions,
                                callback)
        rule.valid_between = valid_between
        rule.tenant = tenant
        rule.priority = priority
        self.db.relation(relation)  # validate it exists
        self.event_rules[name] = rule
        hook = self._make_hook(rule)
        self.db.relation(relation).hooks[rule.event].append(hook)
        rule._hook = hook  # for removal
        return rule

    def define_event_rule(self, name: str, event: str, relation: str,
                          condition: "str | Callable | None" = None,
                          actions: "Sequence[str] | None" = None,
                          callback: Callable | None = None,
                          valid_between: tuple | None = None) -> EventRule:
        """Deprecated: use :meth:`declare_event` / ``session.rules.on_event``."""
        _deprecated("define_event_rule", "declare_event")
        return self.declare_event(name, event=event, relation=relation,
                                  condition=condition, actions=actions,
                                  callback=callback,
                                  valid_between=valid_between)

    def _make_hook(self, rule: EventRule) -> Callable[[Event], None]:
        def hook(event: Event) -> None:
            if not rule.enabled:
                return
            if self._depth >= self.max_cascade_depth:
                raise RuleError(
                    f"rule cascade exceeded depth {self.max_cascade_depth} "
                    f"(at rule {rule.name!r})")
            now = self.clock.now if self.clock is not None else None
            if rule.matches(self.db._executor, event, now=now):
                self._depth += 1
                try:
                    rule.fire(self.db, event)
                finally:
                    self._depth -= 1
        return hook

    # -- temporal rules -------------------------------------------------------------

    def declare_temporal(self, name: str, *, expression: str,
                         actions: "Sequence[str] | None" = None,
                         callback: Callable | None = None,
                         after: int | None = None,
                         valid_between: tuple | None = None,
                         catchup: str = "all",
                         tenant: str = "default",
                         priority: int = 0) -> TemporalRule:
        """``On Calendar-Expression do Action`` (section 4).

        The expression is parsed, factorized and compiled (memoised per
        distinct expression text); the next trigger point after ``after``
        (default: the clock, else day 1) is computed and stored in
        RULE_TIME, and the schedule notification arms DBCRON directly.
        """
        self._admit(name, tenant)
        rule = TemporalRule.define(name, expression,
                                   self.db.calendars,
                                   actions=actions, callback=callback,
                                   valid_between=valid_between,
                                   catchup=catchup, tenant=tenant,
                                   priority=priority)
        if after is not None:
            start = after
        elif self.clock is not None:
            start = self.clock.now
        else:
            start = 1
        next_fire = rule.next_trigger(self.db.calendars, start)
        self.temporal_rules[name] = rule
        self.tables.register(rule, next_fire)
        self._notify_schedule(name, next_fire)
        return rule

    def define_temporal_rule(self, name: str, calendar_expression: str,
                             actions: "Sequence[str] | None" = None,
                             callback: Callable | None = None,
                             after: int | None = None,
                             valid_between: tuple | None = None,
                             catchup: str = "all") -> TemporalRule:
        """Deprecated: use :meth:`declare_temporal` / ``session.rules.on_calendar``."""
        _deprecated("define_temporal_rule", "declare_temporal")
        return self.declare_temporal(name, expression=calendar_expression,
                                     actions=actions, callback=callback,
                                     after=after,
                                     valid_between=valid_between,
                                     catchup=catchup)

    def drop_rule(self, name: str) -> None:
        """Remove an event or temporal rule (and its catalog rows)."""
        if name in self.event_rules:
            rule = self.event_rules.pop(name)
            hooks = self.db.relation(rule.relation).hooks[rule.event]
            if getattr(rule, "_hook", None) in hooks:
                hooks.remove(rule._hook)
            return
        if name in self.temporal_rules:
            del self.temporal_rules[name]
            self.tables.unregister(name)
            self._notify_schedule(name, None)
            return
        raise RuleError(f"unknown rule {name!r}")

    # -- DBCRON interface --------------------------------------------------------------

    def subscribe_schedule(self,
                           listener: Callable[[str, int | None], None]
                           ) -> None:
        """Register a callback for (re)schedules: (rule, next_fire)."""
        self._schedule_listeners.append(listener)

    def unsubscribe_schedule(self,
                             listener: Callable[[str, int | None], None]
                             ) -> None:
        """Remove a schedule listener (daemon detach); unknown = no-op."""
        try:
            self._schedule_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_schedule(self, name: str, next_fire: int | None) -> None:
        for listener in self._schedule_listeners:
            listener(name, next_fire)

    def fire_temporal(self, name: str, at_tick: int) -> int | None:
        """Fire a temporal rule and reschedule it; new next-fire or None.

        Safe to call from DBCRON pool workers for *distinct* rules: the
        calendar-pipeline work (``next_trigger``, the dominant cost) runs
        unlocked on the calling thread — the registry and matcache below
        it are thread-safe — while the database mutations (``rule.fire``,
        RULE_TIME update, schedule notification) are serialised by
        ``_mutate_lock``.
        """
        rule = self.temporal_rules.get(name)
        if rule is None or not rule.enabled:
            return None
        if rule.catchup == "latest" and self.clock is not None:
            # Skip forward to the most recent missed trigger point.
            now = self.clock.now
            candidate = rule.next_trigger(self.db.calendars, at_tick)
            while candidate is not None and candidate <= now:
                at_tick = candidate
                candidate = rule.next_trigger(self.db.calendars, at_tick)
        if self._depth >= self.max_cascade_depth:
            raise RuleError(
                f"rule cascade exceeded depth {self.max_cascade_depth} "
                f"(at rule {name!r})")
        self._depth += 1
        try:
            with self._mutate_lock:
                rule.fire(self.db, at_tick)
        finally:
            self._depth -= 1
        next_fire = rule.next_trigger(self.db.calendars, at_tick)
        with self._mutate_lock:
            self.tables.set_next_fire(name, next_fire)
            self._notify_schedule(name, next_fire)
        return next_fire

    def skip_temporal(self, name: str, at_tick: int) -> int | None:
        """Advance a rule past ``at_tick`` *without* running its action.

        The shedding path of admission control: the rule is rescheduled
        at its next trigger point exactly as if it had fired, its
        ``shed_count`` is bumped, and the skipped occurrence is gone —
        shedding trades completeness for clock liveness.
        """
        rule = self.temporal_rules.get(name)
        if rule is None or not rule.enabled:
            return None
        rule.shed_count += 1
        next_fire = rule.next_trigger(self.db.calendars, at_tick)
        with self._mutate_lock:
            self.tables.set_next_fire(name, next_fire)
            self._notify_schedule(name, next_fire)
        return next_fire
