"""Observability overhead: what tracing costs, and what "off" costs.

The contract (see docs/IMPLEMENTATION_NOTES.md) is that disabled tracing
adds a single ``tracer is not None`` branch per plan run.  The smoke
test here compares the shipping :class:`PlanVM` (tracer disabled)
against a baseline VM whose ``run`` is the verbatim pre-instrumentation
loop, and asserts the difference stays under 5%.  The benchmark pair
records the absolute traced/untraced cost for BENCH_core.json diffs.
"""

from __future__ import annotations

from time import perf_counter

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.core.matcache import MaterialisationCache
from repro.lang.plan import PlanVM
from repro.obs.instrument import Instrumentation

EXPRESSION = "DAYS:during:[1]/MONTHS:during:1993/YEARS"
WINDOW = ("Jan 1 1993", "Dec 31 1994")


class _BaselineVM(PlanVM):
    """The pre-instrumentation run loop, with no tracer branch at all."""

    def run(self, plan):
        registers = {}
        for step in plan.steps:
            registers[step.target] = self._run_step(step, registers)
        return self._finish(plan, registers)


def _build():
    """A private registry (own instrumentation + cache), plan and context."""
    instrumentation = Instrumentation()
    registry = CalendarRegistry(
        CalendarSystem.starting("Jan 1 1987"),
        matcache=MaterialisationCache(metrics=instrumentation.metrics),
        instrumentation=instrumentation)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 1996)
    from repro.lang.factorizer import factorize
    from repro.lang.parser import parse_expression
    from repro.lang.planner import compile_expression

    ctx = registry.context(window=WINDOW)
    factored = factorize(parse_expression(EXPRESSION), registry.resolver)
    plan = compile_expression(factored.expression, registry.system,
                              registry.resolver, context_window=ctx.window)
    return instrumentation, registry, plan, ctx


def _best_of(fn, *, loops: int, repeats: int) -> float:
    """Minimum wall time of ``loops`` calls, over ``repeats`` samples."""
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, perf_counter() - start)
    return best


class TestDisabledOverheadSmoke:
    def test_disabled_tracing_overhead_under_5_percent(self):
        instrumentation, registry, plan, ctx = _build()
        assert ctx.tracer is None  # tracing off: the branch under test
        vm = PlanVM(ctx)
        baseline = _BaselineVM(ctx)
        # Warm the materialisation cache so both loops measure pure VM
        # dispatch, and check the twins agree before timing them.
        assert vm.run(plan).flatten() == baseline.run(plan).flatten()

        t_base = _best_of(lambda: baseline.run(plan), loops=60, repeats=7)
        t_vm = _best_of(lambda: vm.run(plan), loops=60, repeats=7)
        # 5% relative margin plus a tiny absolute floor against timer
        # jitter on very fast runs.
        assert t_vm <= t_base * 1.05 + 1e-3, (
            f"disabled-tracing overhead too high: "
            f"baseline={t_base:.6f}s instrumented={t_vm:.6f}s")

    def test_disabled_tracing_records_nothing(self):
        instrumentation, registry, plan, ctx = _build()
        PlanVM(ctx).run(plan)
        assert instrumentation.recent_traces() == []


class TestTelemetryOverhead:
    """The event pipeline's cost when on, and its single branch when off.

    Telemetry-enabled evaluation (``eval.start``/``eval.finish`` and
    ``plan.run`` events per run) must stay within 5% of the disabled
    path over a warm cache; the measured pair is recorded into
    BENCH_core.json for trajectory diffs.

    Two deliberate measurement choices, both fixes for a 23.6%
    ``overhead_pct`` recorded by an earlier, less careful version:

    * the workload is a *representative* warm evaluation (365 result
      intervals, ~0.5ms) rather than a degenerate micro-eval — the
      pipeline's cost is a fixed ~3 events per evaluation, and dividing
      that constant by an unrepresentatively tiny denominator reports a
      percentage no real workload sees;
    * disabled/enabled batches run *interleaved* and the overhead is
      the **median of paired deltas**, so clock-frequency drift between
      samples (which biases min-of-independent-batches on shared
      hardware) hits both sides of every pair equally.
    """

    #: Dense enough that the per-eval event cost is measured against a
    #: realistic amount of evaluation work (cf. the module-level
    #: EXPRESSION, whose warm eval is ~80us and 31 intervals).
    OVERHEAD_EXPRESSION = "DAYS:during:1993/YEARS"
    LOOPS, REPEATS = 20, 11

    def _session(self, **kwargs):
        from repro.session import Session

        return Session(instrumentation=Instrumentation(),
                       holiday_years=(1987, 1996), **kwargs)

    @staticmethod
    def _batch(fn, loops: int) -> float:
        start = perf_counter()
        for _ in range(loops):
            fn()
        return perf_counter() - start

    def test_telemetry_enabled_overhead_under_5_percent(self):
        from statistics import median

        from conftest import record_benchmark

        expression = self.OVERHEAD_EXPRESSION
        plain = self._session()
        telemetered = self._session(telemetry=True)
        assert telemetered.telemetry is not None
        assert plain.telemetry is None
        # Warm both materialisation caches and check agreement.
        expected = plain.eval(expression, window=WINDOW).flatten()
        for _ in range(3):
            got = telemetered.eval(expression, window=WINDOW).flatten()
            plain.eval(expression, window=WINDOW)
        assert got == expected

        pairs = []
        for _ in range(self.REPEATS):
            t_off = self._batch(
                lambda: plain.eval(expression, window=WINDOW), self.LOOPS)
            t_on = self._batch(
                lambda: telemetered.eval(expression, window=WINDOW),
                self.LOOPS)
            pairs.append((t_off, t_on))
        t_off = median(off for off, _ in pairs)
        delta = median(on - off for off, on in pairs)
        record_benchmark(
            "obs/telemetry_enabled_eval_overhead",
            samples=[on / self.LOOPS for _, on in pairs],
            disabled_s=t_off / self.LOOPS,
            overhead_pct=100.0 * delta / t_off if t_off else 0.0)
        # 5% relative, plus 2us/eval absolute floor for timer jitter.
        assert delta <= t_off * 0.05 + self.LOOPS * 2e-6, (
            f"telemetry-enabled overhead too high: "
            f"disabled={t_off:.6f}s paired-delta={delta:.6f}s")
        assert telemetered.telemetry.emitted > 0

    def test_disabled_telemetry_emits_nothing(self):
        session = self._session()
        session.eval(EXPRESSION, window=WINDOW)
        assert session.events() == []
        assert session.registry.matcache.pipeline is None


class TestLabelledMetricsOverhead:
    """Labelled hot-path emitters vs the honest unlabelled baseline.

    The matcache's per-stripe hit/miss counters are the highest-traffic
    labelled emitters (one pre-bound child ``inc()`` per cache probe).
    ``MaterialisationCache(stripe_metrics=False)`` compiles them out
    entirely — not just a disabled branch — so the pair measures the
    full cost of the labelled pipeline: child binding at construction
    plus the per-probe guard and increment.  Same paired-median-delta
    technique as :class:`TestTelemetryOverhead`.
    """

    LOOPS, REPEATS = 200, 11

    def _build(self, stripe_metrics: bool):
        instrumentation = Instrumentation()
        cache = MaterialisationCache(metrics=instrumentation.metrics,
                                     stripe_metrics=stripe_metrics)
        registry = CalendarRegistry(
            CalendarSystem.starting("Jan 1 1987"),
            matcache=cache, instrumentation=instrumentation)
        install_standard_calendars(registry)
        return instrumentation, registry, cache

    @staticmethod
    def _batch(fn, loops: int) -> float:
        start = perf_counter()
        for _ in range(loops):
            fn()
        return perf_counter() - start

    def test_labelled_hot_path_overhead_under_5_percent(self):
        from statistics import median

        from conftest import record_benchmark

        inst_off, reg_off, cache_off = self._build(stripe_metrics=False)
        inst_on, reg_on, cache_on = self._build(stripe_metrics=True)
        assert inst_off.metrics.get("matcache.stripe.hits") is None
        assert inst_on.metrics.get("matcache.stripe.hits") is not None
        # A multi-year serve (~260 intervals) is the representative hit:
        # the per-probe labelled ``inc`` is measured against real serving
        # work, not a degenerate micro-slice.
        window = reg_on.system.day_window("Jan 1 1990", "Dec 31 1994")

        def probe_off():
            return cache_off.generate(reg_off.system, "WEEKS", "DAYS",
                                      window)

        def probe_on():
            return cache_on.generate(reg_on.system, "WEEKS", "DAYS",
                                     window)

        # Warm both caches (every timed probe is a stripe hit) and
        # check the twins agree before timing.
        assert probe_off().flatten() == probe_on().flatten()

        pairs = []
        for _ in range(self.REPEATS):
            t_off = self._batch(probe_off, self.LOOPS)
            t_on = self._batch(probe_on, self.LOOPS)
            pairs.append((t_off, t_on))
        t_off = median(off for off, _ in pairs)
        delta = median(on - off for off, on in pairs)
        record_benchmark(
            "obs/labelled_metrics_hit_overhead",
            samples=[on / self.LOOPS for _, on in pairs],
            unlabelled_s=t_off / self.LOOPS,
            overhead_pct=100.0 * delta / t_off if t_off else 0.0)
        # The labelled series did take the traffic.
        hits = inst_on.metrics.get("matcache.stripe.hits")
        assert sum(c.value for c in hits.series().values()) >= \
            self.LOOPS * self.REPEATS
        # <5% relative, plus 1us/probe absolute floor for timer jitter.
        assert delta <= t_off * 0.05 + self.LOOPS * 1e-6, (
            f"labelled-metrics overhead too high: "
            f"unlabelled={t_off:.6f}s paired-delta={delta:.6f}s")


class TestProfilerOverhead:
    """The continuous sampler's drag on the evaluation hot path.

    Paired batches of a warm representative evaluation with the profiler
    stopped vs running at the default ~97 Hz; the median paired delta
    must stay under 2%.  Sampling happens on a separate thread, so the
    cost seen by the workload is GIL contention during each stack walk —
    exactly what "cheap enough to leave on" promises to bound.
    """

    EXPRESSION = "DAYS:during:1993/YEARS"
    LOOPS, REPEATS = 20, 11

    @staticmethod
    def _batch(fn, loops: int) -> float:
        start = perf_counter()
        for _ in range(loops):
            fn()
        return perf_counter() - start

    def test_profiler_overhead_under_2_percent(self):
        from statistics import median

        from conftest import record_benchmark
        from repro.obs.profiler import DEFAULT_HERTZ, SamplingProfiler
        from repro.session import Session

        session = Session(instrumentation=Instrumentation(),
                          holiday_years=(1987, 1996))
        profiler = SamplingProfiler(DEFAULT_HERTZ)
        expression = self.EXPRESSION
        for _ in range(3):  # warm the materialisation cache
            session.eval(expression, window=WINDOW)

        try:
            pairs = []
            for _ in range(self.REPEATS):
                t_off = self._batch(
                    lambda: session.eval(expression, window=WINDOW),
                    self.LOOPS)
                profiler.start()
                t_on = self._batch(
                    lambda: session.eval(expression, window=WINDOW),
                    self.LOOPS)
                profiler.stop()
                pairs.append((t_off, t_on))
        finally:
            profiler.stop()
            session.close()
        t_off = median(off for off, _ in pairs)
        delta = median(on - off for off, on in pairs)
        record_benchmark(
            "obs/profiler_enabled_eval_overhead",
            samples=[on / self.LOOPS for _, on in pairs],
            disabled_s=t_off / self.LOOPS,
            hertz=DEFAULT_HERTZ,
            overhead_pct=100.0 * delta / t_off if t_off else 0.0)
        # <2% relative, plus 2us/eval absolute floor for timer jitter.
        assert delta <= t_off * 0.02 + self.LOOPS * 2e-6, (
            f"profiler overhead too high: "
            f"off={t_off:.6f}s paired-delta={delta:.6f}s")


class TestTracedVsUntraced:
    def test_plan_run_untraced(self, benchmark):
        _, registry, plan, ctx = _build()
        vm = PlanVM(ctx)
        vm.run(plan)  # warm the cache
        result = benchmark(lambda: vm.run(plan))
        assert result.flatten()

    def test_plan_run_traced(self, benchmark):
        instrumentation, registry, plan, _ = _build()
        instrumentation.enable_tracing()
        ctx = registry.context(window=WINDOW)
        assert ctx.tracer is not None
        vm = PlanVM(ctx)
        vm.run(plan)  # warm the cache
        result = benchmark(lambda: vm.run(plan))
        assert result.flatten()
        assert instrumentation.recent_traces()
