"""University administration scenario (the section 1 motivating query).

"Retrieve the names of all foreign students who worked more than 20 hours
in any week during the semester" — the semester is an application-specific
calendar that changes every year, so it lives in the CALENDARS catalog,
not in the query.

Also demonstrates an event rule that audits over-limit work records as
they are appended.

Run with::

    python examples/university.py
"""

from repro import CalendarRegistry, CalendarSystem, Database, RuleManager
from repro.catalog import install_standard_calendars, install_us_holidays


def main() -> None:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=20)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2006)
    db = Database(calendars=registry)
    system = db.system

    # Application-specific calendars: the university's semesters.
    registry.define("SPRING_93", values=[
        (system.day_of("Jan 19 1993"), system.day_of("May 14 1993"))],
        granularity="DAYS")
    registry.define("FALL_93", values=[
        (system.day_of("Aug 30 1993"), system.day_of("Dec 17 1993"))],
        granularity="DAYS")

    db.create_table(
        "work_weeks",
        [("student", "text"), ("citizen", "text"),
         ("week_start", "abstime"), ("hours", "int4")],
        valid_time_column="week_start")

    # An event rule audits any >20h week for a foreign student on append.
    manager = RuleManager(db)
    db.create_table("audit", [("msg", "text")])
    manager.declare_event(
        "hours_audit", event="append", relation="work_weeks",
        condition='new.hours > 20 and new.citizen != "US"',
        actions=['append audit (msg = new.student || " logged " '
                 '|| new.hours || "h")'])

    records = [
        ("ana", "MX", "Feb 1 1993", 24),
        ("ana", "MX", "Jun 7 1993", 30),
        ("bo", "CN", "Mar 8 1993", 19),
        ("chad", "US", "Feb 8 1993", 35),
        ("dee", "IN", "Apr 12 1993", 21),
        ("eli", "FR", "Sep 6 1993", 26),
    ]
    for student, citizen, week, hours in records:
        db.insert("work_weeks", student=student, citizen=citizen,
                  week_start=system.day_of(week), hours=hours)

    print("Foreign students working > 20h in any Spring-93 week:")
    print(db.execute(
        'retrieve (w.student, w.hours) from w in work_weeks '
        'where w.hours > 20 and w.citizen != "US" '
        'on SPRING_93').to_table())
    print()

    print("Same question for the Fall semester "
          "(only the calendar changes):")
    print(db.execute(
        'retrieve (w.student, w.hours) from w in work_weeks '
        'where w.hours > 20 and w.citizen != "US" '
        'on FALL_93').to_table())
    print()

    print("Audit log filled by the event rule:")
    print(db.execute("retrieve (a.msg) from a in audit").to_table())
    print()

    print("Weekly workloads starting on a Monday "
          "(calendar predicate in Postquel):")
    print(db.execute(
        'retrieve (w.student, w.week_start) from w in work_weeks '
        'where w.week_start within "Mondays"').to_table())


if __name__ == "__main__":
    main()
