"""Financial application layer: conventions, business days, options, bonds."""

from repro.finance.bonds import Bond, discount_yield, simple_yield
from repro.finance.business import BusinessCalendar
from repro.finance.conventions import (
    PAPER_BOND_CONVENTION,
    Actual365Fixed,
    ActualActual,
    DayCountConvention,
    Thirty360,
)
from repro.finance.options import (
    EXPIRATION_SCRIPT,
    LAST_TRADING_DAY_SCRIPT,
    OptionContract,
    expiration_calendar,
    expiration_date,
    last_trading_day,
)

__all__ = [
    "DayCountConvention", "Thirty360", "Actual365Fixed", "ActualActual",
    "PAPER_BOND_CONVENTION", "BusinessCalendar",
    "OptionContract", "expiration_date", "last_trading_day",
    "expiration_calendar", "EXPIRATION_SCRIPT", "LAST_TRADING_DAY_SCRIPT",
    "Bond", "discount_yield", "simple_yield",
]
