"""End-to-end scenario: a trading back office, every subsystem at once.

Exercises, in a single flow: the CALENDARS catalog, calendar scripts,
option-expiration procedures, Postquel DDL/DML, event rules, temporal
rules driven by DBCRON, regular time series with pattern-triggered
rules, transaction-time history, and JSON persistence.
"""

import pytest

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import Calendar, CalendarSystem
from repro.db import Database
from repro.db.persist import load_database, save_database
from repro.finance import EXPIRATION_SCRIPT, expiration_calendar
from repro.rules import DBCron, RuleManager, SimulatedClock
from repro.timeseries import RegularTimeSeries, register_series


@pytest.fixture(scope="module")
def office():
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=15)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2001)
    db = Database(calendars=registry)
    system = db.system
    manager = RuleManager(db)
    clock = SimulatedClock(now=system.day_of("Nov 1 1993"))
    cron = DBCron(manager, clock, period=1)

    # Schema, via the query language only.
    db.execute("create table positions (symbol text, qty int4, "
               "strike float8, expiry abstime) valid time expiry")
    db.execute("create table alerts (day abstime, message text)")
    db.execute("create index on positions (symbol)")

    # Catalog: expirations for 1993 + a rolled settlement calendar.
    registry.define("EXPIRATIONS_93",
                    values=expiration_calendar(registry, 1993),
                    granularity="DAYS")
    registry.define_procedure("expiration", ["Expiration-Month"],
                              EXPIRATION_SCRIPT)

    # Market data series for pattern triggers.
    base = system.day_of("Nov 1 1993")
    days = Calendar.from_intervals([(base + i, base + i)
                                    for i in range(20)])
    closes = [460 + (i % 5) - (i % 7) + i * 0.3 for i in range(20)]
    register_series(registry, RegularTimeSeries(days, closes,
                                                name="spx"))
    return db, manager, clock, cron


class TestTradingBackOffice:
    def test_01_positions_and_event_rule(self, office):
        db, manager, clock, cron = office
        manager.define_event_rule(
            "big_position_audit", "append", "positions",
            condition="new.qty > 100",
            actions=['append alerts (day = new.expiry, '
                     'message = "big position " || new.symbol)'])
        nov_exp = db.calendars.next_occurrence("EXPIRATIONS_93",
                                               clock.now)
        db.execute(f'append positions (symbol = "SPX", qty = 150, '
                   f'strike = 465.0, expiry = {nov_exp})')
        db.execute(f'append positions (symbol = "OEX", qty = 10, '
                   f'strike = 430.0, expiry = {nov_exp})')
        alerts = db.execute("retrieve (a.message) from a in alerts")
        assert alerts.column("message") == ["big position SPX"]

    def test_02_positions_queryable_on_expiration_calendar(self, office):
        db, *_ = office
        result = db.execute(
            "retrieve (p.symbol) from p in positions "
            "on EXPIRATIONS_93 order by symbol")
        assert result.column("symbol") == ["OEX", "SPX"]

    def test_03_temporal_rules_fire_through_november(self, office):
        db, manager, clock, cron = office
        manager.define_temporal_rule(
            "expiry_alert", "EXPIRATIONS_93",
            actions=['append alerts (day = now.t, '
                     'message = "expiration " || now.text)'],
            after=clock.now)
        manager.define_temporal_rule(
            "uptick", 'pattern("spx", "s(t) < s(t+1) and '
                      's(t+1) < s(t+2)")',
            actions=['append alerts (day = now.t, '
                     'message = "momentum")'],
            after=clock.now)
        cron.run_until(db.system.day_of("Dec 1 1993"))
        messages = db.execute(
            "retrieve (a.message) from a in alerts").column("message")
        assert "expiration Nov 19 1993" in messages
        assert "momentum" in messages

    def test_04_history_shows_prior_state(self, office):
        db, *_ = office
        before = db.current_xact()
        db.execute('replace p (qty = 0) from p in positions '
                   'where p.symbol = "SPX"')
        now_qty = db.execute(
            'retrieve (p.qty) from p in positions '
            'where p.symbol = "SPX"').rows[0]["qty"]
        old_qty = db.execute(
            f'retrieve (p.qty) from p in positions as of {before} '
            'where p.symbol = "SPX"').rows[0]["qty"]
        assert (now_qty, old_qty) == (0, 150)

    def test_05_procedure_matches_stored_calendar(self, office):
        db, *_ = office
        registry = db.calendars
        via_procedure = registry.eval_expression(
            "expiration([11]/MONTHS:during:1993/YEARS)")
        stored = registry.evaluate("EXPIRATIONS_93")
        assert via_procedure.elements[0] in stored.elements

    def test_06_persistence_roundtrip(self, office, tmp_path):
        db, *_ = office
        path = tmp_path / "office.json"
        report = save_database(db, str(path))
        assert report.relations >= 2
        assert report.temporal_rules >= 1
        loaded = load_database(str(path))
        assert loaded.execute(
            "retrieve (count()) from p in positions").rows[0]["count()"] \
            == 2
        # The reloaded catalog still evaluates the expiration calendar.
        cal = loaded.calendars.evaluate("EXPIRATIONS_93")
        assert len(cal) == 12

    def test_07_rule_catalog_consistent(self, office):
        db, manager, *_ = office
        info_names = set(db.execute(
            "retrieve (r.rulename) from r in rule_info").column(
            "rulename"))
        assert info_names == set(manager.temporal_rules)
