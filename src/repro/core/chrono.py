"""Proleptic-Gregorian chronology on the zero-skipping day axis.

The paper anchors all basic calendars at a configurable *system start date*
(its section 3.2 example uses January 1, 1987): day ``1`` is the epoch date,
day ``366`` is January 1, 1988, and the day before the epoch is day ``-1``
(there is no day 0).

This module implements the civil (Gregorian) calendar from first principles
— leap-year rule, month lengths, date <-> serial-number conversion using
Howard Hinnant's ``days_from_civil`` algorithm — so that the library does
not depend on :mod:`datetime` for its core arithmetic.  The test-suite
cross-checks every conversion against :class:`datetime.date` as an oracle.

Weekdays follow the paper's convention: Monday is 1 and Sunday is 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import ChronologyError
from repro.core.interval import axis_add, axis_diff

__all__ = [
    "CivilDate",
    "is_leap_year",
    "days_in_month",
    "days_in_year",
    "rata_die",
    "civil_from_rata_die",
    "weekday",
    "parse_date",
    "MONTH_NAMES",
    "MONTH_ABBREVS",
    "Epoch",
]

MONTH_NAMES = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)
MONTH_ABBREVS = tuple(name[:3] for name in MONTH_NAMES)

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def is_leap_year(year: int) -> bool:
    """Gregorian leap-year rule."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_month(year: int, month: int) -> int:
    """Length of ``month`` (1-12) in ``year``."""
    if not 1 <= month <= 12:
        raise ChronologyError(f"month out of range: {month}")
    if month == 2 and is_leap_year(year):
        return 29
    return _DAYS_IN_MONTH[month - 1]


def days_in_year(year: int) -> int:
    """Length of a civil year (365 or 366)."""
    return 366 if is_leap_year(year) else 365


@dataclass(frozen=True, slots=True, order=True)
class CivilDate:
    """A proleptic-Gregorian calendar date."""

    year: int
    month: int
    day: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise ChronologyError(f"month out of range: {self.month}")
        if not 1 <= self.day <= days_in_month(self.year, self.month):
            raise ChronologyError(
                f"day out of range for {self.year}-{self.month:02d}: {self.day}")

    def __str__(self) -> str:
        return f"{MONTH_ABBREVS[self.month - 1]} {self.day} {self.year}"

    def replace(self, *, year: int | None = None, month: int | None = None,
                day: int | None = None) -> "CivilDate":
        """A copy with the given fields substituted."""
        return CivilDate(year if year is not None else self.year,
                         month if month is not None else self.month,
                         day if day is not None else self.day)


def rata_die(date: CivilDate) -> int:
    """Serial day number of ``date``; day 0 is 1970-01-01 (Hinnant).

    This is an ordinary integer (it *does* use 0) — only the public axis
    numbers skip zero.
    """
    y = date.year - (date.month <= 2)
    era = (y if y >= 0 else y - 399) // 400
    yoe = y - era * 400
    m = date.month
    doy = (153 * (m + (-3 if m > 2 else 9)) + 2) // 5 + date.day - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def civil_from_rata_die(serial: int) -> CivilDate:
    """Inverse of :func:`rata_die`."""
    z = serial + 719468
    era = (z if z >= 0 else z - 146096) // 146097
    doe = z - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    y = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    d = doy - (153 * mp + 2) // 5 + 1
    m = mp + (3 if mp < 10 else -9)
    return CivilDate(y + (m <= 2), m, d)


def weekday(date: CivilDate) -> int:
    """ISO weekday of ``date``: Monday = 1 … Sunday = 7 (paper convention)."""
    return (rata_die(date) + 3) % 7 + 1


def parse_date(text: str) -> CivilDate:
    """Parse the paper's date spelling, e.g. ``"Jan 1 1987"``.

    Accepted forms: ``"Jan 1 1987"``, ``"January 1, 1987"``,
    ``"1987-01-01"``.
    """
    text = text.strip()
    if "-" in text and text.replace("-", "").isdigit():
        parts = text.split("-")
        if len(parts) != 3:
            raise ChronologyError(f"cannot parse date {text!r}")
        return CivilDate(int(parts[0]), int(parts[1]), int(parts[2]))
    tokens = text.replace(",", " ").split()
    if len(tokens) != 3:
        raise ChronologyError(f"cannot parse date {text!r}")
    month_token = tokens[0].capitalize()
    month = None
    for i, (abbrev, name) in enumerate(zip(MONTH_ABBREVS, MONTH_NAMES), start=1):
        if month_token in (abbrev, name):
            month = i
            break
    if month is None:
        raise ChronologyError(f"unknown month in date {text!r}")
    try:
        day, year = int(tokens[1]), int(tokens[2])
    except ValueError:
        raise ChronologyError(f"cannot parse date {text!r}") from None
    return CivilDate(year, month, day)


def _as_date(value: "CivilDate | str") -> CivilDate:
    if isinstance(value, CivilDate):
        return value
    if isinstance(value, str):
        return parse_date(value)
    raise ChronologyError(f"expected a date or date string, got {value!r}")


@dataclass(frozen=True, slots=True)
class Epoch:
    """The system start date anchoring the day axis.

    ``day_number(epoch.date) == 1``; the day before the epoch is ``-1``.
    """

    date: CivilDate

    @classmethod
    def of(cls, value: "CivilDate | str") -> "Epoch":
        return cls(_as_date(value))

    @property
    def serial(self) -> int:
        return rata_die(self.date)

    # -- day-number conversions --------------------------------------------

    def day_number(self, date: "CivilDate | str") -> int:
        """Axis day number of ``date`` (1-based from the epoch, skipping 0)."""
        diff = rata_die(_as_date(date)) - self.serial
        return diff + 1 if diff >= 0 else diff

    def date_of(self, day: int) -> CivilDate:
        """Civil date of axis day number ``day``."""
        if day == 0:
            raise ChronologyError("day 0 does not exist on the axis")
        diff = day - 1 if day > 0 else day
        return civil_from_rata_die(self.serial + diff)

    def weekday_of(self, day: int) -> int:
        """Weekday (Mon=1 … Sun=7) of axis day ``day``."""
        return weekday(self.date_of(day))

    # -- structured iteration ------------------------------------------------

    def days_of_year(self, year: int) -> tuple[int, int]:
        """Axis day numbers of the first and last day of ``year``."""
        first = self.day_number(CivilDate(year, 1, 1))
        last = self.day_number(CivilDate(year, 12, 31))
        return first, last

    def days_of_month(self, year: int, month: int) -> tuple[int, int]:
        """Axis day numbers of the first and last day of ``year-month``."""
        first = self.day_number(CivilDate(year, month, 1))
        last = self.day_number(CivilDate(year, month, days_in_month(year, month)))
        return first, last

    def iter_days(self, start: int, end: int) -> Iterator[int]:
        """Axis day numbers from ``start`` to ``end`` inclusive, skipping 0."""
        t = start
        while t <= end:
            if t != 0:
                yield t
            t += 1

    def add_days(self, day: int, delta: int) -> int:
        """Move ``delta`` civil days from axis day ``day``."""
        return axis_add(day, delta)

    def diff_days(self, a: int, b: int) -> int:
        """Civil days from axis day ``b`` to axis day ``a``."""
        return axis_diff(a, b)
