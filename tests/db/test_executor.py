"""Unit tests for query execution."""

import pytest

from repro.db import Database, ExecutionError, SchemaError


@pytest.fixture()
def students(db):
    db.create_table("students",
                    [("name", "text"), ("country", "text"),
                     ("week", "abstime"), ("hours", "int4")],
                    valid_time_column="week")
    base = db.system.day_of("Feb 1 1993")  # a Monday
    rows = [("alice", "US", base, 25), ("bo", "CN", base, 22),
            ("cara", "IN", base + 1, 18), ("dan", "FR", base + 7, 30)]
    for name, country, week, hours in rows:
        db.insert("students", name=name, country=country, week=week,
                  hours=hours)
    return db


class TestRetrieve:
    def test_projection(self, students):
        result = students.execute(
            "retrieve (s.name) from s in students")
        assert result.columns == ["name"]
        assert result.column("name") == ["alice", "bo", "cara", "dan"]

    def test_where_filter(self, students):
        result = students.execute(
            'retrieve (s.name) from s in students '
            'where s.hours > 20 and s.country != "US"')
        assert result.column("name") == ["bo", "dan"]

    def test_computed_target_with_alias(self, students):
        result = students.execute(
            "retrieve (s.hours * 2 as double) from s in students "
            'where s.name = "alice"')
        assert result.rows[0]["double"] == 50

    def test_join(self, students):
        students.create_table("countries",
                              [("code", "text"), ("label", "text")])
        students.insert("countries", code="US", label="United States")
        students.insert("countries", code="CN", label="China")
        result = students.execute(
            "retrieve (s.name, c.label) from s in students, "
            "c in countries where s.country = c.code")
        assert sorted((r["name"], r["label"]) for r in result.rows) == [
            ("alice", "United States"), ("bo", "China")]

    def test_or_and_not(self, students):
        result = students.execute(
            'retrieve (s.name) from s in students '
            'where s.country = "FR" or not s.hours >= 20')
        assert result.column("name") == ["cara", "dan"]

    def test_result_table_rendering(self, students):
        result = students.execute(
            "retrieve (s.name, s.hours) from s in students "
            'where s.name = "bo"')
        table = result.to_table()
        assert "name" in table and "bo" in table and "22" in table

    def test_no_from_clause(self, students):
        result = students.execute("retrieve (1 + 2 as three)")
        assert result.rows == [{"three": 3}]


class TestAggregates:
    def test_count(self, students):
        result = students.execute(
            "retrieve (count()) from s in students")
        assert result.rows[0]["count()"] == 4

    def test_sum_avg_min_max(self, students):
        result = students.execute(
            "retrieve (sum(s.hours) as total, avg(s.hours) as mean, "
            "min(s.hours) as lo, max(s.hours) as hi) from s in students")
        row = result.rows[0]
        assert row["total"] == 95
        assert row["mean"] == pytest.approx(23.75)
        assert (row["lo"], row["hi"]) == (18, 30)

    def test_aggregate_with_where(self, students):
        result = students.execute(
            "retrieve (count()) from s in students where s.hours > 20")
        assert result.rows[0]["count()"] == 3

    def test_aggregate_of_empty(self, students):
        result = students.execute(
            "retrieve (sum(s.hours) as t) from s in students "
            "where s.hours > 99")
        assert result.rows[0]["t"] is None

    def test_aggregate_mixed_with_plain_rejected(self, students):
        with pytest.raises(ExecutionError):
            students.execute(
                "retrieve (s.name, count(s.hours)) from s in students")


class TestCalendarIntegration:
    def test_within_operator(self, students):
        result = students.execute(
            'retrieve (s.name) from s in students '
            'where s.week within "Mondays"')
        assert result.column("name") == ["alice", "bo", "dan"]

    def test_member_function(self, students):
        result = students.execute(
            'retrieve (s.name) from s in students '
            'where member(s.week, "Tuesdays")')
        assert result.column("name") == ["cara"]

    def test_on_calendar_clause(self, students):
        result = students.execute(
            'retrieve (s.name) from s in students on Mondays')
        assert result.column("name") == ["alice", "bo", "dan"]

    def test_on_expression_text(self, students):
        result = students.execute(
            'retrieve (s.name) from s in students '
            'on "[2]/DAYS:during:WEEKS"')
        assert result.column("name") == ["cara"]

    def test_on_requires_valid_time_column(self, students):
        students.create_table("plain", [("x", "int4")])
        students.insert("plain", x=1)
        with pytest.raises(ExecutionError):
            students.execute("retrieve (p.x) from p in plain on Mondays")

    def test_calendar_bridge_functions(self, students):
        day = students.system.day_of("Jan 1 1993")
        result = students.execute(
            f'retrieve (date_text({day}) as d, weekday({day}) as w, '
            f'next_in("Mondays", {day}) as nm)')
        row = result.rows[0]
        assert row["d"] == "Jan 1 1993"
        assert row["w"] == 5
        assert str(students.system.date_of(row["nm"])) == "Jan 4 1993"

    def test_calendar_valued_operator(self, students):
        result = students.execute(
            'retrieve (calendar("Mondays") * calendar("Weekdays") as c)')
        cal = result.rows[0]["c"]
        assert all(students.system.epoch.weekday_of(iv.lo) == 1
                   for iv in cal.iter_intervals())


class TestMutations:
    def test_append(self, students):
        students.execute('append students (name = "eve", hours = 5)')
        assert len(students.relation("students")) == 5

    def test_replace(self, students):
        result = students.execute(
            "replace s (hours = s.hours + 1) from s in students "
            "where s.hours >= 25")
        assert result.affected == 2
        hours = students.execute(
            'retrieve (s.hours) from s in students where s.name = "dan"')
        assert hours.rows[0]["hours"] == 31

    def test_delete(self, students):
        result = students.execute(
            'delete s from s in students where s.country = "US"')
        assert result.affected == 1
        assert len(students.relation("students")) == 3

    def test_delete_implicit_range_var(self, students):
        result = students.execute("delete students")
        assert result.affected == 4
        assert len(students.relation("students")) == 0


class TestIndexUse:
    def test_equality_probe_via_index(self, students):
        students.create_index("students", "name")
        result = students.execute(
            'retrieve (s.hours) from s in students where s.name = "cara"')
        assert result.rows[0]["hours"] == 18

    def test_index_maintained_on_mutations(self, students):
        students.create_index("students", "name")
        students.execute('append students (name = "zed", hours = 1)')
        students.execute(
            'replace s (hours = 2) from s in students where s.name = "zed"')
        result = students.execute(
            'retrieve (s.hours) from s in students where s.name = "zed"')
        assert result.rows[0]["hours"] == 2
        students.execute('delete s from s in students where s.name = "zed"')
        result = students.execute(
            'retrieve (s.hours) from s in students where s.name = "zed"')
        assert result.rows == []


class TestSystemCatalogs:
    def test_pg_class_lists_tables(self, students):
        result = students.execute(
            'retrieve (c.relname) from c in pg_class '
            'where c.relkind = "heap"')
        assert "students" in result.column("relname")

    def test_pg_attribute_lists_columns(self, students):
        result = students.execute(
            'retrieve (a.attname) from a in pg_attribute '
            'where a.relname = "students"')
        assert set(result.column("attname")) == {
            "name", "country", "week", "hours"}

    def test_drop_table_cleans_catalog(self, students):
        students.create_table("temp", [("x", "int4")])
        students.drop_table("temp")
        result = students.execute(
            'retrieve (c.relname) from c in pg_class '
            'where c.relname = "temp"')
        assert result.rows == []
        with pytest.raises(SchemaError):
            students.relation("temp")

    def test_cannot_drop_system_relation(self, students):
        with pytest.raises(SchemaError):
            students.drop_table("pg_class")


class TestErrors:
    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            db.execute("retrieve (x.a) from x in missing")

    def test_unbound_variable(self, students):
        with pytest.raises(ExecutionError):
            students.execute(
                "retrieve (t.name) from s in students")

    def test_unknown_column(self, students):
        with pytest.raises(ExecutionError):
            students.execute("retrieve (s.salary) from s in students")

    def test_unknown_function(self, students):
        with pytest.raises(ExecutionError):
            students.execute(
                "retrieve (mystery(s.hours)) from s in students")

    def test_type_error_in_operator(self, students):
        with pytest.raises(ExecutionError):
            students.execute(
                'retrieve (s.hours) from s in students '
                'where s.name + 1 = 2')

    def test_within_requires_int(self, students):
        with pytest.raises(ExecutionError):
            students.execute(
                'retrieve (s.name) from s in students '
                'where s.name within "Mondays"')


class TestPredicatePushdown:
    """Join results must be unchanged by early conjunct evaluation."""

    @pytest.fixture()
    def join_db(self, db):
        db.create_table("a_rel", [("k", "int4"), ("tag", "text")])
        db.create_table("b_rel", [("k", "int4"), ("val", "int4")])
        for k in range(6):
            db.insert("a_rel", k=k, tag="even" if k % 2 == 0 else "odd")
            db.insert("b_rel", k=k, val=k * 10)
        return db

    def test_join_with_mixed_conjuncts(self, join_db):
        result = join_db.execute(
            "retrieve (a.k, b.val) from a in a_rel, b in b_rel "
            'where a.tag = "even" and b.val > 10 and a.k = b.k')
        assert sorted((r["k"], r["val"]) for r in result.rows) == \
            [(2, 20), (4, 40)]

    def test_constant_conjunct(self, join_db):
        result = join_db.execute(
            "retrieve (a.k) from a in a_rel where 1 = 2 and a.k = 0")
        assert result.rows == []

    def test_or_predicates_not_split(self, join_db):
        # OR terms must not be pushed down independently.
        result = join_db.execute(
            "retrieve (a.k as ak, b.k as bk) from a in a_rel, "
            "b in b_rel where (a.k = 0 or b.k = 5) and a.k = b.k")
        assert sorted((r["ak"], r["bk"]) for r in result.rows) == \
            [(0, 0), (5, 5)]

    def test_cross_product_without_where(self, join_db):
        result = join_db.execute(
            "retrieve (count()) from a in a_rel, b in b_rel")
        assert result.rows[0]["count()"] == 36


class TestExplain:
    @pytest.fixture()
    def ex_db(self, db):
        db.execute("create table t1 (k int4, v text) valid time k")
        db.execute("create table t2 (k int4)")
        db.execute("create index on t1 (k)")
        return db

    def test_index_probe_reported(self, ex_db):
        plan = ex_db.explain(
            "retrieve (a.v) from a in t1 where a.k = 5")
        assert "index probe on t1.k" in plan

    def test_sequential_scan_reported(self, ex_db):
        plan = ex_db.explain(
            "retrieve (a.v) from a in t1 where a.v = \"x\"")
        assert "sequential scan" in plan

    def test_pushdown_placement_shown(self, ex_db):
        plan = ex_db.explain(
            "retrieve (a.v) from a in t1, b in t2 "
            'where a.v = "x" and b.k = a.k')
        lines = plan.splitlines()
        assert 'filter: (a.v = "x")' in lines[1]
        assert "(b.k = a.k)" in plan.splitlines()[3]

    def test_as_of_scan_reported(self, ex_db):
        plan = ex_db.explain(
            "retrieve (a.v) from a in t1 as of 3")
        assert "historical scan" in plan

    def test_post_steps_reported(self, ex_db):
        plan = ex_db.explain(
            "retrieve unique into sink (a.v) from a in t1 "
            "on Mondays order by v desc")
        assert "post: unique" in plan
        assert "order by v" in plan
        assert "materialise into sink" in plan
        assert "valid-time restriction" in plan

    def test_constant_result(self, ex_db):
        assert ex_db.explain("retrieve (1 + 1 as two)") == \
            "-> constant result"

    def test_non_retrieve_rejected(self, ex_db):
        with pytest.raises(ExecutionError):
            ex_db.explain("append t2 (k = 1)")
