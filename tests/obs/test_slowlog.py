"""Slow-query log: threshold edge cases and Session integration."""

from __future__ import annotations

import pytest

from repro.obs.instrument import Instrumentation
from repro.obs.telemetry import SlowQueryLog, TelemetryPipeline
from repro.session import Session


class TestThresholdEdges:
    def test_exactly_at_threshold_is_recorded(self):
        """The threshold is inclusive: duration == threshold captures."""
        log = SlowQueryLog(0.5)
        assert log.maybe_record("X", 0.5) is not None
        assert log.captured == 1

    def test_just_below_threshold_is_not(self):
        log = SlowQueryLog(0.5)
        assert log.maybe_record("X", 0.4999) is None
        assert log.captured == 0

    def test_zero_threshold_captures_everything(self):
        log = SlowQueryLog(0.0)
        assert log.maybe_record("X", 0.0) is not None

    def test_none_threshold_disables(self):
        log = SlowQueryLog(None)
        assert not log.enabled
        assert log.maybe_record("X", 1e9) is None

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-0.1)

    def test_ring_bounded_but_captured_total_kept(self):
        log = SlowQueryLog(0.0, capacity=2)
        for i in range(5):
            log.maybe_record(f"q{i}", 1.0)
        assert [r.source for r in log.records()] == ["q3", "q4"]
        assert log.captured == 5

    def test_callable_plan_text_lazily_invoked(self):
        calls = []
        log = SlowQueryLog(0.5)
        log.maybe_record("fast", 0.1,
                         plan_text=lambda: calls.append("fast"))
        record = log.maybe_record("slow", 1.0, plan_text=lambda: (
            calls.append("slow"), "PLAN")[1])
        assert calls == ["slow"]  # never rendered for the fast one
        assert record.plan_text == "PLAN"

    def test_failing_plan_text_swallowed(self):
        def boom():
            raise RuntimeError("cannot compile")

        record = SlowQueryLog(0.0).maybe_record("bad (", 1.0,
                                                plan_text=boom)
        assert record is not None
        assert record.plan_text is None

    def test_record_emits_pipeline_event(self):
        pipeline = TelemetryPipeline()
        log = SlowQueryLog(0.0, pipeline=pipeline)
        log.maybe_record("X", 0.25, via="eval")
        (event,) = pipeline.events("slowquery")
        assert event.fields["source"] == "X"
        assert event.fields["duration_s"] == 0.25


class TestSessionCapture:
    def test_eval_records_below_threshold_nothing(self):
        session = Session(slow_query_threshold=1e9)
        session.eval("[1]/MONTHS:during:1993/YEARS")
        assert session.slow_queries() == []

    def test_eval_records_with_forced_low_threshold(self):
        session = Session(slow_query_threshold=0.0)
        session.eval("[1]/MONTHS:during:1993/YEARS")
        records = session.slow_queries()
        assert len(records) == 1
        record = records[0]
        assert record.source == "[1]/MONTHS:during:1993/YEARS"
        assert record.via == "eval"
        assert record.duration_s >= 0.0
        assert record.plan_text  # compiled plan rendering captured
        assert "generate" in record.plan_text.lower() or \
            "plan" in record.plan_text.lower()
        assert record.window is not None
        assert "requests" in record.cache_stats

    def test_capture_works_with_tracing_disabled(self):
        """The threshold must not depend on tracing being on."""
        # A private bundle: immune to REPRO_TRACE=1 CI passes and to
        # other tests flipping the process-default tracing switch.
        session = Session(slow_query_threshold=0.0,
                          instrumentation=Instrumentation())
        assert not session.instrumentation.tracing
        session.eval("WEEKS:during:1993/YEARS")
        (record,) = session.slow_queries()
        assert record.trace is None

    def test_capture_attaches_trace_when_tracing(self):
        session = Session(slow_query_threshold=0.0,
                          instrumentation=Instrumentation())
        session.instrumentation.enable_tracing()
        session.eval("WEEKS:during:1993/YEARS")
        (record,) = session.slow_queries()
        assert record.trace is not None
        assert record.trace["name"]

    def test_eval_many_batch_produces_records(self):
        """The acceptance shape: a 32-script batch, threshold forced low."""
        session = Session(slow_query_threshold=0.0, workers=4)
        scripts = [f"[{i}]/DAYS:during:[1]/MONTHS:during:1993/YEARS"
                   for i in range(1, 17)] + \
                  [f"[{i}]/WEEKS:during:1993/YEARS" for i in range(1, 17)]
        assert len(scripts) == 32
        results = session.eval_many(scripts)
        assert len(results) == 32
        records = session.slow_queries()
        assert len(records) >= 1
        assert any(r.via == "eval_many" for r in records)

    def test_failed_eval_still_recorded_with_error(self):
        session = Session(slow_query_threshold=0.0)
        with pytest.raises(Exception):
            session.eval("NO_SUCH_CALENDAR_ANYWHERE + 1")
        records = [r for r in session.slow_queries() if r.error]
        assert records, "failing evaluations must still capture"

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOWLOG_SECONDS", "0.0")
        session = Session()
        assert session.slowlog.enabled
        assert session.slowlog.threshold_s == 0.0

    def test_invalid_env_threshold_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOWLOG_SECONDS", "not-a-number")
        session = Session()
        assert not session.slowlog.enabled

    def test_cli_slowlog_command(self):
        from repro.cli import Session as CliSession

        session = CliSession.__new__(CliSession)
        Session.__init__(session, slow_query_threshold=0.0)
        session.window = None
        assert "no queries" in session.run_line("\\slowlog")
        session.run_line("[1]/MONTHS:during:1993/YEARS")
        out = session.run_line("\\slowlog")
        assert "slow quer" in out
        assert "[1]/MONTHS" in out
        assert "cleared" in session.run_line("\\slowlog clear")
        assert "no queries" in session.run_line("\\slowlog")

    def test_cli_slowlog_disabled_message(self):
        from repro.cli import Session as CliSession

        session = CliSession()
        assert "disabled" in session.run_line("\\slowlog")
