"""The unified entry point: one object wiring the whole stack together.

A :class:`Session` constructs (or adopts) the calendar registry, the
database, the rule manager, the simulated clock and the DBCRON daemon
*together*, attaching one :class:`~repro.obs.instrument.Instrumentation`
to all of them.  It is the recommended facade for programmatic use::

    from repro import Session

    session = Session("Jan 1 1987")
    cal = session.eval("[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS")
    print(session.explain("AM_BUS_DAYS - HOLIDAYS").render())
    profile = session.profile("[22]/DAYS:during:MONTHS")
    print(profile.render())

The individual constructors (:class:`~repro.catalog.CalendarRegistry`,
:class:`~repro.db.Database`, :class:`~repro.rules.RuleManager`, …) keep
working unchanged; a session merely saves the boilerplate of wiring them
and gives observability (``explain`` / ``profile`` / ``metrics``) one
obvious home.
"""

from __future__ import annotations

import difflib
import gc
import os
import sys
import threading
import time

from dataclasses import dataclass, field
from time import perf_counter

try:
    import resource
except ImportError:  # pragma: no cover — non-POSIX platforms
    resource = None

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import columnar
from repro.core.basis import CalendarSystem
from repro.core.matcache import MaterialisationCache
from repro.db import Database
from repro.db import vector as db_vector
from repro.errors import ReproError
from repro.lang.errors import ParseError, PlanError
from repro.lang.factorizer import factorize
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_expression, parse_script
from repro.lang.optimizer import optimize_plan
from repro.lang.plan import PeriodicStep, Plan, PlanVM
from repro.lang.planner import compile_expression
from repro.obs.httpd import TelemetryServer
from repro.obs.instrument import Instrumentation
from repro.obs.export import export_json
from repro.obs.profiler import SamplingProfiler
from repro.obs.promexport import render_prometheus, spans_to_otlp
from repro.obs.slo import SLOMonitor
from repro.obs.telemetry import SlowQuery, SlowQueryLog, TelemetryPipeline
from repro.obs.tracer import Span, Tracer
from repro.rules import DBCron, RuleManager, RulesFacade, SimulatedClock
from repro.runtime import WorkerPool

__all__ = ["Session", "Explanation", "Profile"]


@dataclass
class Explanation:
    """The annotated evaluation strategy of a calendar expression."""

    #: The expression (or calendar name) that was explained.
    source: str
    #: Rendering of the factorized expression actually evaluated.
    factored: str
    #: Factorizer rewrites applied, in application order.
    rewrites: list[str] = field(default_factory=list)
    #: The compiled evaluation plan *before* optimisation, or None when
    #: the expression can only run through the interpreter.
    plan: Plan | None = None
    #: Why there is no plan (empty when there is one).
    note: str = ""
    #: Whether the optimizer pass ran (``Session.explain(optimized=)``).
    optimized: bool = False
    #: The plan after the optimizer pass (None when ``optimized`` is
    #: False or there is no plan at all).
    opt_plan: Plan | None = None
    #: Optimizer rewrites applied, in application order ("cse: ...").
    opt_rewrites: list[str] = field(default_factory=list)
    #: Steps removed by CSE + dead-code elimination.
    eliminated: int = 0
    #: Per-register cardinality estimates ("t3" -> "~360 ivs").
    costs: dict = field(default_factory=dict)
    #: Execution backend the optimizer chose: "periodic" when the plan
    #: was replaced by a compiled PeriodicStep, else "materialising
    #: chain" (empty when unknown, e.g. interpreter fallback).
    backend: str = ""

    def diff(self) -> str:
        """Unified diff between the pre- and post-optimisation plans."""
        if self.plan is None or self.opt_plan is None:
            return ""
        before = self.plan.text().splitlines()
        after = self.opt_plan.text().splitlines()
        return "\n".join(difflib.unified_diff(
            before, after, fromfile="plan", tofile="optimized",
            lineterm=""))

    def _plan_lines(self, plan: Plan, annotate: bool) -> list[str]:
        lines = []
        for step in plan.steps:
            cost = self.costs.get(step.target) if annotate else None
            suffix = f"   -- {cost}" if cost else ""
            lines.append(f"  {step.describe()}{suffix}")
        lines.append(f"  return {plan.result}")
        return lines

    def render(self) -> str:
        """Readable multi-line rendering of the whole strategy."""
        lines = [f"expression : {self.source}"]
        if self.factored != self.source:
            lines.append(f"factorized : {self.factored}")
        for rewrite in self.rewrites:
            lines.append(f"  rewrite  : {rewrite}")
        if self.plan is not None:
            lines.append(f"plan ({len(self.plan)} steps):")
            lines.extend(self._plan_lines(self.plan, annotate=False))
            if self.optimized and self.opt_plan is not None:
                for rewrite in self.opt_rewrites:
                    lines.append(f"  rewrite  : {rewrite}")
                lines.append(
                    f"optimized plan ({len(self.opt_plan)} steps, "
                    f"{self.eliminated} eliminated):")
                lines.extend(self._plan_lines(self.opt_plan, annotate=True))
                delta = self.diff()
                if delta:
                    lines.append("diff:")
                    lines.extend(f"  {line}"
                                 for line in delta.splitlines())
        else:
            lines.append(f"plan       : none ({self.note or 'interpreter'})")
        if self.backend:
            lines.append(f"backend    : {self.backend}")
        return "\n".join(lines)


@dataclass
class Profile:
    """A timed execution: the span tree of one traced evaluation."""

    #: The expression/script that was profiled.
    source: str
    #: Root span of the traced run ("session.profile").
    root: Span
    #: The evaluation result (usually a Calendar).
    result: object = None

    def steps(self) -> list[Span]:
        """The per-opcode plan VM spans, in execution order."""
        return [span for span in self.root.walk()
                if span.name.startswith("plan.step.")]

    @property
    def coverage(self) -> float:
        """Share of the root's wall time covered by leaf spans.

        Zero-duration point events (``tracer.event``) are annotations,
        not time accounting: a span whose only children are point events
        still counts as a timed leaf.
        """
        total = self.root.duration
        if total <= 0.0:
            return 1.0

        def covered(span: Span) -> float:
            timed = [c for c in span.children
                     if c.children or c.duration > 0.0]
            if not timed:
                return span.duration
            return sum(covered(child) for child in timed)

        return min(1.0, covered(self.root) / total)

    def render(self) -> str:
        """The per-step timing tree (ms and share of total)."""
        return self.root.tree()


@dataclass
class _BatchJob:
    """One unique script of an ``eval_many`` batch, pre-planned."""

    kind: str                     #: "defined" | "expression" | "script"
    text: str
    record: object = None         #: catalog record (defined names)
    factored: object = None       #: factorized AST (expressions)
    plan: Plan | None = None      #: compiled plan when one exists
    parsed: object = None         #: parsed Script (script jobs)
    error: Exception | None = None  #: planning-phase failure, raised later


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in (
        "1", "true", "yes", "on")


class Session:
    """Registry + database + rules + clock behind one constructor.

    ``Session(epoch)`` builds the full stack with the standard calendars
    installed; ``Session(database=db)`` adopts an existing database (and
    its registry) instead — both leave every component reachable as an
    attribute (``registry``, ``db``, ``manager``, ``clock``, ``cron``)
    so existing code keeps working underneath the facade.
    """

    def __init__(self, epoch: str = "Jan 1 1987", *,
                 system: CalendarSystem | None = None,
                 registry: CalendarRegistry | None = None,
                 database: Database | None = None,
                 horizon_years: int = 30,
                 standard_calendars: bool = True,
                 holiday_years: tuple[int, int] | None = None,
                 clock_start: int = 1, cron_period: int = 7,
                 matcache: MaterialisationCache | None = None,
                 instrumentation: Instrumentation | None = None,
                 workers: int | None = None,
                 telemetry: bool = False,
                 telemetry_port: int | None = None,
                 slow_query_threshold: float | None = None,
                 optimize: bool | None = None,
                 periodic: bool | None = None,
                 vector_db: bool | None = None,
                 scheduler: str | None = None,
                 wheel_shards: int | None = None,
                 throttle=None) -> None:
        self._explicit_instrumentation = instrumentation
        #: Tri-state optimizer override: None defers to the registry's
        #: own default (the ``REPRO_OPTIMIZE`` env var, on by default).
        self._optimize = optimize
        #: Tri-state periodic-compilation override: None defers to the
        #: registry's own default (``REPRO_PERIODIC``, on by default).
        self._periodic = periodic
        # Tri-state vectorized-executor override: None defers to the
        # process-wide ``REPRO_VECTOR_DB`` gate (on by default).  The
        # gate is module-global — the executor consults it per
        # statement — so this flips it for the process, like setting
        # the env var would.
        if vector_db is not None:
            db_vector.set_enabled(bool(vector_db))
        #: Worker pool shared by ``eval_many`` and the DBCRON daemon;
        #: sized by ``workers`` (default: the ``REPRO_WORKERS`` env var,
        #: falling back to 1 = fully sequential).  Lazy: no threads are
        #: started until the first parallel dispatch.
        self.pool = WorkerPool(workers)
        #: DBCRON scheduler selection: "wheel"/"heap" (None = the
        #: ``REPRO_WHEEL`` env var, wheel by default) and the wheel's
        #: shard count (None = the pool size).
        self._scheduler = scheduler
        self._wheel_shards = wheel_shards
        #: Optional per-tenant admission control shared by the manager
        #: (registration budgets) and the daemon (fire shedding).
        self.throttle = throttle
        if database is None:
            if registry is None:
                registry = CalendarRegistry(
                    system or CalendarSystem.starting(epoch),
                    default_horizon_years=horizon_years,
                    matcache=matcache,
                    instrumentation=instrumentation,
                    optimize=optimize,
                    periodic=periodic)
                if standard_calendars:
                    install_standard_calendars(registry)
                if holiday_years is not None:
                    install_us_holidays(registry, *holiday_years)
            database = Database(calendars=registry)
        #: Telemetry pipeline (None until enabled) and its HTTP server.
        self.telemetry: TelemetryPipeline | None = None
        self.server: TelemetryServer | None = None
        if telemetry_port is None:
            telemetry_port = _env_int("REPRO_TELEMETRY_PORT")
        if slow_query_threshold is None:
            slow_query_threshold = _env_float("REPRO_SLOWLOG_SECONDS")
        #: Slow-query log; disabled while the threshold is None.
        self.slowlog = SlowQueryLog(slow_query_threshold)
        #: Wall-clock construction time, backing ``process.uptime_seconds``.
        self._started_wall = time.time()
        #: Lazily constructed continuous profiler (``session.profiler``).
        self._profiler: SamplingProfiler | None = None
        #: The installed SLO monitor, if any (``install_slos``).
        self.slo: SLOMonitor | None = None
        self.attach_database(database, clock_start=clock_start,
                             cron_period=cron_period)
        if telemetry or telemetry_port is not None:
            self.enable_telemetry()
        if telemetry_port is not None:
            self.start_telemetry_server(telemetry_port)
        if _env_truthy("REPRO_PROFILE"):
            self.profiler.start()

    def attach_database(self, database: Database, *,
                        clock_start: int = 1,
                        cron_period: int = 7) -> None:
        """Adopt a database (e.g. a restored one) as this session's stack.

        Rebuilds the rule manager / clock / DBCRON wiring around it and
        re-points the session attributes; the previous components are
        discarded.
        """
        if self._explicit_instrumentation is not None:
            database.calendars.instrumentation = \
                self._explicit_instrumentation
        if getattr(self, "_optimize", None) is not None:
            database.calendars.optimize = bool(self._optimize)
        if getattr(self, "_periodic", None) is not None:
            database.calendars.periodic = bool(self._periodic)
        previous_cron = getattr(self, "cron", None)
        if previous_cron is not None:
            previous_cron.detach()
        self.db = database
        self.registry = database.calendars
        self.system = self.registry.system
        self.manager = database.rule_manager or RuleManager(database)
        self.manager.throttle = getattr(self, "throttle", None)
        self.clock = SimulatedClock(now=clock_start)
        self.cron = DBCron(self.manager, self.clock, period=cron_period,
                           pool=getattr(self, "pool", None),
                           scheduler=getattr(self, "_scheduler", None),
                           shards=getattr(self, "_wheel_shards", None),
                           throttle=getattr(self, "throttle", None))
        #: The unified rule API (``session.rules.on_calendar(...)``);
        #: reads the manager/daemon through the session, so the same
        #: facade object stays valid across re-attachment.  (Explicit
        #: None check: an empty facade is falsy via ``__len__``.)
        if getattr(self, "rules", None) is None:
            self.rules = RulesFacade(self)
        # Re-point an already enabled pipeline at the adopted stack.
        pipeline = getattr(self, "telemetry", None)
        if pipeline is not None:
            self.instrumentation.attach_telemetry(pipeline)
            self.registry.matcache.pipeline = pipeline
        #: Per-script eval_many latency family, bound once so the hot
        #: path pays one dict lookup per job, not a registry round-trip.
        self._script_seconds = self.instrumentation.metrics.histogram(
            "eval.script_seconds",
            "Per-script eval_many latency, labelled by script text",
            labels=("script",), max_series=128)

    # -- observability -------------------------------------------------------

    @property
    def instrumentation(self) -> Instrumentation:
        """The metrics/tracing attachment point shared by the stack."""
        return self.registry.instrumentation

    def metrics(self) -> dict:
        """Snapshot of every metric: name -> value/summary.

        Includes the process-wide ``columnar.materialisations`` counter —
        how many times a column-backed calendar had to build its element
        tuple (0 means every pipeline stayed on the integer lanes) —
        and refreshed process self-metrics (RSS, GC, threads, uptime).
        """
        self._refresh_process_metrics()
        snapshot = self.instrumentation.metrics.snapshot()
        snapshot["columnar.materialisations"] = columnar.MATERIALISATIONS.value
        return snapshot

    def _refresh_process_metrics(self) -> None:
        """Update the ``process.*`` gauges from live process state.

        Called on every metrics snapshot / Prometheus scrape rather
        than continuously: these are point-in-time readings, and paying
        for them per scrape keeps the idle session at zero overhead.
        """
        metrics = self.instrumentation.metrics
        if resource is not None:
            usage = resource.getrusage(resource.RUSAGE_SELF)
            # ru_maxrss is KiB on Linux, bytes on macOS.
            scale = 1 if sys.platform == "darwin" else 1024
            metrics.gauge(
                "process.rss_bytes",
                "Peak resident set size (ru_maxrss)").set(
                    float(usage.ru_maxrss * scale))
        metrics.gauge(
            "process.threads",
            "Live Python threads").set(float(threading.active_count()))
        metrics.gauge(
            "process.uptime_seconds",
            "Wall seconds since session construction").set(
                time.time() - self._started_wall)
        collections = metrics.gauge(
            "process.gc.collections",
            "Garbage collector runs per generation",
            labels=("generation",))
        collected = metrics.gauge(
            "process.gc.collected",
            "Objects collected per generation",
            labels=("generation",))
        for generation, stats in enumerate(gc.get_stats()):
            collections.labels(str(generation)).set(
                float(stats.get("collections", 0)))
            collected.labels(str(generation)).set(
                float(stats.get("collected", 0)))

    def recent_traces(self) -> list[Span]:
        """Recently finished root spans (requires tracing enabled)."""
        return self.instrumentation.recent_traces()

    def export_json(self, *, traces: bool = True, indent: int = 2) -> str:
        """Metrics (and optionally traces) as a JSON document."""
        return export_json(self.instrumentation, traces=traces,
                           indent=indent)

    def cache_stats(self) -> dict:
        """The shared materialisation cache's counters and latencies."""
        return self.registry.cache_stats()

    # -- telemetry -----------------------------------------------------------

    def enable_telemetry(self, pipeline: TelemetryPipeline | None = None
                         ) -> TelemetryPipeline:
        """Attach a structured event pipeline to the whole stack.

        Wires the (possibly new) pipeline into the instrumentation
        bundle, the materialisation cache, the worker pool and the
        slow-query log, so eval/cache/rule/pool event sites start
        emitting.  Idempotent; returns the live pipeline.
        """
        pipeline = self.instrumentation.attach_telemetry(
            pipeline if pipeline is not None else self.telemetry)
        self.telemetry = pipeline
        self.registry.matcache.pipeline = pipeline
        self.pool.telemetry = pipeline
        self.slowlog.pipeline = pipeline
        return pipeline

    def disable_telemetry(self) -> TelemetryPipeline | None:
        """Detach the pipeline everywhere; hot paths go back to one branch."""
        pipeline = self.instrumentation.detach_telemetry()
        self.telemetry = None
        self.registry.matcache.pipeline = None
        self.pool.telemetry = None
        self.slowlog.pipeline = None
        return pipeline

    def events(self, kind: str | None = None) -> list:
        """Ring-buffered telemetry events (empty while disabled)."""
        if self.telemetry is None:
            return []
        return self.telemetry.events(kind)

    def slow_queries(self) -> list[SlowQuery]:
        """Captured slow-query records, oldest first."""
        return self.slowlog.records()

    def prometheus_text(self) -> str:
        """Every metric in Prometheus text exposition format (0.0.4).

        Labelled families render as proper label sets; histogram buckets
        carry exemplar annotations when tracing has tagged observations.
        Process self-metrics are refreshed per scrape.
        """
        self._refresh_process_metrics()
        return render_prometheus(self.instrumentation.metrics)

    def health(self) -> dict:
        """Liveness summary backing the ``/healthz`` endpoint.

        ``status`` is ``"ok"`` or ``"degraded"`` (with a ``problems``
        list): the daemon running more than two probe periods behind its
        schedule, a closed worker pool, or a violated SLO objective
        (named, with its burn-rate detail) degrade the session.  Cache
        fill is informational.
        """
        problems: list[str] = []
        metrics = self.instrumentation.metrics
        drift_gauge = metrics.get("dbcron.fire_drift_ticks")
        drift = drift_gauge.value if drift_gauge is not None else 0
        if drift > 2 * self.cron.period:
            problems.append(
                f"dbcron {drift:g} ticks behind schedule "
                f"(period {self.cron.period})")
        if not self.pool.alive:
            problems.append("worker pool closed")
        if self.slo is not None:
            problems.extend(self.slo.problems())
        cache = self.registry.matcache
        entries = cache.stats()["entries"]
        out = {
            "status": "ok" if not problems else "degraded",
            "problems": problems,
            "clock": self.clock.now,
            "drift_ticks": drift,
            "pool": {"size": self.pool.size, "alive": self.pool.alive},
            "cache": {
                "entries": entries,
                "maxsize": cache.maxsize,
                "fill": (entries / cache.maxsize) if cache.maxsize else 0.0,
            },
        }
        if self.telemetry is not None:
            out["telemetry"] = {"emitted": self.telemetry.emitted,
                                "dropped": self.telemetry.dropped}
        if self.slo is not None:
            out["slo"] = self.slo.status()
        return out

    def start_telemetry_server(self, port: int = 0,
                               host: str = "127.0.0.1") -> TelemetryServer:
        """Serve ``/metrics``/``/healthz``/``/slowlog``/``/traces``/``/rules``.

        Enables telemetry if it is not already on (the endpoints read
        the pipeline).  ``port=0`` binds an ephemeral port, reported by
        ``session.server.port``.
        """
        if self.telemetry is None:
            self.enable_telemetry()
        if self.server is not None:
            return self.server
        self.server = TelemetryServer(
            metrics_text=self.prometheus_text,
            health=self.health,
            slowlog=lambda: [r.to_dict() for r in self.slow_queries()],
            traces=lambda: spans_to_otlp(
                self.instrumentation.raw_tracer.recent()),
            events=lambda: [e.to_dict() for e in self.events()],
            rules=lambda: self.rules.stats(),
            profile=lambda seconds: self.profiler.profile_for(seconds),
            flamegraph=lambda: self.profiler.folded(),
            port=port, host=host)
        return self.server

    def close(self) -> None:
        """Stop the telemetry server (if any), profiler and worker pool.

        Also detaches the telemetry pipeline: a session built on the
        process-default instrumentation must not leave its pipeline
        wired into shared state after it is gone.
        """
        if self.server is not None:
            self.server.close()
            self.server = None
        if self._profiler is not None:
            self._profiler.stop()
        if self.telemetry is not None:
            self.disable_telemetry()
        self.pool.close(wait=False)

    # -- profiling & SLOs ----------------------------------------------------

    @property
    def profiler(self) -> SamplingProfiler:
        """The session's continuous sampling profiler (lazy).

        Created on first access, stopped by :meth:`close`.  Start it
        explicitly (``session.profiler.start()``), via the CLI's
        ``\\prof on``, or process-wide with ``REPRO_PROFILE=1``.
        """
        if self._profiler is None:
            self._profiler = SamplingProfiler()
        return self._profiler

    def install_slos(self, objectives, *, every: str = "DAYS",
                     rule_name: str = "slo.monitor", tenant: str = "slo",
                     priority: int = 100) -> SLOMonitor:
        """Install self-monitoring SLO rules evaluated by DBCRON.

        Registers one ordinary calendar rule (``expression=every``)
        whose callback evaluates the given objectives against the live
        metrics registry; violations degrade :meth:`health` (and thus
        ``/healthz``) naming the objective, emit telemetry ``alert``
        events and move the ``slo.status``/``slo.breaches`` series.
        Re-installing replaces the previous monitor.
        """
        if self.slo is not None:
            self.slo.uninstall()
        self.slo = SLOMonitor(self, objectives, every=every,
                              rule_name=rule_name, tenant=tenant,
                              priority=priority)
        return self.slo

    # -- evaluation ----------------------------------------------------------

    def eval(self, text: str, *, window=None, today=None):
        """Evaluate a calendar name, expression, or script.

        Defined calendar names go through the catalog (stored plan),
        expressions through factorize+plan, and anything that does not
        parse as a single expression is run as a full script.  With
        telemetry on, the run is bracketed by ``eval.start`` /
        ``eval.finish`` events; with a slow-query threshold set,
        evaluations reaching it are captured into the slow-query log.
        The fully disabled cost is the two ``is not None``/``enabled``
        branches below.
        """
        if self.telemetry is None and not self.slowlog.enabled:
            return self._run_text(text, window, today)
        return self._observed_eval(text, window, today, via="eval")

    def _observed_eval(self, text: str, window, today, via: str):
        """The instrumented twin of :meth:`eval`."""
        pipeline = self.telemetry
        if pipeline is not None:
            pipeline.emit("eval.start", source=text, via=via)
        error = None
        t0 = perf_counter()
        try:
            return self._run_text(text, window, today)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            duration = perf_counter() - t0
            if pipeline is not None:
                pipeline.emit("eval.finish", source=text, via=via,
                              duration_s=duration, error=error)
            self._capture_slow(text, duration, via=via, window=window,
                               error=error)

    def _capture_slow(self, text: str, duration: float, *, via: str,
                      window, error: str | None = None) -> None:
        """Record a slow-query entry when ``duration`` crosses the line.

        Plan text is captured lazily (a compile is only paid for
        genuinely slow evaluations, and its failure is swallowed by the
        log); the span tree is attached only when tracing is on — the
        threshold works identically with tracing disabled.
        """
        log = self.slowlog
        if log.threshold_s is None or duration < log.threshold_s:
            return
        trace = None
        if self.instrumentation.tracing:
            recent = self.instrumentation.recent_traces()
            if recent:
                trace = recent[-1].to_dict()
        try:
            win = self.registry._coerce_window(window)
        except Exception:
            win = None
        log.maybe_record(
            text, duration, via=via, window=win,
            plan_text=lambda: self.explain(text, window=window).render(),
            cache_stats={
                key: value
                for key, value in self.registry.matcache.stats().items()
                if isinstance(value, (int, float))},
            trace=trace, error=error)

    def query(self, text: str, bindings: dict | None = None):
        """Execute one Postquel statement against the session database."""
        return self.db.execute(text, bindings)

    def next_occurrence(self, name_or_expr: str, after, **kwargs):
        """Delegate to :meth:`CalendarRegistry.next_occurrence`."""
        return self.registry.next_occurrence(name_or_expr, after, **kwargs)

    def _run_text(self, text: str, window, today):
        if text in self.registry:
            return self.registry.evaluate(text, window=window, today=today)
        try:
            return self.registry.eval_expression(text, window=window,
                                                 today=today)
        except ParseError:
            return self.registry.eval_script(text, window=window,
                                             today=today)

    # -- batch evaluation ----------------------------------------------------

    def eval_many(self, scripts, *, window=None, today=None,
                  max_workers: int | None = None) -> list:
        """Evaluate a batch of scripts concurrently; results in order.

        Semantically equivalent to ``[self.eval(s, window=window,
        today=today) for s in scripts]`` but structured as a shared-work
        batch (the multi-query evaluation of the paper's shared-calendar
        caching, applied across scripts):

        1. **Plan** — every *unique* script is classified and compiled
           once; duplicate scripts in the batch share one job.
        2. **Hoist** — the GenerateSteps of all compiled plans are
           deduplicated and materialised once into a context cache
           shared by every job, so a basic calendar referenced by N
           scripts is generated (or fetched from the matcache) exactly
           once for the whole batch.
        3. **Execute** — jobs run on the session's worker pool (or a
           transient pool when ``max_workers`` differs from its size);
           with tracing on, per-thread spans roll up under one
           ``session.eval_many`` root.

        The first exception, by *input* order, is re-raised after all
        jobs settle.  ``max_workers=None`` uses the session pool's size
        (``workers=`` at construction, else ``REPRO_WORKERS``, else 1);
        with one worker the batch runs inline on the calling thread —
        still deduplicated — with no thread overhead.
        """
        scripts = list(scripts)
        if not scripts:
            return []
        if max_workers is None:
            pool, workers = self.pool, self.pool.size
        else:
            workers = max(1, int(max_workers))
            pool = self.pool if workers == self.pool.size \
                else WorkerPool(workers)
        tracer = self.instrumentation.tracer
        # Deduplicate: input position -> unique-job index.
        unique: dict[str, int] = {}
        order = [unique.setdefault(text, len(unique)) for text in scripts]
        texts = list(unique)
        if self.telemetry is not None:
            self.telemetry.emit("batch.start", scripts=len(scripts),
                                unique=len(texts), workers=workers)
        t0 = perf_counter()
        try:
            if tracer is not None:
                with tracer.span("session.eval_many", scripts=len(scripts),
                                 unique=len(texts),
                                 workers=workers) as root:
                    settled = self._eval_batch(texts, window, today,
                                               workers, pool, root)
            else:
                settled = self._eval_batch(texts, window, today, workers,
                                           pool, None)
        finally:
            if pool is not self.pool:
                pool.close(wait=False)
            if self.telemetry is not None:
                self.telemetry.emit("batch.finish", scripts=len(scripts),
                                    unique=len(texts), workers=workers,
                                    duration_s=perf_counter() - t0)
        for idx in order:
            error = settled[idx][1]
            if error is not None:
                raise error
        return [settled[idx][0] for idx in order]

    def _eval_batch(self, texts: list, window, today, workers: int,
                    pool: WorkerPool, root: "Span | None") -> list:
        """Plan + hoist + execute unique ``texts``; [(result, error)]."""
        registry = self.registry
        base_ctx = registry.context(window, today=today)
        shared_cache = base_ctx.cache  # one dict for the whole batch
        tracer = base_ctx.tracer
        if tracer is not None:
            with tracer.span("eval_many.plan", jobs=len(texts)):
                jobs = [self._plan_job(text, base_ctx) for text in texts]
            with tracer.span("eval_many.hoist") as hoist_span:
                before = len(shared_cache)
                self._hoist_generates(jobs, base_ctx)
                hoist_span.meta["materialised"] = \
                    len(shared_cache) - before
        else:
            jobs = [self._plan_job(text, base_ctx) for text in texts]
            self._hoist_generates(jobs, base_ctx)

        def run_job(job: _BatchJob):
            if job.error is not None:
                return (None, job.error)
            try:
                return (self._exec_job(job, window, today, shared_cache,
                                       root), None)
            except Exception as exc:
                return (None, exc)

        if workers > 1 and len(jobs) > 1:
            return pool.map(run_job, jobs)
        return [run_job(job) for job in jobs]

    def _plan_job(self, text: str, base_ctx) -> _BatchJob:
        """Classify and pre-compile one unique batch script."""
        registry = self.registry
        try:
            if text in registry:
                record = registry.record(text)
                return _BatchJob(kind="defined", text=text, record=record,
                                 plan=record.eval_plan)
            try:
                factored = registry._factorized_ast(text, base_ctx.tracer)
            except ParseError:
                return _BatchJob(kind="script", text=text,
                                 parsed=parse_script(text))
            try:
                plan = registry._compiled_plan(text, factored, base_ctx)
            except PlanError:
                plan = None
            return _BatchJob(kind="expression", text=text,
                             factored=factored, plan=plan)
        except ReproError as exc:
            return _BatchJob(kind="error", text=text,
                             error=exc.add_context(script=text))
        except Exception as exc:
            return _BatchJob(kind="error", text=text, error=exc)

    @staticmethod
    def _hoist_generates(jobs: list, base_ctx) -> None:
        """Materialise every distinct GenerateStep of the batch once.

        ``materialise_basic`` keys on (granularity, unit, padded window,
        mode), so steps shared across plans collapse to one computation
        whose result lands in the batch-shared context cache; the
        workers then hit that dict without touching the matcache.
        """
        for job in jobs:
            if job.plan is None:
                continue
            for step in job.plan.generate_steps():
                base_ctx.materialise_basic(
                    step.calendar, step.window.resolve(base_ctx),
                    mode="cover")

    def _exec_job(self, job: _BatchJob, window, today, shared_cache,
                  root: "Span | None"):
        """Run one planned job in a fresh context wired to the shared cache.

        Called from pool workers during parallel batches: the fresh
        per-job context keeps mutable evaluation state (env, stats)
        thread-private, while ``shared_cache`` carries the hoisted
        materialisations.  With tracing on, the job span adopts ``root``
        so worker-thread spans join the dispatching thread's trace tree.
        """
        registry = self.registry
        tracer = registry.instrumentation.tracer
        observe = self.telemetry is not None or self.slowlog.enabled
        error = None
        t0 = perf_counter()
        try:
            if tracer is not None and root is not None:
                with tracer.child_span(root, "session.eval_job",
                                       script=job.text, kind=job.kind):
                    return self._exec_job_inner(job, window, today,
                                                shared_cache)
            return self._exec_job_inner(job, window, today, shared_cache)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            duration = perf_counter() - t0
            # Always-on labelled latency (cardinality-governed by the
            # family cap); the batch root's trace id becomes the bucket
            # exemplar when tracing is on.
            self._script_seconds.labels(job.text).observe(
                duration, root.trace_id if root is not None else None)
            if observe:
                if self.telemetry is not None:
                    self.telemetry.emit("eval.finish", source=job.text,
                                        via="eval_many",
                                        duration_s=duration, error=error)
                self._capture_slow(job.text, duration, via="eval_many",
                                   window=window, error=error)

    def _exec_job_inner(self, job: _BatchJob, window, today, shared_cache):
        registry = self.registry
        ctx = registry.context(window, today=today)
        ctx.cache = shared_cache
        try:
            if job.kind == "defined":
                return registry._evaluate_record(job.record, ctx, True)
            if job.kind == "expression":
                if job.plan is not None:
                    try:
                        return PlanVM(ctx).run(job.plan)
                    except PlanError:
                        pass
                return Interpreter(ctx).evaluate(job.factored)
            return Interpreter(ctx).execute(job.parsed)
        except ReproError as exc:
            if job.kind == "defined":
                raise exc.add_context(
                    calendar=job.text,
                    script=job.record.derivation_script)
            raise exc.add_context(script=job.text)

    # -- explain -------------------------------------------------------------

    def explain(self, text: str, *, window=None,
                optimized: bool | None = None) -> Explanation:
        """The evaluation strategy of an expression or defined calendar.

        Parses and factorizes ``text`` (or the derivation script of a
        defined calendar), compiles the evaluation plan and reports the
        applied rewrites — without executing anything.  With
        ``optimized`` (default: the registry's optimizer gate) the
        optimizer pass also runs and the explanation carries the
        post-rewrite plan, the applied rewrites, per-step cardinality
        estimates and a unified diff of eliminated/fused steps.
        """
        registry = self.registry
        source = text
        if text in registry:
            record = registry.record(text)
            if record.is_explicit:
                return Explanation(source=text, factored=text,
                                   note="explicit calendar (stored values)")
            parsed = record.parsed_script
            if not parsed.is_single_expression():
                return Explanation(
                    source=text,
                    factored=record.derivation_script or text,
                    note="multi-statement script (interpreter)")
            expr = parsed.single_expression()
        else:
            expr = parse_expression(text)
        result = factorize(expr, registry.resolver)
        ctx_window = registry._coerce_window(window)
        try:
            plan = compile_expression(result.expression, registry.system,
                                      registry.resolver,
                                      context_window=ctx_window)
        except PlanError as exc:
            return Explanation(source=source,
                               factored=str(result.expression),
                               rewrites=list(result.rewrites),
                               note=f"interpreter fallback: {exc}")
        if optimized is None:
            optimized = registry.optimize
        explanation = Explanation(source=source,
                                  factored=str(result.expression),
                                  rewrites=list(result.rewrites), plan=plan)
        if optimized:
            # peek: explain must stay side-effect free, and compiling
            # a periodic form evaluates the expression as its oracle.
            pset = registry.periodic_set(text, peek=True) \
                if registry.periodic else None
            opt = optimize_plan(plan, context_window=ctx_window,
                                periodic=pset)
            explanation.optimized = True
            explanation.opt_plan = opt.plan
            explanation.opt_rewrites = list(opt.rewrites)
            explanation.eliminated = opt.eliminated
            explanation.costs = dict(opt.costs)
            if any(isinstance(step, PeriodicStep)
                   for step in opt.plan.steps):
                explanation.backend = f"periodic ({pset.describe()})"
            else:
                explanation.backend = "materialising chain"
        return explanation

    # -- profile -------------------------------------------------------------

    def profile(self, text: str, *, window=None, today=None) -> Profile:
        """Execute ``text`` with tracing forced on; the timing tree.

        A private tracer is installed for the duration of the run (the
        session's normal tracing state and trace ring are untouched) and
        the root span wraps the whole evaluation, so
        :attr:`Profile.coverage` reports how much of the wall time the
        leaf spans account for.
        """
        inst = self.instrumentation
        private = Tracer(ring_size=4)
        previous = inst.swap_tracer(private, tracing=True)
        try:
            with private.span("session.profile", source=text):
                result = self._run_text(text, window, today)
        finally:
            inst.swap_tracer(*previous)
        root = private.recent()[-1]
        return Profile(source=text, root=root, result=result)
