"""Pattern selection over time series (the paper's future work, section 6a).

The paper sketches selection predicates of the form ``{S_t < Next(S_t)}``
— "the time points at which the end-of-day closing prices for two
successive days showed an increase".  This module implements that
extension: a small pattern language over a sliding window of series
values.

Pattern text is a boolean expression over terms ``s(t)``, ``s(t+1)``,
``s(t-2)`` … (reusing the Postquel expression grammar), e.g.::

    s(t) < s(t+1)                        -- an increase
    s(t) > s(t-1) and s(t) > s(t+1)      -- a local maximum
    s(t+1) - s(t) > 5                    -- a jump by more than 5

:func:`match_pattern` returns the matching anchor instants; combinators
(:func:`increases`, :func:`decreases`, :func:`local_maxima`,
:func:`runs_of`) cover the common cases without writing text.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.db.errors import ExecutionError
from repro.db.ql.ast import BinOp, ColumnRef, Const, FuncCall, QlExpr, UnOp
from repro.db.ql.parser import parse_ql_expression
from repro.timeseries.series import RegularTimeSeries

__all__ = [
    "Pattern", "match_pattern", "increases", "decreases",
    "local_maxima", "local_minima", "runs_of",
]


class Pattern:
    """A compiled sliding-window predicate over one series."""

    def __init__(self, expr: QlExpr, offsets: tuple[int, ...]) -> None:
        self.expr = expr
        self.offsets = offsets
        self.min_offset = min(offsets) if offsets else 0
        self.max_offset = max(offsets) if offsets else 0

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        expr = parse_ql_expression(text)
        offsets: set[int] = set()
        cls._collect_offsets(expr, offsets)
        return cls(expr, tuple(sorted(offsets)) or (0,))

    @classmethod
    def _collect_offsets(cls, expr: QlExpr, offsets: set[int]) -> None:
        if isinstance(expr, FuncCall):
            if expr.name == "s":
                offsets.add(cls._offset_of(expr))
            for arg in expr.args:
                cls._collect_offsets(arg, offsets)
        elif isinstance(expr, BinOp):
            cls._collect_offsets(expr.left, offsets)
            cls._collect_offsets(expr.right, offsets)
        elif isinstance(expr, UnOp):
            cls._collect_offsets(expr.operand, offsets)

    @staticmethod
    def _offset_of(call: FuncCall) -> int:
        if len(call.args) != 1:
            raise ExecutionError("s() takes exactly one index argument")
        arg = call.args[0]
        if isinstance(arg, ColumnRef) and arg.var == "t" and not arg.column:
            return 0
        if isinstance(arg, BinOp) and isinstance(arg.left, ColumnRef) \
                and arg.left.var == "t" and isinstance(arg.right, Const):
            if arg.op == "+":
                return int(arg.right.value)
            if arg.op == "-":
                return -int(arg.right.value)
        raise ExecutionError(
            f"series index must be t, t+k or t-k, got {arg}")

    # -- evaluation ----------------------------------------------------------------

    def matches_at(self, series: RegularTimeSeries, i: int) -> bool:
        """Evaluate the pattern anchored at observation index ``i``."""
        if i + self.min_offset < 0 or i + self.max_offset >= len(series):
            return False
        return bool(self._eval(self.expr, series, i))

    def _eval(self, expr: QlExpr, series: RegularTimeSeries, i: int):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, ColumnRef):
            if expr.var == "t" and not expr.column:
                return series.timepoint(i)
            raise ExecutionError(f"unknown pattern variable {expr}")
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, series, i)
            if expr.op == "not":
                return not value
            if expr.op == "-":
                return -value
            raise ExecutionError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, BinOp):
            if expr.op == "and":
                return (self._eval(expr.left, series, i)
                        and self._eval(expr.right, series, i))
            if expr.op == "or":
                return (self._eval(expr.left, series, i)
                        or self._eval(expr.right, series, i))
            left = self._eval(expr.left, series, i)
            right = self._eval(expr.right, series, i)
            ops: dict[str, Callable] = {
                "=": lambda a, b: a == b, "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
                "+": lambda a, b: a + b, "-": lambda a, b: a - b,
                "*": lambda a, b: a * b, "/": lambda a, b: a / b,
                "%": lambda a, b: a % b,
            }
            if expr.op not in ops:
                raise ExecutionError(f"unknown pattern op {expr.op!r}")
            return ops[expr.op](left, right)
        if isinstance(expr, FuncCall):
            if expr.name == "s":
                offset = self._offset_of(expr)
                return series.values[i + offset]
            if expr.name == "abs":
                return abs(self._eval(expr.args[0], series, i))
            raise ExecutionError(f"unknown pattern function {expr.name!r}")
        raise ExecutionError(f"cannot evaluate pattern node {expr!r}")


def match_pattern(series: RegularTimeSeries,
                  pattern: "Pattern | str") -> list[int]:
    """Instants of observations where the pattern holds (anchored at t)."""
    if isinstance(pattern, str):
        pattern = Pattern.parse(pattern)
    return [series.timepoint(i) for i in range(len(series))
            if pattern.matches_at(series, i)]


def increases(series: RegularTimeSeries) -> list[int]:
    """The paper's example: points where ``S_t < Next(S_t)``."""
    return match_pattern(series, "s(t) < s(t+1)")


def decreases(series: RegularTimeSeries) -> list[int]:
    """Instants where the next observation is lower."""
    return match_pattern(series, "s(t) > s(t+1)")


def local_maxima(series: RegularTimeSeries) -> list[int]:
    """Instants strictly above both neighbours."""
    return match_pattern(series, "s(t) > s(t-1) and s(t) > s(t+1)")


def local_minima(series: RegularTimeSeries) -> list[int]:
    """Instants strictly below both neighbours."""
    return match_pattern(series, "s(t) < s(t-1) and s(t) < s(t+1)")


def runs_of(series: RegularTimeSeries, pattern: "Pattern | str",
            length: int) -> list[int]:
    """Anchors where the pattern holds ``length`` consecutive times."""
    if isinstance(pattern, str):
        pattern = Pattern.parse(pattern)
    hits = [pattern.matches_at(series, i) for i in range(len(series))]
    anchors: list[int] = []
    for i in range(len(series)):
        if i + length <= len(series) and all(hits[i:i + length]):
            anchors.append(series.timepoint(i))
    return anchors
