"""Unit tests for event rules (On Event where Condition do Action)."""

import pytest

from repro.db import RuleError
from repro.rules import EventRule, RuleManager


@pytest.fixture()
def rigged(db):
    manager = RuleManager(db)
    db.create_table("students", [("name", "text"), ("hours", "int4")])
    db.create_table("audit", [("msg", "text")])
    return db, manager


class TestDefinition:
    def test_define_parses_condition_and_actions(self, rigged):
        db, manager = rigged
        rule = manager.define_event_rule(
            "r1", "append", "students",
            condition="new.hours > 20",
            actions=['append audit (msg = new.name)'])
        assert rule.event == "append"
        assert rule.condition is not None

    def test_unknown_event_kind(self, rigged):
        db, manager = rigged
        with pytest.raises(RuleError):
            manager.define_event_rule("r1", "upsert", "students",
                                      callback=lambda d, e: None)

    def test_missing_action(self, rigged):
        with pytest.raises(RuleError):
            EventRule.define("r1", "append", "students")

    def test_duplicate_name(self, rigged):
        db, manager = rigged
        manager.define_event_rule("r1", "append", "students",
                                  callback=lambda d, e: None)
        with pytest.raises(RuleError):
            manager.define_event_rule("r1", "delete", "students",
                                      callback=lambda d, e: None)


class TestFiring:
    def test_append_rule_with_ql_action(self, rigged):
        db, manager = rigged
        manager.define_event_rule(
            "watch", "append", "students",
            condition="new.hours > 20",
            actions=['append audit (msg = new.name || " overworked")'])
        db.insert("students", name="alice", hours=25)
        db.insert("students", name="bob", hours=10)
        audit = db.execute("retrieve (a.msg) from a in audit")
        assert audit.column("msg") == ["alice overworked"]

    def test_condition_none_always_fires(self, rigged):
        db, manager = rigged
        fired = []
        manager.define_event_rule("all", "append", "students",
                                  callback=lambda d, e: fired.append(e))
        db.insert("students", name="x", hours=1)
        assert len(fired) == 1

    def test_python_condition(self, rigged):
        db, manager = rigged
        fired = []
        manager.define_event_rule(
            "py", "append", "students",
            condition=lambda e: e.new["hours"] % 2 == 0,
            callback=lambda d, e: fired.append(e.new["name"]))
        db.insert("students", name="even", hours=2)
        db.insert("students", name="odd", hours=3)
        assert fired == ["even"]

    def test_replace_rule_sees_current_and_new(self, rigged):
        db, manager = rigged
        seen = []
        manager.define_event_rule(
            "rep", "replace", "students",
            callback=lambda d, e: seen.append(
                (e.current["hours"], e.new["hours"])))
        row = db.insert("students", name="a", hours=1)
        db.relation("students").update(row["_tid"], {"hours": 9})
        assert seen == [(1, 9)]

    def test_delete_rule(self, rigged):
        db, manager = rigged
        seen = []
        manager.define_event_rule(
            "del", "delete", "students",
            callback=lambda d, e: seen.append(e.current["name"]))
        row = db.insert("students", name="bye", hours=1)
        db.relation("students").delete(row["_tid"])
        assert seen == ["bye"]

    def test_retrieve_rule_fires_per_touched_tuple(self, rigged):
        db, manager = rigged
        db.insert("students", name="a", hours=25)
        db.insert("students", name="b", hours=5)
        seen = []
        manager.define_event_rule(
            "watch_reads", "retrieve", "students",
            callback=lambda d, e: seen.append(e.current["name"]))
        db.execute("retrieve (s.name) from s in students "
                   "where s.hours > 20")
        # Both tuples were touched by the scan... only matching ones
        # reach the result, but the event fires for contributing tuples.
        assert "a" in seen

    def test_fire_count_tracked(self, rigged):
        db, manager = rigged
        rule = manager.define_event_rule(
            "counting", "append", "students",
            callback=lambda d, e: None)
        db.insert("students", name="x", hours=1)
        db.insert("students", name="y", hours=2)
        assert rule.fire_count == 2

    def test_disabled_rule_does_not_fire(self, rigged):
        db, manager = rigged
        fired = []
        rule = manager.define_event_rule(
            "off", "append", "students",
            callback=lambda d, e: fired.append(1))
        rule.enabled = False
        db.insert("students", name="x", hours=1)
        assert fired == []

    def test_drop_rule_detaches_hook(self, rigged):
        db, manager = rigged
        fired = []
        manager.define_event_rule("temp", "append", "students",
                                  callback=lambda d, e: fired.append(1))
        manager.drop_rule("temp")
        db.insert("students", name="x", hours=1)
        assert fired == []

    def test_drop_unknown_rule(self, rigged):
        db, manager = rigged
        with pytest.raises(RuleError):
            manager.drop_rule("ghost")


class TestCascades:
    def test_rule_chain(self, rigged):
        db, manager = rigged
        db.create_table("audit2", [("msg", "text")])
        manager.define_event_rule(
            "first", "append", "students",
            actions=['append audit (msg = new.name)'])
        manager.define_event_rule(
            "second", "append", "audit",
            actions=['append audit2 (msg = new.msg || "!")'])
        db.insert("students", name="chain", hours=1)
        assert db.execute("retrieve (a.msg) from a in audit2") \
            .column("msg") == ["chain!"]

    def test_runaway_cascade_stopped(self, rigged):
        db, manager = rigged
        manager.define_event_rule(
            "loop", "append", "audit",
            actions=['append audit (msg = new.msg)'])
        with pytest.raises(RuleError):
            db.insert("audit", msg="boom")
