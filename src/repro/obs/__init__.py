"""Observability: metrics, tracing, structured events and exporters.

The subsystem behind the unified :class:`repro.Session` instrumentation
API — see :mod:`repro.obs.metrics` (counters/gauges/histograms, plus
labelled families with cardinality governance),
:mod:`repro.obs.tracer` (nested spans, trace ring buffer),
:mod:`repro.obs.instrument` (the bundle wired through interpreter, plan
VM, planner, materialisation cache, query executor and DBCRON),
:mod:`repro.obs.telemetry` (the typed event pipeline and slow-query
log), :mod:`repro.obs.promexport` (Prometheus text exposition with
label sets and exemplars, and OTLP-style span export),
:mod:`repro.obs.profiler` (the continuous wall-clock sampling
profiler), :mod:`repro.obs.slo` (self-monitoring SLO rules fired by
DBCRON), :mod:`repro.obs.httpd` (the embedded ``/metrics`` endpoint)
and :mod:`repro.obs.export` (JSON snapshots).
"""

from repro.obs.export import export_json, metrics_to_dict, traces_to_dict
from repro.obs.httpd import TelemetryServer
from repro.obs.instrument import (
    Instrumentation,
    get_default_instrumentation,
    set_default_instrumentation,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_MAX_SERIES,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
)
from repro.obs.profiler import DEFAULT_HERTZ, SamplingProfiler
from repro.obs.promexport import render_prometheus, spans_to_otlp
from repro.obs.slo import (
    LatencyObjective,
    Objective,
    RatioObjective,
    SLOMonitor,
)
from repro.obs.telemetry import (
    CallbackSink,
    Event,
    FileSink,
    RingSink,
    SlowQuery,
    SlowQueryLog,
    TelemetryPipeline,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "CounterFamily", "GaugeFamily", "HistogramFamily",
    "DEFAULT_LATENCY_BOUNDS", "DEFAULT_MAX_SERIES",
    "Span", "Tracer",
    "Instrumentation", "get_default_instrumentation",
    "set_default_instrumentation",
    "metrics_to_dict", "traces_to_dict", "export_json",
    "Event", "RingSink", "FileSink", "CallbackSink", "TelemetryPipeline",
    "SlowQuery", "SlowQueryLog",
    "render_prometheus", "spans_to_otlp",
    "SamplingProfiler", "DEFAULT_HERTZ",
    "Objective", "LatencyObjective", "RatioObjective", "SLOMonitor",
    "TelemetryServer",
]
