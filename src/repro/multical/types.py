"""MultiCal's temporal data types: event, interval, span (section 5).

The paper compares its nested-interval-list calendars against Soo &
Snodgrass's *MultiCal* proposal, which models time with three types:

* an **event** — an isolated instant (here: a chronon number, one chronon
  per day on the shared axis, plus the calendar it is displayed in);
* an **interval** — a set of contiguous chronons ``[start, end]``;
* a **span** — an unanchored duration, either *fixed* (a number of days)
  or *variable* (months/years, whose length depends on where it is
  anchored — MultiCal's "variable span Month" is the counterpart of this
  library's MONTHS calendar).

Arithmetic follows MultiCal's semantics: ``event + span`` anchors the
span at the event (variable parts resolved by the event's calendar),
``event - event`` yields a fixed span, intervals support the usual
overlap/containment predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import CalendarError

__all__ = ["MCEvent", "MCSpan", "MCInterval"]


@dataclass(frozen=True, slots=True)
class MCSpan:
    """An unanchored duration: ``months`` are variable, ``days`` fixed."""

    months: int = 0
    days: int = 0

    @property
    def is_fixed(self) -> bool:
        """Fixed spans have a context-independent length in chronons."""
        return self.months == 0

    def __add__(self, other: "MCSpan") -> "MCSpan":
        return MCSpan(self.months + other.months, self.days + other.days)

    def __neg__(self) -> "MCSpan":
        return MCSpan(-self.months, -self.days)

    def __sub__(self, other: "MCSpan") -> "MCSpan":
        return self + (-other)

    def __str__(self) -> str:
        parts = []
        if self.months:
            parts.append(f"{self.months} months")
        if self.days or not parts:
            parts.append(f"{self.days} days")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class MCEvent:
    """An isolated instant: a chronon number on the shared day axis.

    ``calendar`` names the calendar used for display/arithmetic (a key in
    a :class:`~repro.multical.calsystem.CalendricSystem`).
    """

    chronon: int
    calendar: str = "gregorian"

    def __post_init__(self) -> None:
        if self.chronon == 0:
            raise CalendarError("chronon 0 does not exist on the axis")

    def __lt__(self, other: "MCEvent") -> bool:
        return self.chronon < other.chronon

    def __le__(self, other: "MCEvent") -> bool:
        return self.chronon <= other.chronon

    def fixed_span_to(self, other: "MCEvent") -> MCSpan:
        """``other - self`` as a fixed span (chronons are days)."""
        diff = other.chronon - self.chronon
        # Account for the missing chronon 0.
        if self.chronon < 0 < other.chronon:
            diff -= 1
        elif other.chronon < 0 < self.chronon:
            diff += 1
        return MCSpan(days=diff)


@dataclass(frozen=True, slots=True)
class MCInterval:
    """A set of contiguous chronons with start <= end (both inclusive)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start == 0 or self.end == 0:
            raise CalendarError("chronon 0 does not exist on the axis")
        if self.start > self.end:
            raise CalendarError(
                f"interval start {self.start} after end {self.end}")

    def overlaps(self, other: "MCInterval") -> bool:
        """True when the chronon sets intersect."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, other: "MCInterval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def contains_event(self, event: MCEvent) -> bool:
        """True when the event's chronon is inside the interval."""
        return self.start <= event.chronon <= self.end

    def duration(self) -> MCSpan:
        """The interval's length as a fixed span (chronon 0 skipped)."""
        length = self.end - self.start + 1
        if self.start < 0 < self.end:
            length -= 1
        return MCSpan(days=length)
