"""Unit tests for the extensible type/operator/function registries."""

import pytest

from repro.core import Calendar, CivilDate
from repro.db import ANY, DataTypeError, FunctionRegistry, \
    OperatorRegistry, TypeRegistry


class TestTypeRegistry:
    def test_builtin_types_present(self):
        registry = TypeRegistry()
        for name in ("int4", "float8", "text", "bool", "date", "abstime",
                     "calendar"):
            assert name in registry

    def test_validate_accepts(self):
        registry = TypeRegistry()
        assert registry.get("int4").validate(5) == 5
        assert registry.get("text").validate("x") == "x"
        assert registry.get("calendar").validate(
            Calendar.point(1)) is not None
        assert registry.get("date").validate(CivilDate(1993, 1, 1))

    def test_validate_rejects(self):
        registry = TypeRegistry()
        with pytest.raises(DataTypeError):
            registry.get("int4").validate("five")
        with pytest.raises(DataTypeError):
            registry.get("bool").validate(1)
        with pytest.raises(DataTypeError):
            registry.get("int4").validate(True)  # bool is not int4

    def test_none_always_allowed(self):
        registry = TypeRegistry()
        assert registry.get("int4").validate(None) is None

    def test_float8_accepts_int(self):
        registry = TypeRegistry()
        assert registry.get("float8").validate(5) == 5

    def test_define_adt(self):
        registry = TypeRegistry()
        registry.define("money", lambda v: isinstance(v, int),
                        "cents as int")
        assert registry.get("money").validate(100) == 100

    def test_duplicate_type_rejected(self):
        registry = TypeRegistry()
        with pytest.raises(DataTypeError):
            registry.define("int4", lambda v: True)

    def test_unknown_type(self):
        with pytest.raises(DataTypeError):
            TypeRegistry().get("missing")


class TestOperatorRegistry:
    def test_register_and_resolve_exact(self):
        ops = OperatorRegistry()
        ops.register("+", "calendar", "calendar", lambda a, b: "cal+")
        assert ops.resolve("+", "calendar", "calendar")(None, None) == \
            "cal+"

    def test_wildcards(self):
        ops = OperatorRegistry()
        ops.register("~", "text", ANY, lambda a, b: "left-text")
        assert ops.resolve("~", "text", "int4") is not None
        assert ops.resolve("~", "int4", "int4") is None

    def test_exact_beats_wildcard(self):
        ops = OperatorRegistry()
        ops.register("+", ANY, ANY, lambda a, b: "any")
        ops.register("+", "int4", "int4", lambda a, b: "exact")
        assert ops.resolve("+", "int4", "int4")(1, 2) == "exact"

    def test_duplicate_rejected(self):
        ops = OperatorRegistry()
        ops.register("+", "int4", "int4", lambda a, b: 1)
        with pytest.raises(DataTypeError):
            ops.register("+", "int4", "int4", lambda a, b: 2)

    def test_replace(self):
        ops = OperatorRegistry()
        ops.register("+", "int4", "int4", lambda a, b: 1)
        ops.register("+", "int4", "int4", lambda a, b: 2, replace=True)
        assert ops.resolve("+", "int4", "int4")(0, 0) == 2


class TestFunctionRegistry:
    def test_register_resolve(self):
        fns = FunctionRegistry()
        fns.register("triple", lambda x: 3 * x)
        assert fns.resolve("TRIPLE")(4) == 12

    def test_missing_is_none(self):
        assert FunctionRegistry().resolve("nope") is None

    def test_duplicate_rejected(self):
        fns = FunctionRegistry()
        fns.register("f", lambda: 1)
        with pytest.raises(DataTypeError):
            fns.register("F", lambda: 2)
