"""Self-monitoring SLO rules: DBCRON watching the engine's own metrics.

The paper's thesis is that temporal rules belong *inside* the database;
this module dogfoods that mechanism as the engine's own monitoring
system.  An :class:`SLOMonitor` registers one ordinary DBCRON calendar
rule (``session.rules.on_calendar``) whose callback evaluates a set of
:class:`Objective`\\ s against the live metrics registry every time the
rule fires.  Objectives are *burn-rate* style: each evaluation reads the
**delta** since the previous evaluation (cumulative histogram buckets or
counter values snapshotted per fire), so a breach reflects the window
between rule fires — and recovery is possible once the workload calms
down, unlike naive lifetime-cumulative checks.

An objective that breaches for ``window`` consecutive evaluations
becomes a *violation*: the monitor emits a telemetry ``alert`` event,
increments the ``slo.breaches`` counter and flips the objective's
``slo.status`` gauge to 1 — and :meth:`Session.health` reports the
violated objective by name, degrading ``/healthz`` to 503 until a
healthy evaluation resolves it.

Two built-in objective shapes cover the ISSUE's examples:

* :class:`LatencyObjective` — an estimated quantile of a histogram's
  per-window observations against a threshold (``p99 eval latency over
  5ms for 3 consecutive fires``);
* :class:`RatioObjective` — the per-window ratio of two counters
  against a budget (``sheds / fires above 1%``).

Both accept plain instruments or labelled families (family deltas are
summed across children, or restricted to one child via ``labels=``).
"""

from __future__ import annotations

from repro.obs.metrics import (Counter, CounterFamily, Histogram,
                               HistogramFamily, MetricsRegistry)

__all__ = ["Objective", "LatencyObjective", "RatioObjective", "SLOMonitor"]


class Objective:
    """One monitored objective; subclasses implement :meth:`evaluate`.

    ``window`` is the number of *consecutive* breaching evaluations
    required before the objective is declared violated (a single noisy
    window does not page anyone).
    """

    def __init__(self, name: str, *, window: int = 3,
                 description: str = "") -> None:
        if window < 1:
            raise ValueError(f"objective {name!r} window must be >= 1")
        self.name = name
        self.window = int(window)
        self.description = description

    def evaluate(self, metrics: MetricsRegistry) -> "tuple[bool, str]":
        """``(breached, detail)`` for the window since the last call.

        A window with no data must return ``(False, ...)`` — absence of
        traffic is healthy, and is what lets a violated objective
        recover once the breaching workload stops.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def _histograms(instrument, labels):
    """The histogram series an objective reads (family-aware)."""
    if isinstance(instrument, Histogram):
        return [instrument]
    if isinstance(instrument, HistogramFamily):
        if labels is not None:
            return [instrument.labels(*labels)]
        return list(instrument.series().values())
    return []


def _counter_value(instrument, labels) -> "int | None":
    """Current value of a counter or summed counter family."""
    if isinstance(instrument, Counter):
        return instrument.value
    if isinstance(instrument, CounterFamily):
        if labels is not None:
            return instrument.labels(*labels).value
        return sum(child.value for child in instrument.series().values())
    return None


class LatencyObjective(Objective):
    """An estimated latency quantile over the evaluation window.

    Snapshots the histogram's cumulative buckets each evaluation and
    computes the quantile from the bucket *deltas* — the distribution of
    only the observations that arrived since the previous fire.  The
    estimate is the upper bound of the bucket holding the quantile
    (conservative, like :meth:`Histogram.quantile`).
    """

    def __init__(self, name: str, *, metric: str, threshold_s: float,
                 quantile: float = 0.99, window: int = 3,
                 labels: "tuple[str, ...] | None" = None,
                 description: str = "") -> None:
        super().__init__(name, window=window, description=description)
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"objective {name!r} quantile outside (0, 1]")
        if threshold_s <= 0:
            raise ValueError(f"objective {name!r} threshold must be > 0")
        self.metric = metric
        self.quantile = float(quantile)
        self.threshold_s = float(threshold_s)
        self.labels = tuple(str(v) for v in labels) if labels else None
        self._previous: "dict[str, list[int]]" = {}

    def evaluate(self, metrics: MetricsRegistry) -> "tuple[bool, str]":
        series = _histograms(metrics.get(self.metric), self.labels)
        if not series:
            return False, f"metric {self.metric!r} not registered"
        # Sum per-bucket deltas across series (bounds are shared within
        # a family; mixed-bounds series would be a registration error).
        bounds: "tuple[float, ...] | None" = None
        delta: "list[int]" = []
        for histogram in series:
            pairs = histogram.cumulative_buckets()
            current = [count for _, count in pairs]
            previous = self._previous.get(histogram.name,
                                          [0] * len(current))
            if len(previous) != len(current):
                previous = [0] * len(current)
            self._previous[histogram.name] = current
            step = [max(0, now - then)
                    for now, then in zip(current, previous)]
            if not delta:
                bounds = tuple(bound for bound, _ in pairs)
                delta = step
            else:
                delta = [a + b for a, b in zip(delta, step)]
        total = delta[-1] if delta else 0
        if total == 0:
            return False, "no observations this window"
        rank = self.quantile * total
        estimate = bounds[-1]
        for bound, cumulative in zip(bounds, delta):
            if cumulative >= rank:
                estimate = bound
                break
        detail = (f"p{self.quantile * 100:g} {self.metric} ≈ "
                  f"{estimate:g}s over {total} observations "
                  f"(threshold {self.threshold_s:g}s)")
        return estimate > self.threshold_s, detail


class RatioObjective(Objective):
    """A counter-delta ratio against a budget over the window.

    ``numerator / denominator`` computed from the per-window deltas of
    two counters (or summed counter families) — e.g. sheds over fires,
    drops over emits.  A window where the denominator does not move has
    no data and counts as healthy.
    """

    def __init__(self, name: str, *, numerator: str, denominator: str,
                 max_ratio: float, window: int = 3,
                 numerator_labels: "tuple[str, ...] | None" = None,
                 denominator_labels: "tuple[str, ...] | None" = None,
                 description: str = "") -> None:
        super().__init__(name, window=window, description=description)
        if max_ratio < 0:
            raise ValueError(f"objective {name!r} max_ratio must be >= 0")
        self.numerator = numerator
        self.denominator = denominator
        self.max_ratio = float(max_ratio)
        self.numerator_labels = numerator_labels
        self.denominator_labels = denominator_labels
        self._prev_num = 0
        self._prev_den = 0

    def evaluate(self, metrics: MetricsRegistry) -> "tuple[bool, str]":
        num = _counter_value(metrics.get(self.numerator),
                             self.numerator_labels)
        den = _counter_value(metrics.get(self.denominator),
                             self.denominator_labels)
        if num is None or den is None:
            return False, "counters not registered"
        num_delta = max(0, num - self._prev_num)
        den_delta = max(0, den - self._prev_den)
        self._prev_num, self._prev_den = num, den
        if den_delta == 0:
            return False, "no activity this window"
        ratio = num_delta / den_delta
        detail = (f"{self.numerator}/{self.denominator} = "
                  f"{num_delta}/{den_delta} = {ratio:.4f} "
                  f"(budget {self.max_ratio:g})")
        return ratio > self.max_ratio, detail


class _ObjectiveState:
    """Streak/violation bookkeeping for one objective."""

    __slots__ = ("objective", "streak", "violated", "detail",
                 "evaluations", "breaches")

    def __init__(self, objective: Objective) -> None:
        self.objective = objective
        self.streak = 0
        self.violated = False
        self.detail = ""
        self.evaluations = 0
        self.breaches = 0


class SLOMonitor:
    """Evaluates objectives on every fire of an ordinary DBCRON rule.

    Construct via :meth:`Session.install_slos`; the monitor owns one
    calendar rule (default: fired every ``DAYS`` tick) whose callback is
    :meth:`check`.  Violations surface three ways: telemetry ``alert``
    events (state ``firing``/``resolved``), the ``slo.breaches``/
    ``slo.status`` labelled metrics, and :meth:`problems`, which
    :meth:`Session.health` folds into ``/healthz``.
    """

    def __init__(self, session, objectives, *, every: str = "DAYS",
                 rule_name: str = "slo.monitor", tenant: str = "slo",
                 priority: int = 100) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError("duplicate objective names")
        self.session = session
        self.rule_name = rule_name
        self._states = {objective.name: _ObjectiveState(objective)
                        for objective in objectives}
        metrics = session.instrumentation.metrics
        self._breaches = metrics.counter(
            "slo.breaches", "SLO violations declared, per objective",
            labels=("objective",))
        self._status = metrics.gauge(
            "slo.status", "1 while the objective is violated, else 0",
            labels=("objective",))
        for objective in objectives:
            self._status.labels(objective.name).set(0.0)
        # The monitor is an ordinary calendar rule: high priority so
        # load shedding drops application rules before the monitoring
        # that would explain the shedding.
        session.rules.on_calendar(
            rule_name, expression=every, callback=self._on_fire,
            tenant=tenant, priority=priority)
        self._installed = True

    # -- evaluation ---------------------------------------------------------

    def _on_fire(self, database, at_tick: int) -> None:
        self.check(at_tick)

    def check(self, at_tick: "int | None" = None) -> dict:
        """Evaluate every objective once; returns the status dict.

        Normally driven by the DBCRON rule; callable directly for tests
        and ad-hoc probes.  Objective exceptions are contained per
        objective (an unregistered metric must not break the rule
        daemon's wave).
        """
        metrics = self.session.instrumentation.metrics
        for state in self._states.values():
            objective = state.objective
            try:
                breached, detail = objective.evaluate(metrics)
            except Exception as exc:
                breached, detail = False, f"evaluation error: {exc}"
            state.evaluations += 1
            state.detail = detail
            if breached:
                state.streak += 1
            else:
                state.streak = 0
            if breached and not state.violated \
                    and state.streak >= objective.window:
                state.violated = True
                state.breaches += 1
                self._breaches.labels(objective.name).inc()
                self._status.labels(objective.name).set(1.0)
                self._emit("firing", objective, detail, at_tick)
            elif not breached and state.violated:
                state.violated = False
                self._status.labels(objective.name).set(0.0)
                self._emit("resolved", objective, detail, at_tick)
        return self.status()

    def _emit(self, alert_state: str, objective: Objective, detail: str,
              at_tick: "int | None") -> None:
        pipeline = self.session.telemetry
        if pipeline is not None:
            pipeline.emit("alert", objective=objective.name,
                          state=alert_state, detail=detail,
                          tick=at_tick)

    # -- reporting ----------------------------------------------------------

    def problems(self) -> "list[str]":
        """Health problems for every currently violated objective."""
        return [f"slo {state.objective.name} violated: {state.detail}"
                for state in self._states.values() if state.violated]

    def status(self) -> dict:
        """Per-objective state for ``/healthz`` and dashboards."""
        return {
            name: {
                "violated": state.violated,
                "streak": state.streak,
                "window": state.objective.window,
                "breaches": state.breaches,
                "evaluations": state.evaluations,
                "detail": state.detail,
            }
            for name, state in sorted(self._states.items())
        }

    def uninstall(self) -> None:
        """Drop the monitoring rule (objective state is kept)."""
        if self._installed:
            self._installed = False
            try:
                self.session.rules.drop(self.rule_name)
            except Exception:
                pass

    def __repr__(self) -> str:
        violated = sum(1 for s in self._states.values() if s.violated)
        return (f"SLOMonitor({self.rule_name!r}, "
                f"objectives={len(self._states)}, violated={violated})")
