"""The database façade: relations, registries, calendars, rules, queries.

A :class:`Database` wires together the storage layer, the extensible
type/operator/function registries, a
:class:`~repro.catalog.registry.CalendarRegistry` (declared to the DBMS the
way the paper declares its calendar procedures as operators), the rule
manager, and system catalogs (``pg_class``, ``pg_attribute``) maintained as
ordinary relations.

The calendar bridge functions registered on every database:

``member(t, cal)``, ``calendar(name)``, ``cal(expr)``, ``day(text)``,
``date_text(t)``, ``weekday(t)``, ``next_in(cal, t)``, ``prev_in(cal, t)``,
``shift_in(cal, t, n)``, ``count_in(cal, a, b)`` — making temporal
predicates available inside ordinary Postquel queries, which is exactly the
paper's "declare the calendar procedures as operators to the extensible
DBMS" strategy (section 5).
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

from repro.catalog.registry import CalendarRegistry
from repro.errors import ReproError
from repro.core.arithmetic import (
    count_points_between,
    next_point,
    prev_point,
    shift_point,
)
from repro.core.basis import CalendarSystem
from repro.core.calendar import Calendar
from repro.db.errors import ExecutionError, SchemaError
from repro.db.executor import Executor, Result
from repro.db.index import OrderedIndex
from repro.db.ql.parser import parse_statement
from repro.db.storage import Column, Relation, Schema
from repro.db.types import FunctionRegistry, OperatorRegistry, TypeRegistry

__all__ = ["Database"]

_SYSTEM_RELATIONS = ("pg_class", "pg_attribute")


class Database:
    """An in-memory extensible relational database."""

    def __init__(self, system: CalendarSystem | None = None,
                 calendars: CalendarRegistry | None = None) -> None:
        self.types = TypeRegistry()
        self.operators = OperatorRegistry()
        self.functions = FunctionRegistry()
        self.calendars = calendars or CalendarRegistry(system)
        self.system = self.calendars.system
        self._relations: dict[str, Relation] = {}
        #: Transaction counter for no-overwrite version stamping; bumped
        #: once per mutating statement (begin_xact).
        self._xact = 1
        self._executor = Executor(self)
        #: Set by repro.rules.manager.RuleManager when attached.
        self.rule_manager = None
        #: Cache of resolved calendar references, keyed by (text, registry
        #: version) so catalog redefinitions invalidate it.
        self._calendar_cache: dict = {}
        #: Cache of compiled periodic probes (same keying); an entry may
        #: be None when the reference fell back to materialisation.
        self._periodic_cache: dict = {}
        #: name -> builtin interval-predicate function; the vectorized
        #: executor only compiles ``overlaps``/``during`` conjuncts to
        #: endpoint sweeps while they still resolve to these exact
        #: callables (a user redefinition disables the sweep, not the
        #: semantics).
        self.builtin_interval_predicates: dict = {}
        self._create_system_catalogs()
        self._register_calendar_bridge()
        self._register_interval_predicates()

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str] | Column],
                     key: Sequence[str] = (),
                     valid_time_column: str | None = None) -> Relation:
        """Create a heap relation and record it in the system catalogs."""
        key_name = name.lower()
        if key_name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        schema = Schema(columns, key=key, valid_time_column=valid_time_column)
        for column in schema.columns:
            self.types.get(column.type_name)  # validates the type exists
        relation = Relation(key_name, schema, self.types,
                            xact_source=self.current_xact)
        self._relations[key_name] = relation
        self._catalog_add(relation)
        return relation

    def drop_table(self, name: str) -> None:
        """Drop a heap relation and its catalog rows."""
        key = name.lower()
        if key in _SYSTEM_RELATIONS:
            raise SchemaError(f"cannot drop system relation {name!r}")
        if key not in self._relations:
            raise SchemaError(f"unknown relation {name!r}")
        del self._relations[key]
        self._catalog_remove(key)

    def create_index(self, relation_name: str, column: str) -> OrderedIndex:
        """Build (and maintain) an ordered index over one column."""
        relation = self.relation(relation_name)
        relation.schema.column(column)  # validates
        index = OrderedIndex(column)
        index.rebuild(relation.scan())
        relation.indexes[column] = index
        return index

    def relation(self, name: str) -> Relation:
        """The relation object under ``name`` (case-insensitive)."""
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def relation_names(self) -> list[str]:
        """Sorted names of all relations, system catalogs included."""
        return sorted(self._relations)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._relations

    # -- queries ------------------------------------------------------------------

    @property
    def instrumentation(self):
        """The metrics/tracing attachment point (the registry's)."""
        return self.calendars.instrumentation

    def execute(self, query: str, bindings: dict | None = None) -> Result:
        """Parse and execute one Postquel statement.

        Execution counts and latencies are recorded under the
        ``db.statements`` / ``db.statement_seconds`` metrics; with
        tracing on, each statement gets a ``db.execute`` span with
        ``db.parse`` / ``db.stmt.<Kind>`` children.
        """
        inst = self.instrumentation
        tracer = inst.tracer
        t0 = perf_counter()
        try:
            if tracer is None:
                statement = parse_statement(query)
                result = self._executor.execute(statement, bindings)
            else:
                with tracer.span("db.execute", query=query):
                    with tracer.span("db.parse"):
                        statement = parse_statement(query)
                    with tracer.span(
                            f"db.stmt.{type(statement).__name__}"):
                        result = self._executor.execute(statement, bindings)
        except ReproError as exc:
            raise exc.add_context(query=query)
        inst.metrics.counter("db.statements").inc()
        inst.metrics.histogram("db.statement_seconds").observe(
            perf_counter() - t0)
        return result

    def retrieve(self, query: str, bindings: dict | None = None) -> Result:
        """Alias of :meth:`execute` for read queries."""
        result = self.execute(query, bindings)
        return result

    def explain(self, query: str) -> str:
        """The execution strategy of a retrieve, as text."""
        return self._executor.explain(parse_statement(query))

    def insert(self, relation: str, **values) -> dict:
        """Programmatic append (bypasses the parser, still fires rules)."""
        self.begin_xact()
        return self.relation(relation).insert(values)

    # -- transaction time ------------------------------------------------------------

    def current_xact(self) -> int:
        """The current transaction id (stamps new tuple versions)."""
        return self._xact

    def begin_xact(self) -> int:
        """Start a new transaction (one per mutating statement)."""
        self._xact += 1
        return self._xact

    def vacuum(self, before_xact: int | None = None) -> int:
        """Reclaim dead tuple versions across all relations."""
        return sum(relation.vacuum(before_xact)
                   for relation in self._relations.values())

    # -- system catalogs -------------------------------------------------------------

    def _create_system_catalogs(self) -> None:
        pg_class = Relation("pg_class", Schema([
            Column("relname", "text"), Column("relnatts", "int4"),
            Column("relkind", "text"),
        ]), self.types)
        pg_attribute = Relation("pg_attribute", Schema([
            Column("relname", "text"), Column("attname", "text"),
            Column("atttype", "text"), Column("attnum", "int4"),
        ]), self.types)
        self._relations["pg_class"] = pg_class
        self._relations["pg_attribute"] = pg_attribute
        for relation in (pg_class, pg_attribute):
            self._catalog_add(relation, kind="system")

    def _catalog_add(self, relation: Relation, kind: str = "heap") -> None:
        self._relations["pg_class"].insert(
            {"relname": relation.name,
             "relnatts": len(relation.schema.columns),
             "relkind": kind},
            fire_hooks=False)
        for i, column in enumerate(relation.schema.columns, start=1):
            self._relations["pg_attribute"].insert(
                {"relname": relation.name, "attname": column.name,
                 "atttype": column.type_name, "attnum": i},
                fire_hooks=False)

    def _catalog_remove(self, name: str) -> None:
        pg_class = self._relations["pg_class"]
        for row in list(pg_class.scan()):
            if row["relname"] == name:
                pg_class.delete(row["_tid"], fire_hooks=False)
        pg_attribute = self._relations["pg_attribute"]
        for row in list(pg_attribute.scan()):
            if row["relname"] == name:
                pg_attribute.delete(row["_tid"], fire_hooks=False)

    # -- calendar bridge ---------------------------------------------------------------

    def resolve_calendar(self, ref: "str | Calendar") -> Calendar:
        """Resolve a calendar value, defined name, or expression text.

        Text references are evaluated over the registry's default window
        and cached until the catalog changes.
        """
        if isinstance(ref, Calendar):
            return ref
        if not isinstance(ref, str):
            raise ExecutionError(f"cannot resolve calendar from {ref!r}")
        key = (ref, self.calendars.version)
        cached = self._calendar_cache.get(key)
        if cached is not None:
            return cached
        if ref in self.calendars:
            value = self.calendars.evaluate(ref)
        else:
            value = self.calendars.eval_expression(ref)
        if not isinstance(value, Calendar):
            raise ExecutionError(
                f"calendar reference {ref!r} did not produce a calendar")
        self._calendar_cache[key] = value
        return value

    #: Probe-safety margin: :meth:`resolve_calendar` materialises whole
    #: elements overlapping the registry default window, so a compiled
    #: membership probe only provably agrees with ``contains_point`` on
    #: that result well inside the window (one max element span + slack).
    _PERIODIC_PROBE_MARGIN = 400

    def resolve_periodic(self, ref):
        """The compiled periodic probe of a text calendar reference.

        Returns ``(pset, safe_lo, safe_hi)`` — the compiled
        :class:`~repro.core.periodic.PeriodicSet` and the tick range
        inside which ``pset.contains`` provably agrees with
        ``resolve_calendar(ref).contains_point`` — or ``None`` when the
        gate is off or the reference does not compile.  Cached like
        :meth:`resolve_calendar` (invalidated by catalog version bumps).
        """
        if not isinstance(ref, str) or not self.calendars.periodic:
            return None
        key = (ref, self.calendars.version)
        if key in self._periodic_cache:
            return self._periodic_cache[key]
        pset = self.calendars.periodic_set(ref)
        if pset is None:
            probe = None
        else:
            lo, hi = self.calendars.default_window
            margin = self._PERIODIC_PROBE_MARGIN
            probe = (pset, lo + margin, hi - margin)
        self._periodic_cache[key] = probe
        return probe

    def calendar_from_query(self, query: str,
                            column: str | None = None) -> Calendar:
        """Run a retrieve and collect an abstime column into a calendar.

        Closes the loop from data back to calendars: the resulting
        (sorted, deduplicated) instant calendar can be stored in the
        catalog and drive temporal rules.
        """
        result = self.execute(query)
        if column is None:
            if len(result.columns) != 1:
                raise ExecutionError(
                    "calendar_from_query needs a single-column retrieve "
                    "or an explicit column name")
            column = result.columns[0]
        ticks = sorted({row[column] for row in result.rows
                        if row.get(column) is not None})
        for t in ticks:
            if not isinstance(t, int) or t == 0:
                raise ExecutionError(
                    f"column {column!r} holds non-abstime value {t!r}")
        from repro.core.granularity import Granularity
        return Calendar.from_intervals([(t, t) for t in ticks],
                                       Granularity.DAYS)

    def _register_calendar_bridge(self) -> None:
        calendars = self.calendars
        system = self.system

        def _cal(ref) -> Calendar:
            cal = self.resolve_calendar(ref)
            return cal.flatten() if cal.order != 1 else cal

        def _tick(value, what: str = "time argument") -> int:
            if not isinstance(value, int) or isinstance(value, bool) or \
                    value == 0:
                raise ExecutionError(
                    f"{what} must be a non-zero abstime tick, "
                    f"got {value!r}")
            return value

        self.functions.register(
            "member", lambda t, ref: _cal(ref).contains_point(_tick(t)))
        self.functions.register("calendar", lambda name: _cal(name))
        self.functions.register(
            "cal", lambda text: calendars.eval_expression(text))
        self.functions.register("day", lambda text: system.day_of(text))
        self.functions.register(
            "date_text", lambda t: str(system.date_of(_tick(t))))
        self.functions.register(
            "weekday", lambda t: system.epoch.weekday_of(_tick(t)))
        self.functions.register(
            "next_in", lambda ref, t: next_point(_cal(ref), _tick(t)))
        self.functions.register(
            "prev_in", lambda ref, t: prev_point(_cal(ref), _tick(t)))
        self.functions.register(
            "shift_in", lambda ref, t, n: shift_point(_cal(ref), _tick(t),
                                                      n))
        self.functions.register(
            "count_in",
            lambda ref, a, b: count_points_between(_cal(ref), _tick(a),
                                                   _tick(b)))
        # Calendar-valued operators, declared like POSTGRES ADT operators.
        self.operators.register(
            "+", "calendar", "calendar", lambda a, b: a.union(b))
        self.operators.register(
            "-", "calendar", "calendar", lambda a, b: a.difference(b))
        self.operators.register(
            "*", "calendar", "calendar", lambda a, b: a.intersection(b))

    def _register_interval_predicates(self) -> None:
        """Builtin Allen-style interval predicates over column endpoints.

        ``overlaps(a.lo, a.hi, b.lo, b.hi)`` / ``during(...)`` are plain
        scalar functions (None endpoints are simply non-matching, like a
        failed comparison), but the vectorized executor recognises calls
        that still resolve to these exact callables and runs them as
        endpoint-sweep joins instead of evaluating per tuple pair.
        """

        def _overlaps(alo, ahi, blo, bhi):
            if alo is None or ahi is None or blo is None or bhi is None:
                return False
            return alo <= bhi and blo <= ahi

        def _during(alo, ahi, blo, bhi):
            if alo is None or ahi is None or blo is None or bhi is None:
                return False
            return alo >= blo and ahi <= bhi

        self.builtin_interval_predicates = {
            "overlaps": _overlaps, "during": _during}
        self.functions.register("overlaps", _overlaps)
        self.functions.register("during", _during)
