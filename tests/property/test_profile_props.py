"""Property: profiling is faithful — one VM span per executed plan step.

For any expression the planner can compile, ``Session.profile`` must
report exactly as many ``plan.step.*`` spans as the compiled plan has
steps, and its coverage accounting must stay within [0, 1].  This pins
the contract that the tracing layer observes execution without changing
it (and never drops or double-counts a step).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import ReproError, Session
from repro.obs.instrument import Instrumentation

from tests.property.test_lang_props import cel_expressions

#: One bounded window for every call: evaluation cost stays small, and
#: explain() + profile() must see the same window anyway (the planner's
#: narrowing — and hence the step count — depends on it).
WINDOW = ("Jan 1 1993", "Dec 31 1994")

_session = None


def _shared_session() -> Session:
    # One session for every example: building registry + holidays per
    # example would dominate the run time.  The profile() contract is
    # per-call, so sharing is safe.
    global _session
    if _session is None:
        _session = Session("Jan 1 1987", holiday_years=(1987, 1996),
                           instrumentation=Instrumentation())
        # The expression strategy references this derived name.
        _session.registry.define(
            "Jan-1993", script="return ([1]/MONTHS:during:1993/YEARS)")
    return _session


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cel_expressions())
def test_profile_step_count_matches_plan(text):
    session = _shared_session()
    explanation = session.explain(text, window=WINDOW)
    try:
        profile = session.profile(text, window=WINDOW)
    except ReproError:
        # A legitimate domain failure (e.g. set ops on an order-n
        # result); the strategy can generate those and profiling must
        # surface — not mask — them.  Covered by the semantics test.
        return
    if explanation.plan is None:
        # Interpreter fallback: no plan steps to compare, but the
        # profile must still produce a finished root span.
        assert profile.root.end is not None
        return
    # The VM executes the optimized plan when the optimizer gate is on;
    # Explanation.plan stays the pre-optimization plan by contract.
    executed = explanation.opt_plan if explanation.optimized \
        and explanation.opt_plan is not None else explanation.plan
    assert len(profile.steps()) == len(executed.steps)
    assert 0.0 <= profile.coverage <= 1.0


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(cel_expressions())
def test_profile_result_matches_untraced_evaluation(text):
    """Tracing must not change evaluation semantics."""
    session = _shared_session()
    try:
        untraced = session.eval(text, window=WINDOW)
    except ReproError as exc:
        # Tracing must fail the same way the untraced evaluation does.
        with pytest.raises(type(exc)):
            session.profile(text, window=WINDOW)
        return
    profile = session.profile(text, window=WINDOW)
    assert profile.result == untraced
