"""Section 5 hands-on: this paper's calendars vs MultiCal, bridged.

The paper compares its nested-interval-list calendars against Soo &
Snodgrass's MultiCal and concludes the proposals are orthogonal:
MultiCal does multi-calendar input/output of temporal constants; this
system does the algebra (selection, foreach).  Both are implemented
here, and the bridge composes them.

Run with::

    python examples/multical_compare.py
"""

from repro import CalendarRegistry, CalendarSystem
from repro.catalog import install_standard_calendars, install_us_holidays
from repro.core import Calendar
from repro.multical import (
    CalendricSystem,
    FiscalMCCalendar,
    MCSpan,
    calendar_to_mc_intervals,
    render_calendar,
)


def main() -> None:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=20)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2006)

    multical = CalendricSystem(registry.system.epoch)
    multical.register(FiscalMCCalendar(multical.epoch, start_month=10))

    # --- MultiCal's strength: one chronon, many calendars -----------------
    event = multical.input_event("Nov 19 1993")
    print("One instant, three renderings:")
    print(f"   gregorian: {multical.output_event(event)}")
    print(f"   fiscal:    {multical.output_event(event, 'fiscal')}")
    print(f"   chronon:   {event.chronon}")
    print()

    # Variable spans: Jan 31 + 1 month clamps (MultiCal semantics).
    jan31 = multical.input_event("Jan 31 1993")
    print("Variable-span arithmetic: Jan 31 1993 + 1 month =",
          multical.output_event(multical.add(jan31, MCSpan(months=1))))
    print()

    # --- This system's strength: the algebra -----------------------------
    expirations = registry.eval_expression(
        "[3]/([5]/DAYS:during:WEEKS):overlaps:MONTHS:during:1993/YEARS")
    flat = expirations.flatten() if expirations.order != 1 else expirations
    print("Third Fridays of 1993 (a two-operator calendar expression):")
    print("   gregorian:", ", ".join(
        render_calendar(multical, flat)[:4]), "...")
    print("   fiscal:   ", ", ".join(
        render_calendar(multical, flat, "fiscal")[:4]), "...")
    print()

    # --- The paper's point about MultiCal's missing nested lists ----------
    by_month = registry.eval_expression(
        "WEEKS:during:[1-3]/MONTHS:during:1993/YEARS")
    print(f"'Weeks within each of Jan-Mar 1993' is an order-"
          f"{by_month.order} calendar with {len(by_month)} groups — "
          "selection ([3]/...) needs that structure.")
    flattened = calendar_to_mc_intervals(by_month)
    print(f"Exported to MultiCal intervals it flattens to "
          f"{len(flattened)} rows: the grouping (and with it the "
          "foreach/selection operators) is unrepresentable there,")
    print("which is exactly the comparison the paper draws in section 5.")
    print()

    # --- Composed: fiscal-year constants feeding the algebra --------------
    fy94 = multical.input_interval("FY1994 M01 D01", "FY1994 M12 D30",
                                   calendar="fiscal")
    fy_cal = Calendar.interval(fy94.start, fy94.end)
    paydays = registry.eval_script(
        "{return([n]/AM_BUS_DAYS:during:MONTHS & FY94);}",
        window=("Jan 1 1993", "Dec 31 1994"), env={"FY94": fy_cal})
    print("Last business day of each month in (fiscally-input) FY1994:")
    for iv in paydays.elements[:5]:
        print(f"   {registry.system.date_of(iv.lo)}   "
              f"({multical.calendar('fiscal').format(iv.lo)})")
    print(f"   ... ({len(paydays)} total)")


if __name__ == "__main__":
    main()
