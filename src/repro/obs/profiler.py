"""A stdlib-only continuous wall-clock sampling profiler.

A daemon thread wakes ``hertz`` times per second, walks every live
thread's stack via :func:`sys._current_frames` (its own excluded), and
folds each stack into a ``root;child;leaf`` key whose hit count is
accumulated in a bounded table.  The folded output
(:meth:`SamplingProfiler.folded`) is the collapsed-stack text format
consumed by ``flamegraph.pl`` and speedscope directly.

Design constraints:

* **No dependencies, no signals.**  ``sys._current_frames`` is a
  CPython-blessed introspection hook; sampling from a thread (rather
  than SIGPROF) keeps the profiler usable alongside arbitrary
  application signal handling and on any thread.
* **Bounded memory.**  At most ``max_stacks`` distinct stacks are
  retained; further unique stacks collapse into the reserved
  ``(other)`` key and are tallied in :attr:`overflowed` — a runaway
  eval workload cannot grow the table without bound.
* **Cheap enough to leave on.**  One sample walks a handful of frames
  per thread; at the default ~97 Hz the overhead on the evaluation
  workload is benchmarked below 2% (``benchmarks/test_bench_obs.py``).

The sampler is wall-clock: a thread blocked on a lock or socket is
sampled exactly like a running one, which is what you want when hunting
stalls in a threaded engine.
"""

from __future__ import annotations

import os
import sys
import threading
import time

__all__ = ["SamplingProfiler", "DEFAULT_HERTZ"]

#: Default sampling rate.  A prime near 100 Hz avoids lockstep with
#: common periodic work (timers, 10ms schedulers) that would bias
#: samples toward or away from the periodic code.
DEFAULT_HERTZ = 97.0

#: Reserved folded-stack key unique stacks collapse into past the cap.
OTHER_STACK = "(other)"


class SamplingProfiler:
    """Continuous folded-stack sampler over ``sys._current_frames``.

    ``start()``/``stop()`` control a daemon sampling thread;
    :meth:`folded` renders the aggregate as collapsed-stack text and
    :meth:`profile_for` captures an isolated window (used by the
    ``/profile?seconds=N`` telemetry endpoint).  All methods are
    thread-safe; ``start`` and ``stop`` are idempotent.
    """

    def __init__(self, hertz: float = DEFAULT_HERTZ, *,
                 max_stacks: int = 10_000, max_depth: int = 64) -> None:
        if hertz <= 0:
            raise ValueError("sampling rate must be positive")
        if max_stacks < 1:
            raise ValueError("max_stacks must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.hertz = float(hertz)
        self.interval = 1.0 / self.hertz
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._overflowed = 0
        self._errors = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the sampling thread is alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the daemon sampling thread (no-op when running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop_event = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True)
            self._started_at = time.perf_counter()
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the thread (no-op when stopped)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None or not thread.is_alive():
            return
        self._stop_event.set()
        thread.join(timeout=2.0)

    def clear(self) -> None:
        """Drop every accumulated sample (the sampler keeps running)."""
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._overflowed = 0
            self._errors = 0

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        stop = self._stop_event
        own_id = threading.get_ident()
        while not stop.wait(self.interval):
            try:
                self._sample_once(own_id)
            except Exception:
                with self._lock:
                    self._errors += 1

    def _sample_once(self, own_id: int) -> None:
        frames = sys._current_frames()
        stacks: list[str] = []
        for thread_id, frame in frames.items():
            if thread_id == own_id:
                continue
            parts: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                parts.append(
                    f"{os.path.basename(code.co_filename)}:{code.co_name}")
                frame = frame.f_back
                depth += 1
            if parts:
                parts.reverse()  # folded stacks are root-first
                stacks.append(";".join(parts))
        del frames
        with self._lock:
            self._samples += 1
            for stack in stacks:
                if stack in self._counts:
                    self._counts[stack] += 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[stack] = 1
                else:
                    self._counts[OTHER_STACK] = \
                        self._counts.get(OTHER_STACK, 0) + 1
                    self._overflowed += 1

    # -- reading ------------------------------------------------------------

    @property
    def samples(self) -> int:
        """Number of sampling sweeps taken so far."""
        return self._samples

    @property
    def overflowed(self) -> int:
        """Thread-stacks collapsed into ``(other)`` past ``max_stacks``."""
        return self._overflowed

    @property
    def errors(self) -> int:
        """Sampling sweeps that raised (swallowed, counted)."""
        return self._errors

    def counts(self) -> "dict[str, int]":
        """A copy of the folded-stack hit counts."""
        with self._lock:
            return dict(self._counts)

    def folded(self, counts: "dict[str, int] | None" = None) -> str:
        """Collapsed-stack text: one ``stack count`` line, hottest first.

        The format ``flamegraph.pl`` and speedscope ingest directly.
        ``counts`` defaults to the profiler's full accumulation; pass a
        delta (see :meth:`profile_for`) to render a window.
        """
        if counts is None:
            counts = self.counts()
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return "\n".join(f"{stack} {count}" for stack, count in ordered)

    def top(self, n: int = 10) -> "list[tuple[str, int]]":
        """The ``n`` hottest leaf frames with their sample counts."""
        leaves: dict[str, int] = {}
        for stack, count in self.counts().items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ordered = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
        return ordered[:n]

    def profile_for(self, seconds: float) -> str:
        """Sample for ``seconds`` and return that window's folded text.

        Starts the sampler if it is not running (and stops it again
        afterwards in that case); a running sampler is left running and
        the window is computed as a count delta, so the endpoint can be
        hit while continuous profiling is on without disturbing it.
        """
        seconds = max(0.05, float(seconds))
        was_running = self.running
        before = self.counts() if was_running else {}
        if not was_running:
            self.start()
        time.sleep(seconds)
        after = self.counts()
        if not was_running:
            self.stop()
        window = {stack: count - before.get(stack, 0)
                  for stack, count in after.items()
                  if count - before.get(stack, 0) > 0}
        return self.folded(window)

    def stats(self) -> dict:
        """Sampler state for ``\\prof`` and JSON surfaces."""
        with self._lock:
            return {
                "running": self.running,
                "hertz": self.hertz,
                "samples": self._samples,
                "stacks": len(self._counts),
                "max_stacks": self.max_stacks,
                "overflowed": self._overflowed,
                "errors": self._errors,
            }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (f"SamplingProfiler({state}, {self.hertz:g} Hz, "
                f"samples={self._samples})")
