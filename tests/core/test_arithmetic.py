"""Unit tests for point navigation and date-arithmetic schemes."""

import pytest

from repro.core import (
    Calendar,
    CivilDate,
    GregorianScheme,
    Thirty360Scheme,
    count_points_between,
    next_point,
    point_index,
    prev_point,
    shift_point,
)

# Business-day style calendar: Mon-Fri instants of two weeks (days 1..5
# and 8..12), as one interval per run.
BUS = Calendar.from_intervals([(1, 5), (8, 12)])


class TestNextPoint:
    def test_inside_interval(self):
        assert next_point(BUS, 2) == 3

    def test_gap_jumps_to_next_interval(self):
        assert next_point(BUS, 5) == 8

    def test_inclusive(self):
        assert next_point(BUS, 5, inclusive=True) == 5
        assert next_point(BUS, 6, inclusive=True) == 8

    def test_before_everything(self):
        assert next_point(BUS, -10) == 1

    def test_after_everything(self):
        assert next_point(BUS, 12) is None

    def test_empty_calendar(self):
        assert next_point(Calendar(), 1) is None

    def test_skips_zero(self):
        cal = Calendar.from_intervals([(-3, 3)])
        assert next_point(cal, -1) == 1


class TestPrevPoint:
    def test_inside(self):
        assert prev_point(BUS, 3) == 2

    def test_gap(self):
        assert prev_point(BUS, 8) == 5

    def test_inclusive(self):
        assert prev_point(BUS, 8, inclusive=True) == 8

    def test_before_everything(self):
        assert prev_point(BUS, 1) is None

    def test_after_everything(self):
        assert prev_point(BUS, 50) == 12

    def test_skips_zero(self):
        cal = Calendar.from_intervals([(-3, 3)])
        assert prev_point(cal, 1) == -1


class TestShiftPoint:
    def test_forward(self):
        assert shift_point(BUS, 1, 2) == 3

    def test_forward_across_gap(self):
        assert shift_point(BUS, 4, 3) == 9

    def test_backward(self):
        assert shift_point(BUS, 9, -2) == 8

    def test_zero_snaps_forward(self):
        assert shift_point(BUS, 6, 0) == 8

    def test_from_non_member(self):
        # Counting starts at the next member.
        assert shift_point(BUS, 6, 1) == 9

    def test_exhausted(self):
        assert shift_point(BUS, 11, 5) is None
        assert shift_point(BUS, 2, -5) is None

    def test_paper_seventh_preceding(self):
        # [-7] selection semantics: 7 business days back, inclusive count.
        days = Calendar.from_intervals([(d, d) for d in range(1, 31)
                                        if d % 7 not in (6, 0)])
        target = 30
        seventh = shift_point(days, target, -7)
        assert seventh is not None
        assert count_points_between(days, seventh, target) == 7


class TestPointIndex:
    def test_first(self):
        assert point_index(BUS, 1) == 0

    def test_in_second_interval(self):
        assert point_index(BUS, 9) == 6

    def test_non_member(self):
        assert point_index(BUS, 6) is None

    def test_count_between(self):
        assert count_points_between(BUS, 1, 12) == 10
        assert count_points_between(BUS, 4, 9) == 4
        assert count_points_between(BUS, 9, 4) == 4  # symmetric


class TestGregorianScheme:
    def test_days_between(self):
        g = GregorianScheme()
        assert g.days_between(CivilDate(1993, 1, 1),
                              CivilDate(1994, 1, 1)) == 365
        assert g.days_between(CivilDate(1988, 1, 1),
                              CivilDate(1989, 1, 1)) == 366

    def test_add_days(self):
        g = GregorianScheme()
        assert g.add_days(CivilDate(1993, 1, 31), 1) == CivilDate(1993, 2, 1)
        assert g.add_days(CivilDate(1993, 3, 1), -1) == \
            CivilDate(1993, 2, 28)

    def test_year_basis(self):
        assert GregorianScheme().days_in_year() == 365


class TestThirty360Scheme:
    def test_every_month_is_thirty_days(self):
        t = Thirty360Scheme()
        for month in range(1, 12):
            assert t.days_between(CivilDate(1993, month, 15),
                                  CivilDate(1993, month + 1, 15)) == 30

    def test_full_year_is_360(self):
        t = Thirty360Scheme()
        assert t.days_between(CivilDate(1993, 1, 1),
                              CivilDate(1994, 1, 1)) == 360

    def test_end_of_month_rule(self):
        t = Thirty360Scheme()
        # Jan 31 -> Feb 28: d1 capped to 30; 30/360 gives 28 days.
        assert t.days_between(CivilDate(1993, 1, 31),
                              CivilDate(1993, 2, 28)) == 28

    def test_feb_end_to_march(self):
        t = Thirty360Scheme()
        assert t.days_between(CivilDate(1993, 2, 28),
                              CivilDate(1993, 3, 30)) == 30

    def test_differs_from_gregorian(self):
        t, g = Thirty360Scheme(), GregorianScheme()
        a, b = CivilDate(1993, 1, 15), CivilDate(1993, 3, 15)
        assert t.days_between(a, b) == 60
        assert g.days_between(a, b) == 59

    def test_add_days_on_360_grid(self):
        t = Thirty360Scheme()
        assert t.add_days(CivilDate(1993, 1, 15), 30) == \
            CivilDate(1993, 2, 15)
        assert t.add_days(CivilDate(1993, 1, 15), 360) == \
            CivilDate(1994, 1, 15)

    def test_add_days_snaps_to_civil_grid(self):
        t = Thirty360Scheme()
        # Jan 29 + 30 "days" lands on the virtual Feb 29 -> snapped to 28.
        result = t.add_days(CivilDate(1993, 1, 29), 30)
        assert result == CivilDate(1993, 2, 28)

    def test_paper_year_basis(self):
        # The paper: 30-day months but a 365-day year for the yield.
        assert Thirty360Scheme().days_in_year() == 365
        assert Thirty360Scheme(yield_basis=360).days_in_year() == 360
