"""The Postquel-like query language: lexer, AST, parser, printer."""
