"""Exception hierarchy for the core calendar system.

Every error raised by :mod:`repro.core` derives from :class:`CalendarError`
so that applications can catch calendar-system problems with a single
``except`` clause while still being able to discriminate the cause.
:class:`CalendarError` itself derives from the package-wide
:class:`repro.errors.ReproError` (with its ``context`` payload).
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "CalendarError",
    "InvalidIntervalError",
    "AxisError",
    "GranularityError",
    "ChronologyError",
    "SelectionError",
    "OperatorError",
    "LifespanError",
    "ConfigurationError",
]


class CalendarError(ReproError):
    """Base class of all calendar-system errors."""


class InvalidIntervalError(CalendarError, ValueError):
    """An interval violates the axis conventions (lo > hi, or a 0 endpoint)."""


class AxisError(CalendarError, ValueError):
    """Invalid arithmetic on the zero-skipping time axis (e.g. point 0)."""


class GranularityError(CalendarError, ValueError):
    """Unknown granularity name, or an unsupported granularity conversion."""


class ChronologyError(CalendarError, ValueError):
    """A civil date is malformed or falls outside the supported range."""


class SelectionError(CalendarError, ValueError):
    """A selection predicate is malformed (e.g. index 0, empty predicate)."""


class OperatorError(CalendarError, ValueError):
    """Unknown listop name or an operator applied to incompatible operands."""


class LifespanError(CalendarError, ValueError):
    """A request falls outside a calendar's declared lifespan."""


class ConfigurationError(CalendarError, ValueError):
    """A component was built with invalid configuration (sizes, bounds)."""
