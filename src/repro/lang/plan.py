"""Evaluation plans: the "set of procedural statements" of section 3.2.

A plan is a linear sequence of register-targeted steps (generate a basic
calendar over a window, apply a foreach/selection/set operation, …)
produced by :mod:`repro.lang.planner` from a factorized expression and
executed by :class:`PlanVM` against an
:class:`~repro.lang.interpreter.EvalContext`.

Plans are what the CALENDARS catalog stores in its ``eval-plan`` column
(Figure 1) — :meth:`Plan.text` renders them in a readable procedural form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.algebra import SelectionPredicate, caloperate, foreach, \
    label_select, select
from repro.core.calendar import Calendar
from repro.core.granularity import Granularity
from repro.lang.defs import BasicDef, DerivedDef, ExplicitDef
from repro.lang.errors import EvaluationError, PlanError

__all__ = [
    "WindowSpec", "PlanStep", "GenerateStep", "LoadStep", "ForEachStep",
    "SelectStep", "LabelSelectStep", "SetOpStep", "CalOperateStep",
    "FlattenStep", "ShiftStep", "InstantsStep", "HullStep",
    "IntervalStep", "PointStep", "TodayStep", "GenerateCallStep",
    "Plan", "PlanVM",
]


@dataclass(frozen=True)
class WindowSpec:
    """A generation window: either the context window or a fixed tick range."""

    fixed: tuple[int, int] | None = None

    def resolve(self, context) -> tuple[int, int]:
        """The concrete tick window for an evaluation context."""
        if self.fixed is not None:
            return self.fixed
        return context.window

    def __str__(self) -> str:
        if self.fixed is None:
            return "<context-window>"
        return f"[{self.fixed[0]}, {self.fixed[1]}]"


CONTEXT_WINDOW = WindowSpec(None)


class PlanStep:
    """Base class of plan steps; every step writes one register."""

    target: str

    def describe(self) -> str:
        """One-line procedural rendering of this step."""
        raise NotImplementedError


@dataclass(frozen=True)
class GenerateStep(PlanStep):
    """Materialise a basic calendar over a window (cover mode)."""

    target: str
    calendar: Granularity
    window: WindowSpec

    def describe(self) -> str:
        return (f"{self.target} := generate({self.calendar.name}, "
                f"<unit>, {self.window})")


@dataclass(frozen=True)
class LoadStep(PlanStep):
    """Load a named calendar via the resolver (explicit values or a
    multi-statement derivation that cannot be compiled inline)."""

    target: str
    name: str

    def describe(self) -> str:
        return f"{self.target} := load({self.name!r})"


@dataclass(frozen=True)
class ForEachStep(PlanStep):
    target: str
    op: str
    strict: bool
    left: str
    right: str

    def describe(self) -> str:
        sep = ":" if self.strict else "."
        return (f"{self.target} := for each c in {self.left}: "
                f"keep c {sep}{self.op}{sep} {self.right}")


@dataclass(frozen=True)
class SelectStep(PlanStep):
    target: str
    predicate: SelectionPredicate
    source: str

    def describe(self) -> str:
        return f"{self.target} := select {self.predicate} from {self.source}"


@dataclass(frozen=True)
class LabelSelectStep(PlanStep):
    target: str
    label: int | str
    source: str

    def describe(self) -> str:
        return f"{self.target} := select label {self.label} from {self.source}"


@dataclass(frozen=True)
class SetOpStep(PlanStep):
    target: str
    op: str
    left: str
    right: str

    def describe(self) -> str:
        return f"{self.target} := {self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class CalOperateStep(PlanStep):
    target: str
    source: str
    counts: tuple[int, ...]
    end: int | None

    def describe(self) -> str:
        end = "*" if self.end is None else str(self.end)
        counts = "; ".join(str(c) for c in self.counts)
        return (f"{self.target} := caloperate({self.source}, {end}; "
                f"({counts}))")


@dataclass(frozen=True)
class IntervalStep(PlanStep):
    target: str
    lo: int
    hi: int

    def describe(self) -> str:
        return f"{self.target} := interval({self.lo}, {self.hi})"


@dataclass(frozen=True)
class PointStep(PlanStep):
    target: str
    date_text: str

    def describe(self) -> str:
        return f"{self.target} := point({self.date_text!r})"


@dataclass(frozen=True)
class TodayStep(PlanStep):
    target: str

    def describe(self) -> str:
        return f"{self.target} := today"


@dataclass(frozen=True)
class FlattenStep(PlanStep):
    """Collapse an order-n calendar to order 1."""

    target: str
    source: str

    def describe(self) -> str:
        return f"{self.target} := flatten({self.source})"


@dataclass(frozen=True)
class ShiftStep(PlanStep):
    """Translate every interval of a calendar by a tick delta."""

    target: str
    source: str
    delta: int

    def describe(self) -> str:
        return f"{self.target} := shift({self.source}, {self.delta})"


@dataclass(frozen=True)
class InstantsStep(PlanStep):
    """Explode a calendar into one instant per covered point."""

    target: str
    source: str

    def describe(self) -> str:
        return f"{self.target} := instants({self.source})"


@dataclass(frozen=True)
class HullStep(PlanStep):
    """Collapse a calendar to its single spanning interval."""

    target: str
    source: str

    def describe(self) -> str:
        return f"{self.target} := hull({self.source})"


@dataclass(frozen=True)
class GenerateCallStep(PlanStep):
    """An explicit ``generate(cal, unit, start, end[, mode])`` call."""

    target: str
    calendar: str
    unit: str
    start: object
    end: object
    mode: str = "clip"

    def describe(self) -> str:
        return (f"{self.target} := generate({self.calendar}, {self.unit}, "
                f"[{self.start!r}, {self.end!r}], {self.mode})")


@dataclass
class Plan:
    """An ordered list of steps plus the register holding the result.

    A compiled plan is **frozen by convention**: nothing mutates
    ``steps`` after the planner returns it.  That is what lets the
    catalog cache one plan per expression and lets
    ``Session.eval_many`` hand the same plan object to several worker
    threads at once — each execution's mutable state lives in the
    :class:`PlanVM` run, never on the plan.
    """

    steps: list[PlanStep] = field(default_factory=list)
    result: str = ""

    def text(self) -> str:
        """Readable procedural rendering (the eval-plan catalog column)."""
        lines = [step.describe() for step in self.steps]
        lines.append(f"return {self.result}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)

    def generate_steps(self) -> "list[GenerateStep]":
        """All basic-calendar generation steps of the plan."""
        return [s for s in self.steps if isinstance(s, GenerateStep)]


class PlanVM:
    """Executes a :class:`Plan` against an EvalContext.

    **Re-entrancy contract**: a VM instance is cheap and single-use —
    construct one per ``run`` call.  The register file is a local of
    :meth:`run`, so concurrent runs of the *same* plan (the batch
    engine's worker threads) never share execution state; the only
    shared mutable structure is the context's materialisation dict,
    whose entries are idempotent (same key → equal calendar), making
    duplicate concurrent writes harmless.
    """

    def __init__(self, context) -> None:
        self.context = context

    def run(self, plan: Plan) -> Calendar:
        """Execute the steps in order; the (window-clipped) result.

        When the context carries an active tracer this dispatches to the
        instrumented twin :meth:`_run_traced`; the disabled-tracing cost
        is this single ``is not None`` branch per plan run (plus one for
        the telemetry pipeline, which emits a ``plan.run`` event per
        execution when attached).
        """
        events = self.context.events
        if self.context.tracer is not None:
            result = self._run_traced(plan)
            if events is not None:
                events.emit("plan.run", steps=len(plan.steps),
                            result=plan.result, traced=True)
            return result
        if events is not None:
            from time import perf_counter
            t0 = perf_counter()
            registers = {}
            for step in plan.steps:
                registers[step.target] = self._run_step(step, registers)
            result = self._finish(plan, registers)
            events.emit("plan.run", steps=len(plan.steps),
                        result=plan.result, traced=False,
                        duration_s=perf_counter() - t0)
            return result
        registers: dict[str, object] = {}
        for step in plan.steps:
            registers[step.target] = self._run_step(step, registers)
        return self._finish(plan, registers)

    def _run_traced(self, plan: Plan) -> Calendar:
        """Instrumented twin of :meth:`run`: per-opcode spans + timings."""
        from time import perf_counter

        tracer = self.context.tracer
        metrics = self.context.metrics
        step_hist = metrics.histogram("vm.step_seconds") if metrics else None
        step_count = metrics.counter("vm.steps") if metrics else None
        with tracer.span("plan.run", steps=len(plan.steps),
                         result=plan.result):
            registers: dict[str, object] = {}
            for step in plan.steps:
                with tracer.span(f"plan.step.{type(step).__name__}",
                                 target=step.target):
                    t0 = perf_counter()
                    registers[step.target] = self._run_step(step, registers)
                    if step_hist is not None:
                        step_hist.observe(perf_counter() - t0)
                        step_count.inc()
            with tracer.span("plan.finish"):
                return self._finish(plan, registers)

    def _finish(self, plan: Plan, registers: dict) -> Calendar:
        """Fetch the result register and clip it to the context window."""
        try:
            result = registers[plan.result]
        except KeyError:
            raise PlanError(
                f"plan result register {plan.result!r} was never written")
        if not isinstance(result, Calendar):
            raise PlanError("plan did not produce a calendar")
        from repro.lang.interpreter import clip_to_window
        return clip_to_window(result, self.context.window)

    def _run_step(self, step: PlanStep, registers: dict):
        ctx = self.context
        if isinstance(step, GenerateStep):
            return ctx.materialise_basic(step.calendar,
                                         step.window.resolve(ctx),
                                         mode="cover")
        if isinstance(step, LoadStep):
            definition = ctx.resolver(step.name)
            if definition is None:
                raise PlanError(f"unknown calendar {step.name!r}")
            # Defer to the interpreter for scripted/explicit definitions.
            from repro.lang.interpreter import Interpreter
            return Interpreter(ctx)._eval_definition(step.name, definition)
        if isinstance(step, ForEachStep):
            left = registers[step.left]
            right = registers[step.right]
            if left.order != 1:
                left = left.flatten()
            reference = (right.elements[0]
                         if right.order == 1 and len(right) == 1 else right)
            return foreach(step.op, left, reference, strict=step.strict)
        if isinstance(step, SelectStep):
            return select(registers[step.source], step.predicate)
        if isinstance(step, LabelSelectStep):
            return label_select(registers[step.source], step.label)
        if isinstance(step, SetOpStep):
            left, right = registers[step.left], registers[step.right]
            if step.op == "+":
                return left.union(right)
            if step.op == "-":
                return left.difference(right)
            if step.op == "&":
                return left.intersection(right)
            raise PlanError(f"unknown set op {step.op!r}")
        if isinstance(step, CalOperateStep):
            source = registers[step.source]
            if source.order != 1:
                source = source.flatten()
            return caloperate(source, step.counts, step.end)
        if isinstance(step, IntervalStep):
            return Calendar.interval(step.lo, step.hi, ctx.unit)
        if isinstance(step, PointStep):
            if ctx.unit != Granularity.DAYS:
                raise EvaluationError(
                    "point() literals require a DAYS evaluation unit")
            return Calendar.point(ctx.system.day_of(step.date_text),
                                  Granularity.DAYS)
        if isinstance(step, FlattenStep):
            return registers[step.source].flatten()
        if isinstance(step, ShiftStep):
            source = registers[step.source]
            if source.order != 1:
                source = source.flatten()
            return Calendar.from_intervals(
                [iv.shift(step.delta) for iv in source.elements],
                source.granularity)
        if isinstance(step, InstantsStep):
            source = registers[step.source]
            points = sorted({t for iv in source.iter_intervals()
                             for t in iv})
            return Calendar.from_intervals([(t, t) for t in points],
                                           source.granularity)
        if isinstance(step, HullStep):
            source = registers[step.source]
            span = source.span()
            if span is None:
                return Calendar.from_intervals([], source.granularity)
            return Calendar.from_intervals([span], source.granularity)
        if isinstance(step, TodayStep):
            if ctx.today is None:
                raise EvaluationError("'today' is not bound in this context")
            return Calendar.point(ctx.today, ctx.unit)
        if isinstance(step, GenerateCallStep):
            return ctx.generate_call(step.calendar, step.unit,
                                     (step.start, step.end),
                                     mode=step.mode)
        raise PlanError(f"unknown plan step {step!r}")
