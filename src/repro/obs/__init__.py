"""Observability: metrics, execution tracing and JSON export.

The subsystem behind the unified :class:`repro.Session` instrumentation
API — see :mod:`repro.obs.metrics` (counters/gauges/histograms),
:mod:`repro.obs.tracer` (nested spans, trace ring buffer),
:mod:`repro.obs.instrument` (the bundle wired through interpreter, plan
VM, planner, materialisation cache, query executor and DBCRON) and
:mod:`repro.obs.export` (JSON snapshots).
"""

from repro.obs.export import export_json, metrics_to_dict, traces_to_dict
from repro.obs.instrument import (
    Instrumentation,
    get_default_instrumentation,
    set_default_instrumentation,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "Span", "Tracer",
    "Instrumentation", "get_default_instrumentation",
    "set_default_instrumentation",
    "metrics_to_dict", "traces_to_dict", "export_json",
]
