"""Unit tests for Interval and the listop registry."""

import pytest

from repro.core import (
    Interval,
    InvalidIntervalError,
    LISTOPS,
    OperatorError,
    get_listop,
    register_listop,
)


class TestConstruction:
    def test_basic(self):
        iv = Interval(1, 5)
        assert iv.lo == 1 and iv.hi == 5

    def test_spanning_zero_allowed(self):
        # The paper's WEEKS example starts with (-4, 3).
        iv = Interval(-4, 3)
        assert len(iv) == 7  # skips 0: a civil week

    def test_zero_endpoint_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(0, 3)
        with pytest.raises(InvalidIntervalError):
            Interval(-3, 0)

    def test_inverted_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 1)

    def test_non_int_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1.0, 2)
        with pytest.raises(InvalidIntervalError):
            Interval(True, 2)

    def test_instant(self):
        assert Interval(4, 4).is_instant()
        assert not Interval(4, 5).is_instant()

    def test_str(self):
        assert str(Interval(-4, 3)) == "(-4,3)"


class TestMembership:
    def test_contains_points(self):
        iv = Interval(-2, 2)
        assert -2 in iv and -1 in iv and 1 in iv and 2 in iv
        assert 0 not in iv
        assert 3 not in iv

    def test_iteration_skips_zero(self):
        assert list(Interval(-2, 2)) == [-2, -1, 1, 2]

    def test_len_counts_axis_points(self):
        assert len(Interval(1, 7)) == 7
        assert len(Interval(-4, 3)) == 7  # one civil week across new year


class TestSetOperations:
    def test_intersect_overlapping(self):
        assert Interval(1, 10).intersect(Interval(5, 20)) == Interval(5, 10)

    def test_intersect_disjoint(self):
        assert Interval(1, 3).intersect(Interval(5, 9)) is None

    def test_intersect_touching(self):
        assert Interval(1, 5).intersect(Interval(5, 9)) == Interval(5, 5)

    def test_union_hull(self):
        assert Interval(1, 3).union_hull(Interval(7, 9)) == Interval(1, 9)

    def test_subtract_middle_splits(self):
        assert Interval(1, 10).subtract(Interval(4, 6)) == [
            Interval(1, 3), Interval(7, 10)]

    def test_subtract_prefix(self):
        assert Interval(1, 10).subtract(Interval(1, 4)) == [Interval(5, 10)]

    def test_subtract_all(self):
        assert Interval(3, 5).subtract(Interval(1, 9)) == []

    def test_subtract_disjoint(self):
        assert Interval(1, 3).subtract(Interval(7, 9)) == [Interval(1, 3)]

    def test_subtract_respects_zero_skip(self):
        pieces = Interval(-3, 3).subtract(Interval(-1, 1))
        assert pieces == [Interval(-3, -2), Interval(2, 3)]

    def test_shift(self):
        assert Interval(-2, 2).shift(1) == Interval(-1, 3)
        assert Interval(1, 2).shift(-2) == Interval(-2, -1)


class TestPaperRelations:
    """Relations exactly as defined in section 3.1."""

    def test_overlaps(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert Interval(1, 5).overlaps(Interval(3, 4))
        assert not Interval(1, 4).overlaps(Interval(5, 9))

    def test_during(self):
        assert Interval(3, 4).during(Interval(1, 9))
        assert Interval(1, 9).during(Interval(1, 9))
        assert not Interval(1, 9).during(Interval(3, 4))

    def test_meets(self):
        assert Interval(1, 5).meets(Interval(5, 9))
        assert not Interval(1, 4).meets(Interval(5, 9))
        assert not Interval(5, 9).meets(Interval(1, 5))

    def test_before_is_leq_on_endpoints(self):
        # The paper defines < as u1 <= l2 (touching counts).
        assert Interval(1, 5).before(Interval(5, 9))
        assert Interval(1, 4).before(Interval(5, 9))
        assert not Interval(1, 6).before(Interval(5, 9))

    def test_starts_before(self):
        assert Interval(1, 5).starts_before(Interval(2, 9))
        assert Interval(1, 5).starts_before(Interval(1, 5))
        assert not Interval(2, 5).starts_before(Interval(1, 9))

    def test_allen_extras(self):
        assert Interval(1, 3).strictly_before(Interval(4, 9))
        assert not Interval(1, 4).strictly_before(Interval(4, 9))
        assert Interval(1, 3).starts(Interval(1, 9))
        assert Interval(7, 9).finishes(Interval(1, 9))
        assert Interval(2, 3).equals(Interval(2, 3))


class TestListopRegistry:
    def test_paper_listops_present(self):
        for name in ("overlaps", "during", "meets", "<", "<=",
                     "intersects"):
            assert name in LISTOPS

    def test_get_unknown_raises(self):
        with pytest.raises(OperatorError):
            get_listop("no_such_op")

    def test_intersects_is_filtering(self):
        assert get_listop("intersects").shape == "filtering"

    def test_before_does_not_clip(self):
        assert get_listop("<").clips is False
        assert get_listop("meets").clips is False

    def test_register_and_use_custom(self):
        register_listop("test_same_length",
                        lambda a, b: len(a) == len(b), replace=True)
        op = get_listop("test_same_length")
        assert op(Interval(1, 3), Interval(7, 9))
        assert not op(Interval(1, 3), Interval(7, 8))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(OperatorError):
            register_listop("during", lambda a, b: True)

    def test_bad_shape_rejected(self):
        with pytest.raises(OperatorError):
            register_listop("test_bad_shape", lambda a, b: True,
                            shape="weird")
