"""Property-based tests for zero-skipping axis arithmetic."""

from hypothesis import given, strategies as st

from repro.core import (
    axis_add,
    axis_diff,
    axis_distance,
    axis_next,
    axis_prev,
)

axis_point = st.integers(min_value=-10_000, max_value=10_000).filter(
    lambda t: t != 0)
delta = st.integers(min_value=-20_000, max_value=20_000)


class TestGroupStructure:
    @given(axis_point, delta)
    def test_add_never_lands_on_zero(self, t, d):
        assert axis_add(t, d) != 0

    @given(axis_point, delta)
    def test_diff_inverts_add(self, t, d):
        assert axis_diff(axis_add(t, d), t) == d

    @given(axis_point, axis_point)
    def test_add_inverts_diff(self, a, b):
        assert axis_add(b, axis_diff(a, b)) == a

    @given(axis_point, delta, delta)
    def test_add_associative(self, t, d1, d2):
        assert axis_add(axis_add(t, d1), d2) == axis_add(t, d1 + d2)

    @given(axis_point)
    def test_zero_delta_identity(self, t):
        assert axis_add(t, 0) == t

    @given(axis_point)
    def test_next_prev_inverse(self, t):
        assert axis_prev(axis_next(t)) == t
        assert axis_next(axis_prev(t)) == t


class TestDistance:
    @given(axis_point, axis_point)
    def test_symmetric(self, a, b):
        assert axis_distance(a, b) == axis_distance(b, a)

    @given(axis_point)
    def test_self_distance_one(self, t):
        assert axis_distance(t, t) == 1

    @given(axis_point, axis_point, axis_point)
    def test_triangle_like(self, a, b, c):
        # Inclusive-point distance satisfies d(a,c) <= d(a,b) + d(b,c).
        assert axis_distance(a, c) <= \
            axis_distance(a, b) + axis_distance(b, c)

    @given(axis_point, delta)
    def test_distance_matches_delta(self, t, d):
        assert axis_distance(axis_add(t, d), t) == abs(d) + 1
