"""Cost-aware plan optimizer: the rewrite pass between Planner and PlanVM.

The planner emits a conservative linear plan; this module rewrites it
through five passes (see ``docs/IMPLEMENTATION_NOTES.md`` §9 for the full
rule catalog and soundness arguments):

1. **Common-subexpression elimination** — steps with identical canonical
   fingerprints (operand registers chased through earlier merges, windows
   resolved against the evaluation window unless the plan is reusable
   across windows) collapse onto one register.
2. **Select fusion** — a positional selection that is the sole consumer of
   a foreach fuses into one :class:`FusedForEachStep` kernel, selecting
   groups as they form instead of materialising the order-2 intermediate.
3. **Foreach merge fusion** — adjacent foreach steps where the inner
   grouping is immediately flattened into the outer merge into one
   :class:`MergedForEachStep` pass.
4. **Selection push-down** — a foreach whose left chain is provably
   window-local is replaced by a :class:`PipelineForEachStep` that
   re-evaluates the chain per *reference interval* over a narrowed
   dynamic window, generalising the paper's selection look-ahead to
   nested chains; gated by a cost model so it only fires when the
   narrowed generation work beats eager materialisation.
5. **Dead-step elimination** — steps whose registers became unreachable
   from the result register are dropped.

``optimize_plan`` never mutates its input plan (compiled plans are
memoised and shared across threads); it returns a fresh
:class:`OptimizationResult` carrying the rewritten plan, human-readable
rewrite descriptions, and per-register cardinality estimates for
``explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.granularity import Granularity, exact_ratio
from repro.core.interval import get_listop
from repro.lang.plan import (
    CalOperateStep,
    FlattenStep,
    ForEachStep,
    FusedForEachStep,
    GenerateStep,
    HullStep,
    IntervalStep,
    LabelSelectStep,
    LoadStep,
    MergedForEachStep,
    PeriodicStep,
    PipelineForEachStep,
    Plan,
    PlanStep,
    PointStep,
    SelectStep,
    SetOpStep,
    ShiftStep,
    TodayStep,
    WindowSpec,
)
from repro.lang.planner import _LOOKBACK_OPS

__all__ = ["OptimizationResult", "optimize_plan"]

#: Upper bound on the day-span of one element of each day-or-coarser
#: basic calendar (leap years, 31-day months).
_SPAN_DAYS = {
    Granularity.DAYS: 1,
    Granularity.WEEKS: 7,
    Granularity.MONTHS: 31,
    Granularity.YEARS: 366,
    Granularity.DECADES: 3653,
    Granularity.CENTURY: 36525,
}

#: Unit granularities the pipeline rewrite supports: tick arithmetic on
#: these axes is exact (fixed ratios to days).
_PIPELINE_UNITS = (Granularity.SECONDS, Granularity.MINUTES,
                   Granularity.HOURS, Granularity.DAYS)

#: Reference count above which per-reference re-evaluation cannot win.
_MAX_PIPELINE_REFS = 4096

#: Estimated per-reference, per-step Python overhead (in generated-interval
#: cost units) of a pipeline sub-run.
_PIPELINE_STEP_OVERHEAD = 32

#: Label-selection granularities whose labels are unique across the whole
#: axis (``find_label`` is then window-independent).
_UNIQUE_LABEL_GRANS = (Granularity.YEARS, Granularity.DECADES,
                       Granularity.CENTURY)


def _span_ticks(gran: Granularity, unit: Granularity) -> int | None:
    """Upper bound, in unit ticks, of one element of basic ``gran``."""
    try:
        if gran <= Granularity.DAYS:
            return exact_ratio(unit, gran)
        days = _SPAN_DAYS.get(gran)
        if days is None:
            return None
        return days * exact_ratio(unit, Granularity.DAYS)
    except Exception:
        return None


@dataclass
class _Est:
    """Cardinality estimate of a register: leaf count, typical leaf span
    (unit ticks), and group count when the register is order-2."""

    count: float
    span: float
    groups: float | None = None


@dataclass
class OptimizationResult:
    """An optimised plan plus the audit trail ``explain`` renders."""

    plan: Plan
    rewrites: list[str] = field(default_factory=list)
    eliminated: int = 0
    #: Per-register cardinality estimates ("~N ivs") for the final plan.
    costs: dict[str, str] = field(default_factory=dict)


def _operands(step: PlanStep) -> tuple[str, ...]:
    """Registers a step reads."""
    if isinstance(step, PeriodicStep):
        return ()  # ``source`` is the expression text, not a register
    if isinstance(step, (ForEachStep, FusedForEachStep, SetOpStep)):
        return (step.left, step.right)
    if isinstance(step, MergedForEachStep):
        return (step.left, step.right, step.right2)
    if isinstance(step, PipelineForEachStep):
        return (step.right,)
    if isinstance(step, (SelectStep, LabelSelectStep, FlattenStep,
                         ShiftStep, HullStep, CalOperateStep)):
        return (step.source,)
    source = getattr(step, "source", None)
    if isinstance(source, str):
        return (source,)
    return ()


def _retarget(step: PlanStep, mapping: dict) -> PlanStep:
    """A copy of ``step`` with operand registers chased through ``mapping``."""
    changes = {}
    for fld in ("left", "right", "right2", "source"):
        value = getattr(step, fld, None)
        if isinstance(value, str) and mapping.get(value, value) != value:
            changes[fld] = mapping[value]
    return replace(step, **changes) if changes else step


class _Optimizer:
    def __init__(self, plan: Plan, context_window, unit: Granularity,
                 reusable: bool, periodic=None) -> None:
        self.steps = list(plan.steps)
        self.result = plan.result
        self.context_window = context_window
        self.unit = unit
        self.reusable = reusable
        self.periodic = periodic
        self.rewrites: list[str] = []
        self.counts = {"periodic": 0, "cse": 0, "fused": 0, "merged": 0,
                       "pushdown": 0, "dce": 0}

    # -- shared helpers ----------------------------------------------------------

    def _consumers(self) -> dict:
        """register -> list of step indices reading it (result counts too)."""
        uses: dict[str, list[int]] = {}
        for i, step in enumerate(self.steps):
            for reg in _operands(step):
                uses.setdefault(reg, []).append(i)
        uses.setdefault(self.result, []).append(-1)
        return uses

    def _defs(self) -> dict:
        return {step.target: i for i, step in enumerate(self.steps)}

    def _note(self, kind: str, detail: str) -> None:
        self.counts[kind] += 1
        self.rewrites.append(f"{kind}: {detail}")

    # -- pass 0: periodic backend substitution -----------------------------------

    def periodic_backend(self) -> bool:
        """Replace the whole plan with one :class:`PeriodicStep`.

        Sound only for a compiled :class:`~repro.core.periodic.PeriodicSet`
        with *verified* element structure (``exact_elements``): expansion
        by modular arithmetic then reproduces exactly the whole elements
        the eager chain would keep after the final window clip.  Gated on
        a concrete day window (expansion needs one; record plans re-run
        under arbitrary windows and stay on the chain backend) and on the
        cost model: the expansion cost must beat the chain's generation
        cost whenever the latter is estimable.
        """
        pset = self.periodic
        if pset is None or not getattr(pset, "exact_elements", False):
            return False
        if self.reusable or self.context_window is None or \
                self.unit is not Granularity.DAYS:
            return False
        expansion = pset.expansion_cost(self.context_window)
        eager = 0.0
        for step in self.steps:
            if isinstance(step, GenerateStep):
                e = self._estimate_step(step, {}, self._window_ticks())
                if e is not None:
                    eager += e.count
        if eager and expansion >= eager:
            return False
        self.steps = [PeriodicStep(self.result, pset.source, pset)]
        self._note("periodic",
                   f"{self.result} := periodic backend "
                   f"({pset.describe()}; est {expansion} ivs vs "
                   f"{eager:.0f} generated)")
        return True

    # -- pass 1: common-subexpression elimination --------------------------------

    def _window_key(self, ws: WindowSpec):
        if self.reusable:
            # Record plans are reused under arbitrary evaluation windows;
            # only structurally identical windows may unify.
            return (ws.fixed, ws.dynamic)
        fixed = ws.fixed if ws.fixed is not None else self.context_window
        return (fixed, ws.dynamic)

    def _fingerprint(self, step: PlanStep, mapping: dict):
        fields = []
        for name, value in vars(step).items():
            if name == "target":
                continue
            if isinstance(value, str) and name in ("left", "right",
                                                   "right2", "source"):
                value = mapping.get(value, value)
            elif isinstance(value, WindowSpec):
                value = self._window_key(value)
            elif isinstance(value, Plan):
                value = value.text()
            fields.append((name, value))
        return (type(step).__name__, tuple(fields))

    def cse(self) -> None:
        seen: dict = {}
        mapping: dict[str, str] = {}
        out: list[PlanStep] = []
        for step in self.steps:
            step = _retarget(step, mapping)
            fp = self._fingerprint(step, mapping)
            kept = seen.get(fp)
            if kept is not None:
                mapping[step.target] = kept
                self._note("cse", f"{step.target} = {kept} "
                                  f"({type(step).__name__})")
                continue
            seen[fp] = step.target
            out.append(step)
        self.steps = out
        self.result = mapping.get(self.result, self.result)

    # -- pass 2: select fusion ---------------------------------------------------

    def fuse_selects(self) -> None:
        while True:
            uses = self._consumers()
            defs = self._defs()
            fused = False
            for j, step in enumerate(self.steps):
                if not isinstance(step, SelectStep):
                    continue
                i = defs.get(step.source)
                if i is None:
                    continue
                inner = self.steps[i]
                if not isinstance(inner, ForEachStep):
                    continue
                if uses.get(inner.target, []) != [j]:
                    continue
                self.steps[j] = FusedForEachStep(
                    step.target, inner.op, inner.strict, inner.left,
                    inner.right, step.predicate)
                del self.steps[i]
                self._note("fused", f"{step.target} := select "
                                    f"{step.predicate} ∘ foreach "
                                    f"{inner.target}")
                fused = True
                break
            if not fused:
                return

    # -- pass 3: foreach merge fusion --------------------------------------------

    def merge_foreach(self) -> None:
        while True:
            uses = self._consumers()
            defs = self._defs()
            merged = False
            for j, outer in enumerate(self.steps):
                if not isinstance(outer, ForEachStep):
                    continue
                i = defs.get(outer.left)
                if i is None:
                    continue
                inner = self.steps[i]
                drop = [i]
                if isinstance(inner, FlattenStep) and \
                        uses.get(inner.target, []) == [j]:
                    k = defs.get(inner.source)
                    if k is None:
                        continue
                    flat_of = self.steps[k]
                    if not isinstance(flat_of, ForEachStep) or \
                            uses.get(flat_of.target, []) != [i]:
                        continue
                    inner, drop = flat_of, sorted((i, k), reverse=True)
                elif not isinstance(inner, ForEachStep) or \
                        uses.get(inner.target, []) != [j]:
                    continue
                if get_listop(inner.op).shape == "filtering":
                    continue
                self.steps[j] = MergedForEachStep(
                    outer.target, inner.op, inner.strict, inner.left,
                    inner.right, outer.op, outer.strict, outer.right)
                for idx in drop:
                    del self.steps[idx]
                self._note("merged", f"{outer.target} := foreach "
                                     f"{outer.op} ∘ foreach {inner.op}")
                merged = True
                break
            if not merged:
                return

    # -- pass 4: selection push-down ---------------------------------------------

    def _estimates(self) -> dict[str, _Est]:
        window = self.context_window
        w_ticks = (window[1] - window[0] + 1) if window is not None else None
        est: dict[str, _Est] = {}
        for step in self.steps:
            e = self._estimate_step(step, est, w_ticks)
            if e is not None:
                est[step.target] = e
        return est

    def _estimate_step(self, step, est, w_ticks) -> "_Est | None":
        if isinstance(step, GenerateStep):
            span = _span_ticks(step.calendar, self.unit)
            if span is None:
                return None
            if step.window.fixed is not None:
                lo, hi = step.window.fixed
                ticks = hi - lo + 1
            elif w_ticks is not None:
                ticks = w_ticks
            else:
                return None
            return _Est(max(1.0, ticks / span), span)

        def of(reg):
            return est.get(reg)

        if isinstance(step, (ForEachStep, MergedForEachStep)):
            left = of(step.left)
            ref = of(step.right2 if isinstance(step, MergedForEachStep)
                     else step.right)
            if left is None or ref is None:
                return None
            per_group = max(1.0, ref.span / max(left.span, 1.0))
            count = min(left.count, ref.count * per_group)
            return _Est(count, left.span, groups=ref.count)
        if isinstance(step, FusedForEachStep):
            left, ref = of(step.left), of(step.right)
            if left is None or ref is None:
                return None
            picks = (1.0 if step.predicate.is_singleton()
                     else len(step.predicate.items))
            return _Est(ref.count * picks, left.span)
        if isinstance(step, PipelineForEachStep):
            ref = of(step.right)
            if ref is None:
                return None
            return _Est(ref.count, ref.span)
        if isinstance(step, SelectStep):
            src = of(step.source)
            if src is None:
                return None
            if src.groups is not None:
                picks = (1.0 if step.predicate.is_singleton()
                         else len(step.predicate.items))
                return _Est(min(src.count, src.groups * picks), src.span)
            picks = len(step.predicate.items)
            return _Est(min(src.count, float(picks)), src.span)
        if isinstance(step, LabelSelectStep):
            src = of(step.source)
            return None if src is None else _Est(1.0, src.span)
        if isinstance(step, SetOpStep):
            a, b = of(step.left), of(step.right)
            if a is None or b is None:
                return None
            return _Est(a.count + b.count, max(a.span, b.span))
        if isinstance(step, (FlattenStep, ShiftStep)):
            src = of(step.source)
            return None if src is None else _Est(src.count, src.span)
        if isinstance(step, HullStep):
            src = of(step.source)
            return None if src is None else _Est(1.0, src.count * src.span)
        if isinstance(step, CalOperateStep):
            src = of(step.source)
            if src is None:
                return None
            return _Est(src.count, src.span)
        if isinstance(step, IntervalStep):
            return _Est(1.0, step.hi - step.lo + 1)
        if isinstance(step, (PointStep, TodayStep)):
            return _Est(1.0, 1.0)
        if isinstance(step, PeriodicStep) and \
                self.context_window is not None:
            return _Est(float(step.pset.expansion_cost(self.context_window)),
                        1.0)
        return None

    def _chain_of(self, root_reg: str, defs: dict) -> "list[int] | None":
        """Indices of the transitive definition chain of ``root_reg``."""
        pending = [root_reg]
        found: set[int] = set()
        while pending:
            reg = pending.pop()
            i = defs.get(reg)
            if i is None:
                return None
            if i in found:
                continue
            found.add(i)
            pending.extend(_operands(self.steps[i]))
        return sorted(found)

    def _chain_safety(self, chain: "list[int]", defs: dict,
                      root_reg: str) -> "tuple[int, Granularity] | None":
        """(pad_ticks, result granularity) when the chain may pipeline."""
        gran: dict[str, Granularity] = {}
        pad = 0
        has_load = False
        has_select = False
        foreach_shapes: dict[str, str] = {}
        for i in chain:
            step = self.steps[i]
            if isinstance(step, GenerateStep):
                span = _span_ticks(step.calendar, self.unit)
                if span is None:
                    return None
                pad += span
                gran[step.target] = step.calendar
            elif isinstance(step, ForEachStep):
                op = get_listop(step.op)
                if step.op in _LOOKBACK_OPS:
                    return None
                foreach_shapes[step.target] = op.shape
                g = gran.get(step.left)
                if g is None:
                    return None
                gran[step.target] = g
            elif isinstance(step, FusedForEachStep):
                # foreach + per-group positional selection in one kernel:
                # safe under the same rules as the ForEach/Select pair.
                op = get_listop(step.op)
                if step.op in _LOOKBACK_OPS or op.shape == "filtering":
                    return None
                has_select = True
                g = gran.get(step.left)
                if g is None:
                    return None
                gran[step.target] = g
            elif isinstance(step, MergedForEachStep):
                if step.op1 in _LOOKBACK_OPS or step.op2 in _LOOKBACK_OPS:
                    return None
                foreach_shapes[step.target] = get_listop(step.op2).shape
                g = gran.get(step.left)
                if g is None:
                    return None
                gran[step.target] = g
            elif isinstance(step, SelectStep):
                has_select = True
                shape = foreach_shapes.get(step.source)
                if shape is None or shape == "filtering":
                    # Positional selection over anything but an in-chain
                    # grouping foreach is globally window-dependent.
                    return None
                g = gran.get(step.source)
                if g is None:
                    return None
                gran[step.target] = g
            elif isinstance(step, LabelSelectStep):
                src = defs.get(step.source)
                if src is None or src not in chain:
                    return None
                src_step = self.steps[src]
                if not isinstance(src_step, GenerateStep) or \
                        src_step.calendar not in _UNIQUE_LABEL_GRANS:
                    return None
                gran[step.target] = gran[step.source]
            elif isinstance(step, LoadStep):
                has_load = True
            elif isinstance(step, FlattenStep):
                g = gran.get(step.source)
                if g is None:
                    return None
                gran[step.target] = g
            elif isinstance(step, ShiftStep):
                g = gran.get(step.source)
                if g is None:
                    return None
                pad += abs(step.delta)
                gran[step.target] = g
            elif isinstance(step, SetOpStep):
                g = gran.get(step.left) or gran.get(step.right)
                if g is None:
                    return None
                gran[step.target] = g
            elif isinstance(step, IntervalStep):
                pad += step.hi - step.lo + 1
                gran[step.target] = self.unit
            elif isinstance(step, (PointStep, TodayStep)):
                pad += 1
                gran[step.target] = self.unit
            else:
                # HullStep, CalOperateStep, GenerateCallStep and already
                # rewritten kernels are globally window-dependent or
                # unmodelled: never pipeline across them.
                return None
        if has_load and has_select:
            # A load's granularity (hence group spans) is unknown; with a
            # positional selection in the chain that is unsound.
            return None
        root_gran = gran.get(root_reg)
        if root_gran is None:
            return None
        return pad, root_gran

    def push_down(self) -> None:
        if self.unit not in _PIPELINE_UNITS:
            return
        changed = True
        while changed:
            changed = False
            defs = self._defs()
            uses = self._consumers()
            est = self._estimates()
            for j, step in enumerate(self.steps):
                if not isinstance(step, (ForEachStep, FusedForEachStep)):
                    continue
                if step.op in _LOOKBACK_OPS or \
                        get_listop(step.op).shape == "filtering":
                    continue
                chain = self._chain_of(step.left, defs)
                if not chain:
                    continue
                # Only pipeline when the whole chain would become dead:
                # a register consumed elsewhere still runs eagerly and the
                # rewrite would duplicate, not save, work.
                chain_set = set(chain)
                chain_regs = {self.steps[i].target for i in chain}
                if self.result in chain_regs:
                    continue
                if any(k not in chain_set and k != j
                       for reg in chain_regs for k in uses.get(reg, [])):
                    continue
                safety = self._chain_safety(chain, defs, step.left)
                if safety is None:
                    continue
                pad, gran = safety
                refs = est.get(step.right)
                if refs is None or refs.count > _MAX_PIPELINE_REFS:
                    continue
                eager_cost = 0.0
                pipeline_cost = refs.count * len(chain) * \
                    _PIPELINE_STEP_OVERHEAD
                feasible = True
                for i in chain:
                    s = self.steps[i]
                    if not isinstance(s, GenerateStep):
                        continue
                    e = self._estimate_step(s, {}, self._window_ticks())
                    span = _span_ticks(s.calendar, self.unit)
                    if e is None or span is None:
                        feasible = False
                        break
                    eager_cost += e.count
                    pipeline_cost += refs.count * \
                        (refs.span + 2 * pad) / span
                if not feasible or pipeline_cost >= 0.5 * eager_cost:
                    continue
                subplan = Plan(
                    [replace(self.steps[i],
                             window=replace(self.steps[i].window,
                                            dynamic=True))
                     if isinstance(self.steps[i], GenerateStep)
                     else self.steps[i]
                     for i in chain],
                    step.left)
                predicate = (step.predicate
                             if isinstance(step, FusedForEachStep) else None)
                self.steps[j] = PipelineForEachStep(
                    step.target, step.op, step.strict, step.right,
                    subplan, pad, gran, predicate)
                self._note(
                    "pushdown",
                    f"{step.target}: left chain of {len(chain)} steps "
                    f"re-evaluated per reference (~{refs.count:.0f} refs, "
                    f"pad {pad}; est cost {pipeline_cost:.0f} vs eager "
                    f"{eager_cost:.0f})")
                changed = True
                break

    def _window_ticks(self) -> "int | None":
        if self.context_window is None:
            return None
        return self.context_window[1] - self.context_window[0] + 1

    # -- pass 5: dead-step elimination -------------------------------------------

    def dce(self) -> None:
        live = {self.result}
        keep: list[PlanStep] = []
        for step in reversed(self.steps):
            if step.target in live:
                keep.append(step)
                live.update(_operands(step))
            else:
                self._note("dce", f"dropped {step.target} "
                                  f"({type(step).__name__})")
        keep.reverse()
        self.steps = keep

    # -- driver ------------------------------------------------------------------

    def run(self) -> OptimizationResult:
        if not self.periodic_backend():
            self.cse()
            self.fuse_selects()
            self.merge_foreach()
            self.push_down()
            self.dce()
        est = self._estimates()
        costs = {reg: f"~{e.count:.0f} ivs" for reg, e in est.items()}
        return OptimizationResult(
            Plan(self.steps, self.result),
            rewrites=self.rewrites,
            eliminated=self.counts["cse"] + self.counts["dce"],
            costs=costs)


def optimize_plan(plan: Plan, *, context_window=None,
                  unit: Granularity = Granularity.DAYS,
                  reusable: bool = False, periodic=None, metrics=None,
                  events=None) -> OptimizationResult:
    """Optimise a compiled plan; the input plan is never mutated.

    ``context_window`` is the evaluation tick window the plan will run
    under (None leaves window-dependent rewrites conservative);
    ``reusable=True`` marks a plan the catalog re-executes under
    arbitrary windows (record eval-plans), restricting CSE to
    structurally identical windows.  ``periodic`` optionally carries the
    expression's compiled :class:`~repro.core.periodic.PeriodicSet`; when
    its element structure is verified and cheaper, the whole chain is
    replaced by one :class:`PeriodicStep` (the periodic backend).
    ``metrics``/``events`` receive optimizer counters and one telemetry
    event per rewrite.
    """
    opt = _Optimizer(plan, context_window, unit, reusable, periodic)
    result = opt.run()
    if metrics is not None:
        metrics.counter("optimizer.runs").inc()
        if result.rewrites:
            metrics.counter("optimizer.rewrites").inc(len(result.rewrites))
        for kind, n in opt.counts.items():
            if n:
                metrics.counter(f"optimizer.{kind}").inc(n)
        if result.eliminated:
            metrics.counter("plan.steps.eliminated").inc(result.eliminated)
    if events is not None:
        for rewrite in result.rewrites:
            kind, _, detail = rewrite.partition(": ")
            events.emit("optimizer.rewrite", kind=kind, detail=detail)
    return result
