"""Unit tests for expansion and factorization (E4/E5: Figures 2 and 3)."""

import pytest

from repro.core.granularity import Granularity
from repro.lang import (
    base_calendar_of,
    count_nodes,
    expand,
    factorize,
    granularity_of,
    parse_expression,
    parse_script,
    render_tree,
)
from repro.lang.ast import ForEach, Name, Select
from repro.lang.defs import (
    DerivedDef,
    ExplicitDef,
    basic_resolver,
    chain_resolvers,
)
from repro.core.calendar import Calendar


def make_resolver():
    derived = {
        "mondays": DerivedDef(
            parse_script("{return([1]/DAYS:during:WEEKS);}"),
            Granularity.DAYS),
        "januarys": DerivedDef(
            parse_script("{return([1]/MONTHS:during:YEARS);}"),
            Granularity.MONTHS),
        "third_weeks": DerivedDef(
            parse_script("{return([3]/WEEKS:overlaps:MONTHS);}"),
            Granularity.WEEKS),
        "emp_days": DerivedDef(  # multi-statement: not inlinable
            parse_script("{x = [n]/DAYS:during:MONTHS; return(x);}"),
            Granularity.DAYS),
        "holidays": ExplicitDef(Calendar.from_intervals([(31, 31)]),
                                Granularity.DAYS),
    }
    return chain_resolvers(lambda n: derived.get(n.lower()), basic_resolver)


RESOLVER = make_resolver()


class TestExpand:
    def test_single_expression_inlined(self):
        expr = expand(parse_expression("Mondays"), RESOLVER)
        assert str(expr) == "[1]/DAYS:during:WEEKS"

    def test_nested_inlining(self):
        expr = expand(parse_expression("Mondays:during:Januarys"), RESOLVER)
        assert "MONTHS" in str(expr) and "DAYS" in str(expr)

    def test_multi_statement_not_inlined(self):
        expr = expand(parse_expression("EMP_DAYS"), RESOLVER)
        assert expr == Name("EMP_DAYS")

    def test_temporaries_substituted(self):
        temporaries = {"temp1": parse_expression("[5]/DAYS:during:WEEKS")}
        expr = expand(parse_expression("temp1:during:MONTHS"), RESOLVER,
                      temporaries)
        assert "[5]/DAYS" in str(expr)

    def test_circular_definition_detected(self):
        loop = {"a": DerivedDef(parse_script("{return(b);}")),
                "b": DerivedDef(parse_script("{return(a);}"))}
        resolver = chain_resolvers(lambda n: loop.get(n.lower()),
                                   basic_resolver)
        with pytest.raises(RecursionError):
            expand(parse_expression("a"), resolver)

    def test_basic_names_untouched(self):
        assert expand(parse_expression("WEEKS"), RESOLVER) == Name("WEEKS")


class TestGranularityInference:
    def test_basic(self):
        assert granularity_of(parse_expression("WEEKS"), RESOLVER) == \
            Granularity.WEEKS

    def test_foreach_takes_left(self):
        expr = parse_expression("DAYS:during:MONTHS")
        assert granularity_of(expr, RESOLVER) == Granularity.DAYS

    def test_through_selection(self):
        expr = parse_expression("[1]/MONTHS:during:YEARS")
        assert granularity_of(expr, RESOLVER) == Granularity.MONTHS

    def test_derived(self):
        assert granularity_of(parse_expression("Mondays"), RESOLVER) == \
            Granularity.DAYS

    def test_label_select(self):
        assert granularity_of(parse_expression("1993/YEARS"), RESOLVER) \
            == Granularity.YEARS

    def test_unknown_name(self):
        assert granularity_of(parse_expression("mystery"), RESOLVER) is None


class TestBaseCalendar:
    def test_basic_name(self):
        assert base_calendar_of(parse_expression("YEARS"), RESOLVER) == \
            "YEARS"

    def test_through_selection_and_foreach(self):
        expr = parse_expression("[1]/MONTHS:during:1993/YEARS")
        assert base_calendar_of(expr, RESOLVER) == "MONTHS"

    def test_label_select(self):
        assert base_calendar_of(parse_expression("1993/YEARS"),
                                RESOLVER) == "YEARS"

    def test_non_basic_is_none(self):
        assert base_calendar_of(parse_expression("Mondays"),
                                RESOLVER) is None


class TestPaperExample1:
    """Figure 2: 'Mondays during January 1993'."""

    EXPR = "Mondays:during:Januarys:during:1993/Years"

    def test_factorized_form(self):
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        assert str(result.expression) == \
            "[1]/DAYS:during:WEEKS:during:[1]/MONTHS:during:1993/Years"

    def test_one_rewrite_applied(self):
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        assert result.applied == 1

    def test_factorized_tree_is_smaller(self):
        expanded = expand(parse_expression(self.EXPR), RESOLVER)
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        assert count_nodes(result.expression) < count_nodes(expanded)

    def test_render_tree_shows_structure(self):
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        tree = render_tree(result.expression)
        assert "foreach during" in tree
        assert "select-label 1993" in tree


class TestPaperExample2:
    """Figure 3: 'Third week in January 1993' — factorizes twice."""

    EXPR = "Third_Weeks:during:Januarys:during:1993/Years"

    def test_factorized_form(self):
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        assert str(result.expression) == \
            "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/Years"

    def test_two_rewrites_applied(self):
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        assert result.applied == 2

    def test_rewrites_are_recorded_textually(self):
        result = factorize(parse_expression(self.EXPR), RESOLVER)
        assert all("=>" in r for r in result.rewrites)


class TestRuleGuards:
    def test_no_rewrite_when_granularity_differs(self):
        # (X during WEEKS) during <months-based Z>: WEEKS != MONTHS.
        expr = parse_expression(
            "([1]/DAYS:during:WEEKS):during:[1]/MONTHS:during:1993/YEARS")
        result = factorize(expr, RESOLVER, expand_names=False)
        assert result.applied == 0

    def test_no_rewrite_when_y_is_restricted(self):
        # Y = [1]/MONTHS (Januaries), not the full MONTHS calendar:
        # replacing it by an arbitrary months-subset would be unsound.
        expr = parse_expression(
            "(DAYS:during:[1]/MONTHS):during:[2]/MONTHS:during:1993/YEARS")
        result = factorize(expr, RESOLVER, expand_names=False)
        assert result.applied == 0

    def test_no_rewrite_when_z_base_differs(self):
        expr = parse_expression(
            "(DAYS:during:MONTHS):during:[1]/WEEKS:during:1993/YEARS")
        result = factorize(expr, RESOLVER, expand_names=False)
        assert result.applied == 0

    def test_no_rewrite_when_z_is_not_a_singleton(self):
        # (Tuesdays):during:WEEKS regroups by *every* week; dropping the
        # outer pass would flatten the order-2 result to order-1.  Only
        # statically-singleton anchors (1993/YEARS, ...) may rewrite.
        expr = parse_expression("([2]/DAYS:during:WEEKS):during:WEEKS")
        result = factorize(expr, RESOLVER, expand_names=False)
        assert result.applied == 0

    def test_leq_leq_exception_uses_op2(self):
        expr = parse_expression(
            "(DAYS:<=:MONTHS):<=:[1]/MONTHS:during:1993/YEARS")
        result = factorize(expr, RESOLVER, expand_names=False)
        assert result.applied == 1
        core = result.expression
        assert isinstance(core, ForEach) and core.op == "<="

    def test_fixpoint_terminates(self):
        expr = parse_expression("A:during:B")
        result = factorize(expr, RESOLVER)
        assert result.applied == 0

    def test_strictness_preserved_from_inner(self):
        expr = parse_expression(
            "(WEEKS.overlaps.MONTHS):during:[1]/MONTHS:during:1993/YEARS")
        result = factorize(expr, RESOLVER, expand_names=False)
        assert result.applied == 1
        assert result.expression.strict is False


class TestLeqLeqSemanticEquivalence:
    """Audit of the ≤/≤ exception: the rewritten expression must evaluate
    identically to the original under regrouped calendars, including when
    the inner and outer foreach disagree on strict/relaxed mode (the
    exception's one observable effect is propagating the *outer* flag)."""

    @pytest.fixture()
    def context(self):
        from repro.catalog import CalendarRegistry, \
            install_standard_calendars
        from repro.core.basis import CalendarSystem
        registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"))
        install_standard_calendars(registry)
        return registry.context(("Jan 1 1992", "Dec 31 1994"))

    def _both_ways(self, context, text, expect_applied):
        from repro.lang.interpreter import Interpreter
        original = parse_expression(text)
        rewritten = factorize(original, context.resolver)
        if expect_applied:
            assert rewritten.applied >= 1, text
        else:
            assert rewritten.applied == 0, text
        direct = Interpreter(context).evaluate(original)
        factored = Interpreter(context).evaluate(rewritten.expression)
        return direct, factored

    @pytest.mark.parametrize("text,applies", [
        # strict/strict: the documented X:Op2:Z exception.
        ("(DAYS:<=:MONTHS):<=:[1]/MONTHS:during:1993/YEARS", True),
        # regrouped left arm carrying a selection wrapper.
        ("([2]/DAYS:<=:MONTHS):<=:[1]/MONTHS:during:1993/YEARS", True),
        # Any relaxed flag makes the ≤/≤ rewrite unsound (relaxed ``<=``
        # does not clip, so regrouping changes multiplicity/window):
        # the factorizer must refuse it.
        ("(DAYS.<=.MONTHS):<=:[1]/MONTHS:during:1993/YEARS", False),
        ("(DAYS:<=:MONTHS).<=.[1]/MONTHS:during:1993/YEARS", False),
        ("(DAYS.<=.MONTHS).<=.[1]/MONTHS:during:1993/YEARS", False),
    ])
    def test_rewrite_preserves_evaluation(self, context, text, applies):
        direct, factored = self._both_ways(context, text, applies)
        assert direct.to_pairs() == factored.to_pairs()
        assert direct == factored
