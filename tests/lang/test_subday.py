"""Sub-day (HOURS/MINUTES) evaluation through the full pipeline."""

import pytest

from repro.core import CalendarSystem, Granularity
from repro.lang import (
    EvalContext,
    Interpreter,
    PlanVM,
    compile_expression,
    factorize,
    infer_unit,
    parse_expression,
)
from repro.lang.defs import basic_resolver


@pytest.fixture(scope="module")
def sys93():
    return CalendarSystem.starting("Jan 1 1993")


def hour_window(sys93, start_text, end_text):
    lo = (sys93.day_of(start_text) - 1) * 24 + 1
    hi = sys93.day_of(end_text) * 24
    return lo, hi


def make_ctx(sys93, window):
    return EvalContext(system=sys93, resolver=basic_resolver,
                       window=window, unit=Granularity.HOURS)


class TestHourAlgebra:
    def test_hours_of_each_day(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 5 1993")
        ctx = make_ctx(sys93, window)
        result = Interpreter(ctx).evaluate(
            parse_expression("HOURS:during:DAYS"))
        assert result.order == 2
        assert all(len(sub) == 24 for sub in result.elements)

    def test_shift_selection(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 4 1993")
        ctx = make_ctx(sys93, window)
        result = Interpreter(ctx).evaluate(
            parse_expression("flatten([7-14]/HOURS:during:DAYS)"))
        day = sys93.day_of("Jan 4 1993")
        base = (day - 1) * 24
        assert result.to_pairs() == tuple(
            (base + h, base + h) for h in range(7, 15))

    def test_first_hour_of_monday(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 10 1993")
        ctx = make_ctx(sys93, window)
        result = Interpreter(ctx).evaluate(parse_expression(
            "[7]/HOURS:during:[1]/DAYS:during:WEEKS"))
        day = sys93.day_of("Jan 4 1993")  # Monday
        assert result.to_pairs() == (((day - 1) * 24 + 7,) * 2,)

    def test_caloperate_shift_blocks(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 6 1993")
        ctx = make_ctx(sys93, window)
        result = Interpreter(ctx).evaluate(parse_expression(
            "caloperate(flatten([7-14]/HOURS:during:DAYS), *; 8)"))
        assert len(result) == 3
        assert all(len(iv) == 8 for iv in result.elements)

    def test_weeks_expressed_in_hours(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 24 1993")
        ctx = make_ctx(sys93, window)
        result = Interpreter(ctx).evaluate(parse_expression("WEEKS"))
        for iv in result.elements:
            assert len(iv) == 7 * 24

    def test_plan_agrees_with_interpreter(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 17 1993")
        text = "flatten([7-14]/HOURS:during:flatten(" \
               "[1-5]/DAYS:during:WEEKS))"
        expr = factorize(parse_expression(text), basic_resolver).expression
        plan = compile_expression(expr, sys93, basic_resolver,
                                  unit=Granularity.HOURS,
                                  context_window=window)
        ctx_plan = make_ctx(sys93, window)
        ctx_interp = make_ctx(sys93, window)
        assert PlanVM(ctx_plan).run(plan).to_pairs() == \
            Interpreter(ctx_interp).evaluate(expr).to_pairs()


class TestMinutes:
    def test_minutes_of_an_hour(self, sys93):
        # Minute ticks of Jan 4 1993: (day-1)*1440 + 1 ...
        day = sys93.day_of("Jan 4 1993")
        lo = (day - 1) * 1440 + 1
        ctx = EvalContext(system=sys93, resolver=basic_resolver,
                          window=(lo, lo + 1439),
                          unit=Granularity.MINUTES)
        result = Interpreter(ctx).evaluate(
            parse_expression("[1]/HOURS:during:DAYS"))
        (first_hour,) = result.elements
        assert len(first_hour) == 60
        assert first_hour.lo == lo


class TestUnitInference:
    def test_hours_inferred(self, sys93):
        assert infer_unit(parse_expression("HOURS:during:DAYS"),
                          basic_resolver) == Granularity.HOURS

    def test_minutes_inferred(self, sys93):
        assert infer_unit(
            parse_expression("MINUTES:during:HOURS:during:DAYS"),
            basic_resolver) == Granularity.MINUTES


class TestSubdayWindowPadding:
    """Satellite regression: the planner's exact sub-day generation pad.

    The evaluation context's blanket pad is one month of unit ticks (744
    for HOURS) regardless of the expression; the planner now computes an
    exact pad from the coarsest granularity referenced, so sub-day plans
    stop over-generating by an order of magnitude while staying correct.
    """

    def test_generate_steps_carry_exact_pad(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 10 1993")
        expr = factorize(parse_expression("HOURS:during:DAYS"),
                         basic_resolver).expression
        plan = compile_expression(expr, sys93, basic_resolver,
                                  unit=Granularity.HOURS,
                                  context_window=window)
        pads = [step.pad for step in plan.generate_steps()]
        assert pads and all(pad == 24 for pad in pads)

    def test_weeks_coarse_pad_is_a_week_of_hours(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 31 1993")
        expr = factorize(parse_expression("HOURS:during:WEEKS"),
                         basic_resolver).expression
        plan = compile_expression(expr, sys93, basic_resolver,
                                  unit=Granularity.HOURS,
                                  context_window=window)
        pads = [step.pad for step in plan.generate_steps()]
        assert pads and all(pad == 7 * 24 for pad in pads)

    @pytest.mark.parametrize("text", [
        "HOURS:during:DAYS",
        "[1]/HOURS:during:DAYS",
        "[n]/HOURS:during:DAYS",
        "HOURS:during:WEEKS",
        "[7-14]/HOURS:during:DAYS",
    ])
    def test_exact_pad_preserves_results(self, sys93, text):
        window = hour_window(sys93, "Jan 4 1993", "Jan 17 1993")
        expr = factorize(parse_expression(text), basic_resolver).expression
        plan = compile_expression(expr, sys93, basic_resolver,
                                  unit=Granularity.HOURS,
                                  context_window=window)
        planned = PlanVM(make_ctx(sys93, window)).run(plan)
        interpreted = Interpreter(make_ctx(sys93, window)).evaluate(expr)
        assert planned == interpreted
        assert planned.flatten().to_pairs() == \
            interpreted.flatten().to_pairs()

    def test_plan_generates_far_fewer_ticks_than_blanket(self, sys93):
        window = hour_window(sys93, "Jan 4 1993", "Jan 10 1993")
        expr = factorize(parse_expression("HOURS:during:DAYS"),
                         basic_resolver).expression
        plan = compile_expression(expr, sys93, basic_resolver,
                                  unit=Granularity.HOURS,
                                  context_window=window)
        padded_ctx = make_ctx(sys93, window)
        PlanVM(padded_ctx).run(plan)
        exact = padded_ctx.stats["intervals_generated"]
        blanket_ctx = make_ctx(sys93, window)
        Interpreter(blanket_ctx).evaluate(expr)
        blanket = blanket_ctx.stats["intervals_generated"]
        assert exact < blanket / 3
