"""Metrics instruments: counters, gauges, histograms, the registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_MAX_SERIES,
    OTHER_LABEL_VALUE,
    SERIES_DROPPED_METRIC,
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    escape_label_value,
    series_key,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_add_and_reset(self):
        g = Gauge("depth")
        g.set(7)
        assert g.value == 7
        g.add(-3)
        assert g.value == 4
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_default_bounds_are_sorted_and_span_1us_to_10s(self):
        assert list(DEFAULT_LATENCY_BOUNDS) == \
            sorted(DEFAULT_LATENCY_BOUNDS)
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(10.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_count_sum_min_max(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(0.006)
        assert s["min"] == pytest.approx(0.001)
        assert s["max"] == pytest.approx(0.003)
        assert s["mean"] == pytest.approx(0.002)

    def test_quantile_is_conservative_upper_bound(self):
        h = Histogram("h")
        for _ in range(100):
            h.observe(0.0009)  # falls in the (0.0005, 0.001] bucket
        # The estimate is the bucket's upper bound, clamped to max.
        assert h.quantile(0.5) == pytest.approx(0.0009)
        h.observe(5.0)
        assert h.quantile(0.99) <= 5.0

    def test_empty_quantile_is_none(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        assert h.summary()["p50"] is None

    def test_quantile_range_checked(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_reset(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.summary()["max"] is None

    def test_single_observation_quantiles_are_exact(self):
        # Pinned: one sample must come back exactly, never interpolated
        # against a bucket bound (or the overflow bucket's upper edge).
        h = Histogram("h")
        h.observe(0.0123)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0123)
            assert h.percentile(q) == pytest.approx(0.0123)

    def test_single_overflow_observation_is_exact(self):
        # A sole sample above the last bound lands in the +Inf bucket;
        # both estimators must still return the sample, not infinity.
        h = Histogram("h")
        h.observe(99.5)
        assert h.quantile(0.5) == pytest.approx(99.5)
        assert h.percentile(0.99) == pytest.approx(99.5)

    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(0.5) is None

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("h")
        for v in (0.011, 0.012, 0.013):
            h.observe(v)
        p99 = h.percentile(0.99)
        assert 0.011 <= p99 <= 0.013

    def test_exemplar_stored_per_bucket_and_reset(self):
        h = Histogram("h")
        h.observe(0.0009)                      # no trace id: no exemplar
        assert h.exemplars() == {}
        h.observe(0.0009, "00" * 16)
        h.observe(50.0, "11" * 16)             # overflow bucket
        exemplars = h.exemplars()
        assert len(exemplars) == 2
        inf_index = len(h.bounds)
        value, trace_id, ts = exemplars[inf_index]
        assert value == pytest.approx(50.0)
        assert trace_id == "11" * 16
        assert ts > 0
        h.reset()
        assert h.exemplars() == {}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_snapshot_maps_values_and_summaries(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert reg.get("a") is not None
        assert reg.get("missing") is None

    def test_reset_all(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.snapshot()["c"] == 0
        assert reg.snapshot()["h"]["count"] == 0


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_series_key_shape(self):
        key = series_key("rules.fired", ("tenant", "shard"), ("acme", "3"))
        assert key == 'rules.fired{tenant="acme",shard="3"}'


class TestFamilies:
    def test_labels_returns_same_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("rules.fired", labels=("tenant", "shard"))
        assert isinstance(fam, CounterFamily)
        child = fam.labels("acme", "3")
        assert fam.labels("acme", "3") is child
        assert fam.labels(tenant="acme", shard="3") is child
        child.inc(2)
        assert child.value == 2

    def test_registry_returns_same_family(self):
        reg = MetricsRegistry()
        fam = reg.histogram("h", labels=("script",))
        assert reg.histogram("h", labels=("script",)) is fam
        assert isinstance(fam, HistogramFamily)

    def test_plain_vs_labelled_name_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.counter("a", labels=("tenant",))
        reg.counter("b", labels=("tenant",))
        with pytest.raises(ValueError):
            reg.counter("b")

    def test_label_set_is_frozen(self):
        reg = MetricsRegistry()
        reg.counter("a", labels=("tenant",))
        with pytest.raises(ValueError):
            reg.counter("a", labels=("tenant", "shard"))

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a", labels=("tenant",))
        with pytest.raises(ValueError):
            reg.gauge("a", labels=("tenant",))

    def test_wrong_arity_and_unknown_keyword(self):
        reg = MetricsRegistry()
        fam = reg.counter("a", labels=("tenant", "shard"))
        with pytest.raises(ValueError):
            fam.labels("only-one")
        with pytest.raises(ValueError):
            fam.labels(tenant="t", bogus="x")
        with pytest.raises(ValueError):
            fam.labels("positional", tenant="named")

    def test_values_coerced_to_str(self):
        reg = MetricsRegistry()
        fam = reg.gauge("g", labels=("shard",))
        assert fam.labels(7) is fam.labels("7")

    def test_governor_collapses_into_other(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", labels=("tenant",), max_series=2)
        fam.labels("a").inc()
        fam.labels("b").inc()
        other = fam.labels("c")
        assert other is fam.labels("d")
        other.inc(2)
        assert fam.series_count == 3  # a, b + reserved other
        series = fam.series()
        assert series[(OTHER_LABEL_VALUE,)].value == 2
        dropped = reg.get(SERIES_DROPPED_METRIC)
        assert dropped.value == 2  # one per collapsed resolution

    def test_governor_reuses_explicit_other_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", labels=("tenant",), max_series=2)
        explicit = fam.labels(OTHER_LABEL_VALUE)
        fam.labels("a")
        overflow = fam.labels("z")
        assert overflow is explicit
        assert fam.series_count == 2

    def test_default_cap_applies(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", labels=("tenant",))
        assert fam.max_series == DEFAULT_MAX_SERIES

    def test_fuzz_10k_tenants_is_bounded(self):
        reg = MetricsRegistry()
        fam = reg.counter("rules.fired", labels=("tenant",),
                          max_series=32)
        for i in range(10_000):
            fam.labels(f"tenant-{i}").inc()
        assert fam.series_count == 33  # 32 admitted + reserved other
        dropped = reg.get(SERIES_DROPPED_METRIC)
        assert dropped.value == 10_000 - 32
        # Every fire landed somewhere: the total is conserved.
        assert sum(c.value for c in fam.series().values()) == 10_000

    def test_snapshot_uses_flat_series_keys(self):
        reg = MetricsRegistry()
        reg.counter("c", labels=("tenant",)).labels("acme").inc(3)
        reg.histogram("h", labels=("script",)).labels("DAYS").observe(0.01)
        snap = reg.snapshot()
        assert snap['c{tenant="acme"}'] == 3
        assert snap['h{script="DAYS"}']["count"] == 1

    def test_family_reset_keeps_series(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", labels=("tenant",))
        fam.labels("acme").inc(5)
        reg.reset()
        assert fam.labels("acme").value == 0
        assert fam.series_count == 1

    def test_series_dropped_absent_until_first_family(self):
        reg = MetricsRegistry()
        reg.counter("plain")
        assert reg.get(SERIES_DROPPED_METRIC) is None
        reg.counter("fam", labels=("tenant",))
        assert reg.get(SERIES_DROPPED_METRIC) is not None

    def test_concurrent_label_resolution_under_cap(self):
        import threading

        reg = MetricsRegistry()
        fam = reg.counter("c", labels=("tenant",), max_series=8)
        errors = []

        def hammer(seed):
            try:
                for i in range(500):
                    fam.labels(f"tenant-{(seed + i) % 20}").inc()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert fam.series_count <= 9  # cap + reserved other
        assert sum(c.value for c in fam.series().values()) == 8 * 500
