"""Property-based tests for the interval algebra."""

from hypothesis import given, strategies as st

from repro.core import Interval, axis_points

axis_point = st.integers(min_value=-500, max_value=500).filter(
    lambda t: t != 0)


@st.composite
def intervals(draw):
    a = draw(axis_point)
    b = draw(axis_point)
    lo, hi = min(a, b), max(a, b)
    return Interval(lo, hi)


def points(iv: Interval) -> set:
    return set(axis_points(iv.lo, iv.hi))


class TestRelationSemantics:
    """Each relation must agree with its point-set definition."""

    @given(intervals(), intervals())
    def test_overlaps_iff_common_point(self, a, b):
        assert a.overlaps(b) == bool(points(a) & points(b))

    @given(intervals(), intervals())
    def test_during_iff_subset(self, a, b):
        assert a.during(b) == (points(a) <= points(b))

    @given(intervals(), intervals())
    def test_overlaps_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    def test_during_antisymmetric_up_to_equality(self, a, b):
        if a.during(b) and b.during(a):
            assert a == b

    @given(intervals(), intervals())
    def test_before_and_overlap_exclusive_unless_touching(self, a, b):
        # a < b (u1 <= l2) and overlaps(a,b) can both hold only when
        # they share exactly the touching endpoint.
        if a.before(b) and a.overlaps(b):
            assert a.hi == b.lo

    @given(intervals(), intervals())
    def test_meets_implies_before(self, a, b):
        if a.meets(b):
            assert a.before(b)

    @given(intervals(), intervals())
    def test_strictly_before_trichotomy(self, a, b):
        assert (a.strictly_before(b) or b.strictly_before(a)
                or a.overlaps(b))


class TestSetOperations:
    @given(intervals(), intervals())
    def test_intersect_is_point_intersection(self, a, b):
        common = a.intersect(b)
        expected = points(a) & points(b)
        if common is None:
            assert not expected
        else:
            assert points(common) == expected

    @given(intervals(), intervals())
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_subtract_is_point_difference(self, a, b):
        got = set()
        for piece in a.subtract(b):
            got |= points(piece)
        assert got == points(a) - points(b)

    @given(intervals(), intervals())
    def test_subtract_pieces_disjoint(self, a, b):
        pieces = a.subtract(b)
        seen = set()
        for piece in pieces:
            assert not (points(piece) & seen)
            seen |= points(piece)

    @given(intervals(), intervals())
    def test_union_hull_contains_both(self, a, b):
        hull = a.union_hull(b)
        assert points(a) <= points(hull)
        assert points(b) <= points(hull)

    @given(intervals(), st.integers(min_value=-100, max_value=100))
    def test_shift_preserves_length(self, a, delta):
        assert len(a.shift(delta)) == len(a)

    @given(intervals(), st.integers(min_value=-100, max_value=100))
    def test_shift_roundtrip(self, a, delta):
        assert a.shift(delta).shift(-delta) == a
