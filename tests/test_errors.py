"""The unified exception hierarchy and its context payloads.

Every error the library raises derives from
:class:`repro.errors.ReproError`; the audit test below walks every
``raise`` site in the source tree and asserts the raised class is in the
hierarchy (or on a short, documented allowlist of control-flow signals
and programmer-error guards).
"""

import ast as pyast
import pathlib

import pytest

from repro.core.errors import CalendarError, ConfigurationError
from repro.db.errors import DatabaseError, QueryError
from repro.errors import ReproError
from repro.lang.errors import (
    CircularDefinitionError,
    EvaluationError,
    LanguageError,
    ParseError,
)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


class TestHierarchy:
    def test_domain_bases_derive_from_repro_error(self):
        assert issubclass(CalendarError, ReproError)
        assert issubclass(LanguageError, ReproError)
        assert issubclass(DatabaseError, ReproError)

    def test_one_except_catches_everything(self):
        for exc in (CalendarError("x"), ParseError("x"),
                    QueryError("x"), ConfigurationError("x")):
            try:
                raise exc
            except ReproError:
                pass

    def test_circular_definition_still_a_recursion_error(self):
        assert issubclass(CircularDefinitionError, RecursionError)
        assert issubclass(CircularDefinitionError, ReproError)

    def test_configuration_error_still_a_value_error(self):
        assert issubclass(ConfigurationError, ValueError)


class TestContext:
    def test_context_defaults_empty(self):
        assert ReproError("x").context == {}

    def test_add_context_returns_self_and_merges(self):
        exc = ReproError("x")
        assert exc.add_context(a=1) is exc
        exc.add_context(b=2)
        assert exc.context == {"a": 1, "b": 2}

    def test_inner_context_wins(self):
        exc = ReproError("x", context={"script": "inner"})
        exc.add_context(script="outer")
        assert exc.context["script"] == "inner"

    def test_language_error_records_location(self):
        exc = LanguageError("bad", line=3, column=7)
        assert exc.context == {"line": 3, "column": 7}

    def test_parse_failure_carries_script_text(self):
        from repro.catalog import CalendarRegistry
        registry = CalendarRegistry()
        with pytest.raises(ReproError) as info:
            registry.eval_expression(":::not an expression:::")
        assert info.value.context.get("script") == ":::not an expression:::"

    def test_evaluate_failure_carries_calendar_name(self):
        from repro.catalog import CalendarRegistry
        registry = CalendarRegistry()
        registry.define("broken", script="return (NO_SUCH_CAL)")
        with pytest.raises(ReproError) as info:
            registry.evaluate("broken")
        assert info.value.context.get("calendar") == "broken"

    def test_query_failure_carries_query_text(self):
        from repro.db import Database
        db = Database()
        with pytest.raises(ReproError) as info:
            db.execute("retrieve (t.x) from t in no_such_table")
        assert "query" in info.value.context

    def test_evaluation_error_is_repro_error_with_context_kwarg(self):
        exc = EvaluationError("boom")
        exc.add_context(script="x")
        assert isinstance(exc, ReproError)


#: Exception names a ``raise`` site may use without being part of the
#: hierarchy: control-flow signals, iteration protocol, process exit,
#: and bare programmer-error guards in the self-contained obs layer.
_ALLOWED_RAISES = {
    # control flow / protocol
    "StopIteration", "EOFError", "SystemExit", "NotImplementedError",
    "_ReturnSignal", "_Fallback",
    # programmer-error guards (misuse of an API, not a domain failure);
    # the obs layer deliberately has no dependency on repro.errors.
    "ValueError", "TypeError",
}


def _raised_names(tree: pyast.AST):
    for node in pyast.walk(tree):
        if not isinstance(node, pyast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, pyast.Call):
            exc = exc.func
        if isinstance(exc, pyast.Name):
            yield node, exc.id
        elif isinstance(exc, pyast.Attribute):
            yield node, exc.attr
        # re-raise of a caught variable (``raise exc``) is fine: the
        # audit checks origination sites, and ``raise`` alone / of a
        # local name re-raises something already vetted.


def _hierarchy_names():
    """Every exception class name importable from the repro error modules."""
    import repro.core.errors
    import repro.db.errors
    import repro.errors
    import repro.lang.errors

    names = set()
    for module in (repro.errors, repro.core.errors, repro.lang.errors,
                   repro.db.errors):
        for attr in dir(module):
            obj = getattr(module, attr)
            if isinstance(obj, type) and issubclass(obj, ReproError):
                names.add(attr)
    return names


def _locally_defined_subclasses(trees, hierarchy):
    """Names of classes (anywhere in src) deriving from the hierarchy.

    Covers exception classes defined outside the central error modules
    (e.g. interop's ``UnsupportedExpression``) via a transitive
    fixpoint over base-class names.
    """
    bases_of = {}
    for tree in trees.values():
        for node in pyast.walk(tree):
            if isinstance(node, pyast.ClassDef):
                names = [b.id if isinstance(b, pyast.Name) else b.attr
                         for b in node.bases
                         if isinstance(b, (pyast.Name, pyast.Attribute))]
                bases_of[node.name] = names
    known = set(hierarchy)
    changed = True
    while changed:
        changed = False
        for name, bases in bases_of.items():
            if name not in known and any(b in known for b in bases):
                known.add(name)
                changed = True
    return known


def test_every_raise_site_uses_the_hierarchy():
    """No module under src/repro originates an out-of-hierarchy error."""
    trees = {path: pyast.parse(path.read_text(), filename=str(path))
             for path in sorted(SRC.rglob("*.py"))}
    hierarchy = _locally_defined_subclasses(trees, _hierarchy_names())
    offenders = []
    for path, tree in trees.items():
        for node, name in _raised_names(tree):
            if name in hierarchy or name in _ALLOWED_RAISES:
                continue
            if name.endswith("Error") and name[0].islower():
                continue  # a local variable holding a caught exception
            if name[0].islower():
                continue  # re-raise of a local variable
            offenders.append(f"{path.relative_to(SRC.parent)}:"
                             f"{node.lineno}: raise {name}")
    assert not offenders, (
        "raise sites outside the ReproError hierarchy:\n  "
        + "\n  ".join(offenders))


def test_hierarchy_covers_known_leaf_classes():
    names = _hierarchy_names()
    for expected in ("CalendarError", "LanguageError", "DatabaseError",
                     "ParseError", "PlanError", "QueryError",
                     "ConfigurationError", "CircularDefinitionError"):
        assert expected in names
