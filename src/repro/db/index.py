"""Secondary indexes: ordered column indexes and interval indexes.

The paper lists "creation of indexes to optimize the performance of these
operators" among the extensible-DBMS features it uses.  Two index kinds
are provided:

* :class:`OrderedIndex` — a sorted (value, tid) list over one column,
  answering equality and range probes in O(log n); maintained
  incrementally by :class:`~repro.db.storage.Relation`.
* :class:`IntervalIndex` — a static sorted-interval index over an order-1
  calendar answering point-membership and next-point queries; used by the
  ``within`` operator and by DBCRON.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

from repro.core.calendar import Calendar
from repro.core.interval import Interval
from repro.db.errors import SchemaError

__all__ = ["OrderedIndex", "IntervalIndex"]


class OrderedIndex:
    """A sorted index over one column of a relation."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._keys: list = []
        self._tids: list[int] = []

    def insert(self, row: dict) -> None:
        """Index one tuple (None values are not indexed)."""
        value = row.get(self.column)
        if value is None:
            return
        pos = bisect.bisect_right(self._keys, value)
        self._keys.insert(pos, value)
        self._tids.insert(pos, row["_tid"])

    def remove(self, row: dict) -> None:
        """Drop one tuple's entry (matched by value and tid)."""
        value = row.get(self.column)
        if value is None:
            return
        pos = bisect.bisect_left(self._keys, value)
        while pos < len(self._keys) and self._keys[pos] == value:
            if self._tids[pos] == row["_tid"]:
                del self._keys[pos]
                del self._tids[pos]
                return
            pos += 1

    def rebuild(self, rows: Iterable[dict]) -> None:
        """Rebuild from scratch over the given tuples (sort once).

        This is the bulk-load path ``create_index`` takes over an
        existing relation: one O(n log n) sort instead of n O(n)
        ``list.insert`` shuffles.
        """
        pairs = sorted((row[self.column], row["_tid"]) for row in rows
                       if row.get(self.column) is not None)
        self._keys = [p[0] for p in pairs]
        self._tids = [p[1] for p in pairs]

    def insert_batch(self, rows: "Sequence[dict]") -> None:
        """Index a batch of tuples: sort the batch once, then one linear
        merge with the existing keys.

        ``Relation.insert_many`` routes through this instead of per-row
        :meth:`insert`, turning O(batch * n) memmove maintenance into
        O(batch log batch + n).  Small batches still use incremental
        inserts — the merge only pays off once the batch rivals the
        index.
        """
        pairs = sorted((row[self.column], row["_tid"]) for row in rows
                       if row.get(self.column) is not None)
        if not pairs:
            return
        if len(pairs) * 8 < len(self._keys):
            for key, tid in pairs:
                pos = bisect.bisect_right(self._keys, key)
                self._keys.insert(pos, key)
                self._tids.insert(pos, tid)
            return
        old_keys, old_tids = self._keys, self._tids
        keys: list = []
        tids: list[int] = []
        i = j = 0
        n, m = len(old_keys), len(pairs)
        while i < n and j < m:
            if old_keys[i] <= pairs[j][0]:
                keys.append(old_keys[i])
                tids.append(old_tids[i])
                i += 1
            else:
                keys.append(pairs[j][0])
                tids.append(pairs[j][1])
                j += 1
        keys.extend(old_keys[i:])
        tids.extend(old_tids[i:])
        for j in range(j, m):
            keys.append(pairs[j][0])
            tids.append(pairs[j][1])
        self._keys = keys
        self._tids = tids

    def lookup_eq(self, value) -> list[int]:
        """tids of tuples whose column equals ``value``."""
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        return self._tids[lo:hi]

    def lookup_range(self, lo=None, hi=None,
                     lo_inclusive: bool = True,
                     hi_inclusive: bool = True) -> list[int]:
        """tids of tuples within the (half-)open value range."""
        start = 0
        end = len(self._keys)
        if lo is not None:
            start = (bisect.bisect_left(self._keys, lo) if lo_inclusive
                     else bisect.bisect_right(self._keys, lo))
        if hi is not None:
            end = (bisect.bisect_right(self._keys, hi) if hi_inclusive
                   else bisect.bisect_left(self._keys, hi))
        return self._tids[start:end]

    def items(self) -> tuple[list, list[int]]:
        """The sorted ``(keys, tids)`` lanes (read-only views for the
        executor's sort-merge join — do not mutate)."""
        return self._keys, self._tids

    def __len__(self) -> int:
        return len(self._keys)


class IntervalIndex:
    """A static point-membership index over an order-1 calendar.

    Intervals are flattened, sorted and (overlap-)merged at construction;
    probes are O(log n).
    """

    def __init__(self, calendar: Calendar) -> None:
        intervals = sorted(calendar.iter_intervals(),
                           key=lambda iv: (iv.lo, iv.hi))
        merged: list[Interval] = []
        for iv in intervals:
            if merged and merged[-1].overlaps(iv):
                merged[-1] = merged[-1].union_hull(iv)
            else:
                merged.append(iv)
        self._los = [iv.lo for iv in merged]
        self._his = [iv.hi for iv in merged]

    def __len__(self) -> int:
        return len(self._los)

    def contains(self, t: int) -> bool:
        """True when axis point ``t`` is covered by the calendar."""
        if t == 0:
            return False
        pos = bisect.bisect_right(self._los, t) - 1
        return pos >= 0 and self._his[pos] >= t

    def contains_batch(self, values: Sequence[int]) -> list[bool]:
        """Membership of an *ascending* batch of points — one merge pass.

        Equivalent to ``[self.contains(v) for v in values]``; the
        executor's batched calendar probe sorts a valid-time column
        once and sweeps it through the merged interval lanes instead
        of bisecting per tuple.
        """
        from repro.core.columnar import batch_membership
        return batch_membership(self._los, self._his, values)

    def lanes(self) -> tuple[list[int], list[int]]:
        """The merged, sorted ``(los, his)`` endpoint lanes."""
        return self._los, self._his

    def next_at_or_after(self, t: int) -> int | None:
        """Smallest covered point >= ``t``, or None."""
        if t == 0:
            t = 1
        pos = bisect.bisect_right(self._los, t) - 1
        if pos >= 0 and self._his[pos] >= t:
            return t
        pos += 1
        if pos < len(self._los):
            return self._los[pos]
        return None

    def iter_points(self) -> Iterator[int]:
        """All covered axis points in ascending order."""
        for lo, hi in zip(self._los, self._his):
            t = lo
            while t <= hi:
                if t != 0:
                    yield t
                t += 1
