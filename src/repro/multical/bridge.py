"""Bridging MultiCal types and this library's calendars (section 5).

The paper argues the two proposals are *orthogonal*: MultiCal does
multi-calendar input/output of temporal constants but "doesn't support an
object type such as a nested interval list, and thus operations like
selection and foreach are not possible"; this library has the algebra but
one display convention.  The bridge composes them:

* MultiCal events/intervals convert to axis ticks /
  :class:`~repro.core.interval.Interval` values (the chronon axes are
  shared), so a MultiCal-parsed constant can feed a calendar expression;
* an order-1 calendar renders through any registered MultiCal calendar
  (``FY1994 M02 D15`` and ``Nov 19 1993`` for the same instant);
* MultiCal's "variable span Month" corresponds to a ``MONTHS``-calendar
  step — :func:`variable_span_equals_months_step` demonstrates the one
  point of overlap the paper identifies.
"""

from __future__ import annotations

from repro.core.arithmetic import shift_point
from repro.core.calendar import Calendar
from repro.core.errors import CalendarError
from repro.core.interval import Interval
from repro.multical.calsystem import CalendricSystem
from repro.multical.types import MCEvent, MCInterval, MCSpan

__all__ = [
    "event_to_tick",
    "tick_to_event",
    "mc_interval_to_interval",
    "interval_to_mc",
    "calendar_to_mc_intervals",
    "render_calendar",
    "variable_span_equals_months_step",
]


def event_to_tick(event: MCEvent) -> int:
    """MultiCal events live on the same zero-skipping day axis."""
    return event.chronon


def tick_to_event(tick: int, calendar: str = "gregorian") -> MCEvent:
    """Wrap an axis tick as a MultiCal event."""
    return MCEvent(tick, calendar)


def mc_interval_to_interval(interval: MCInterval) -> Interval:
    """Convert a MultiCal interval to a core interval (shared axis)."""
    return Interval(interval.start, interval.end)


def interval_to_mc(interval: Interval) -> MCInterval:
    """Convert a core interval to a MultiCal interval."""
    return MCInterval(interval.lo, interval.hi)


def calendar_to_mc_intervals(cal: Calendar) -> list[MCInterval]:
    """Flatten an order-n calendar into MultiCal intervals.

    This is lossy by design: MultiCal has no nested-list type, so the
    order-2 structure (the thing selection/foreach need) cannot survive
    the trip — exactly the limitation the paper points out.
    """
    return [interval_to_mc(iv) for iv in cal.iter_intervals()]


def render_calendar(system: CalendricSystem, cal: Calendar,
                    calendar_name: str = "gregorian") -> list[str]:
    """Render an order-1 calendar through a MultiCal calendar's format."""
    if cal.order != 1:
        raise CalendarError("render_calendar expects an order-1 calendar")
    mc_cal = system.calendar(calendar_name)
    out = []
    for iv in cal.elements:
        if iv.is_instant():
            out.append(mc_cal.format(iv.lo))
        else:
            out.append(f"{mc_cal.format(iv.lo)} .. {mc_cal.format(iv.hi)}")
    return out


def variable_span_equals_months_step(system: CalendricSystem,
                                     months_calendar: Calendar,
                                     event: MCEvent,
                                     months: int) -> bool:
    """The section 5 overlap: MultiCal's variable span *Month* agrees with
    stepping through this library's MONTHS calendar.

    ``event + Span(months=k)`` must land in the interval reached by
    moving ``k`` elements forward from the event's month in
    ``months_calendar`` (an order-1 MONTHS calendar covering both).
    """
    target = system.add(event, MCSpan(months=months))
    start_index = None
    for i, iv in enumerate(months_calendar.elements):
        if event.chronon in iv:
            start_index = i
            break
    if start_index is None:
        raise CalendarError("event is outside the MONTHS calendar")
    target_index = start_index + months
    if not 0 <= target_index < len(months_calendar.elements):
        raise CalendarError("span lands outside the MONTHS calendar")
    return target.chronon in months_calendar.elements[target_index]
