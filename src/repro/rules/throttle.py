"""Per-tenant admission control for the temporal-rule daemon.

A production alerting deployment hosts rules for many *tenants* on one
daemon; one tenant registering a million rules or firing a dense
calendar must not starve the rest or stall the clock.  This module
provides deterministic token-bucket rate limiting keyed on the daemon's
axis clock (integer ticks), so throttling behaves identically under the
simulated clock and in replays:

* :class:`TokenBucket` — the classic refill-on-read bucket: ``rate``
  tokens accrue per tick up to ``burst``; admission spends them.
* :class:`TenantThrottle` — a bucket pair per tenant (registration and
  firing), plus drop counters that back the
  ``dbcron.throttle.*`` metrics and the ``\\rules stats`` report.

The daemon never blocks on a throttle.  Over-budget registrations are
refused at declaration time (the caller gets
:class:`~repro.core.errors.ThrottledError`); over-budget fires are
*shed* — rescheduled at their next trigger point without running the
action — lowest priority first (see :meth:`DBCron._shed_overbudget`).
"""

from __future__ import annotations

import threading

from repro.core.errors import ReproError

__all__ = ["ThrottledError", "TokenBucket", "TenantThrottle"]


class ThrottledError(ReproError):
    """A tenant exceeded its registration budget."""


class TokenBucket:
    """Deterministic token bucket on the integer tick axis.

    ``rate`` tokens accrue per elapsed tick, capped at ``burst``.  The
    bucket starts full.  Time never flows backwards: a stale ``now``
    spends from the balance as of the latest tick seen.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp: int | None = None

    def _refill(self, now: int) -> None:
        if self.stamp is not None and now > self.stamp:
            self.tokens = min(self.burst,
                              self.tokens + self.rate * (now - self.stamp))
        if self.stamp is None or now > self.stamp:
            self.stamp = now

    def admit(self, now: int, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False = over budget."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def grant(self, now: int, requested: int) -> int:
        """Spend up to ``requested`` whole tokens; how many were granted."""
        self._refill(now)
        granted = min(requested, int(self.tokens))
        self.tokens -= granted
        return granted


class _TenantState:
    __slots__ = ("fires", "registrations", "fired", "shed",
                 "registered", "denied", "counters")

    def __init__(self, fires: TokenBucket | None,
                 registrations: TokenBucket | None) -> None:
        self.fires = fires
        self.registrations = registrations
        self.fired = 0
        self.shed = 0
        self.registered = 0
        self.denied = 0
        #: Tenant-labelled (fired, shed, registered, denied) counter
        #: children, bound once per tenant by ``bind_metrics``; None
        #: while the throttle is unbound (one branch per admission).
        self.counters: "tuple | None" = None


class TenantThrottle:
    """Registration and firing budgets for a fleet of tenants.

    Default limits apply to every tenant without an explicit override;
    ``None`` for a rate means that dimension is unlimited.  Burst
    defaults to one period's worth of tokens (``rate``) when not given.
    """

    def __init__(self, *, fires_per_tick: float | None = None,
                 fire_burst: float | None = None,
                 registrations_per_tick: float | None = None,
                 registration_burst: float | None = None) -> None:
        self._defaults = (fires_per_tick, fire_burst,
                          registrations_per_tick, registration_burst)
        self._tenants: dict[str, _TenantState] = {}
        self._overrides: dict[str, tuple] = {}
        self._lock = threading.RLock()
        self._families: "tuple | None" = None

    # -- configuration -----------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Mirror per-tenant counters into labelled metric families.

        Called by :class:`~repro.rules.dbcron.DBCron` when it adopts the
        throttle.  Each tenant's fired/shed/registered/denied counts
        update ``dbcron.tenant.*`` counter families labelled by tenant
        — cardinality-governed, so hostile tenant ids collapse into the
        ``other`` series instead of growing the registry.  Idempotent;
        re-binding to a different registry re-binds existing tenants on
        their next admission.
        """
        with self._lock:
            self._families = tuple(
                registry.counter(f"dbcron.tenant.{name}", description,
                                 labels=("tenant",))
                for name, description in (
                    ("fired", "Rule fires granted per tenant"),
                    ("shed", "Rule fires shed over budget per tenant"),
                    ("registered", "Rule registrations admitted per tenant"),
                    ("denied", "Rule registrations denied per tenant"),
                ))
            for state in self._tenants.values():
                state.counters = None  # re-bound lazily in _state

    def set_limits(self, tenant: str, *,
                   fires_per_tick: float | None = None,
                   fire_burst: float | None = None,
                   registrations_per_tick: float | None = None,
                   registration_burst: float | None = None) -> None:
        """Override the default budgets for one tenant (rebuilds state)."""
        with self._lock:
            self._overrides[tenant] = (fires_per_tick, fire_burst,
                                       registrations_per_tick,
                                       registration_burst)
            self._tenants.pop(tenant, None)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            fires_rate, fire_burst, reg_rate, reg_burst = \
                self._overrides.get(tenant, self._defaults)
            fires = TokenBucket(fires_rate, fire_burst or fires_rate) \
                if fires_rate is not None else None
            regs = TokenBucket(reg_rate, reg_burst or reg_rate) \
                if reg_rate is not None else None
            state = _TenantState(fires, regs)
            self._tenants[tenant] = state
        if state.counters is None and self._families is not None:
            state.counters = tuple(family.labels(tenant)
                                   for family in self._families)
        return state

    # -- admission ---------------------------------------------------------------

    def admit_registration(self, tenant: str, now: int) -> bool:
        """One registration for ``tenant`` at tick ``now``; False = deny."""
        with self._lock:
            state = self._state(tenant)
            if state.registrations is None or \
                    state.registrations.admit(now):
                state.registered += 1
                if state.counters is not None:
                    state.counters[2].inc()
                return True
            state.denied += 1
            if state.counters is not None:
                state.counters[3].inc()
            return False

    def grant_fires(self, tenant: str, now: int, requested: int) -> int:
        """How many of ``requested`` same-wave fires the tenant may run."""
        with self._lock:
            state = self._state(tenant)
            if state.fires is None:
                granted = requested
            else:
                granted = state.fires.grant(now, requested)
            state.fired += granted
            state.shed += requested - granted
            if state.counters is not None:
                if granted:
                    state.counters[0].inc(granted)
                if requested > granted:
                    state.counters[1].inc(requested - granted)
            return granted

    # -- reporting ---------------------------------------------------------------

    def drops(self) -> int:
        """Total shed fires + denied registrations across all tenants."""
        with self._lock:
            return sum(s.shed + s.denied for s in self._tenants.values())

    def stats(self) -> dict[str, dict]:
        """Per-tenant counters: fired/shed/registered/denied."""
        with self._lock:
            return {
                tenant: {"fired": s.fired, "shed": s.shed,
                         "registered": s.registered, "denied": s.denied}
                for tenant, s in sorted(self._tenants.items())
            }
