"""DBCRON: the daemon that triggers temporal rules (section 4, Figure 4).

Modelled on the UNIX ``cron`` utility, with a pluggable main-memory
schedule behind one strategy protocol:

* :class:`HeapSchedule` — the paper-faithful design: every ``period``
  time units DBCRON *probes* the RULE_TIME table for rules that trigger
  within the next period and loads them into a binary heap.  Selected
  with ``REPRO_WHEEL=0`` (or ``DBCron(scheduler="heap")``).
* :class:`~repro.rules.wheel.WheelSchedule` — the default since the
  timing-wheel rework: a hash-sharded hierarchical timing wheel that
  holds the *entire* future, so registration and re-arming go straight
  into an O(1) bucket and the periodic RULE_TIME probe disappears from
  the hot path entirely (it survives only as a cheap due-count report
  plus the one-time sync of rules declared before the daemon existed).

As the clock advances, due entries are popped and fired; each fired rule
computes its next trigger point (via the calendar pipeline), RULE_TIME
is updated, and the re-arm notification re-enters the schedule.

Independent due rules can fire **in parallel**: :meth:`DBCron.fire_due`
pops all entries sharing the earliest due fire tick as one *wave* and
dispatches the wave across a :class:`~repro.runtime.WorkerPool`.  Under
the wheel the wave is batched **per shard** — one pool task per wheel
shard, each firing its batch sequentially — which keeps dispatch
overhead constant as waves grow to alerting scale; the heap keeps its
original one-task-per-rule dispatch.  Processing wave-by-wave preserves
the deterministic cross-tick firing order of the sequential daemon, and
per-wave results are folded back on the dispatching thread in wave
order so sequential and parallel runs count identically.

Admission control is optional and non-blocking: with a
:class:`~repro.rules.throttle.TenantThrottle` attached, each wave is
filtered through the owning tenants' token buckets *before* firing —
over-budget entries are **shed** (lowest priority first), counted, and
rescheduled at their next trigger point without running their action,
so a misbehaving tenant degrades itself instead of stalling the clock.

Both schedules share the staleness discipline introduced with the
wheel: every arm carries a generation, redefinition/cancel kills older
entries in place, and a per-rule *fired-at* watermark refuses re-arms
at or before the last popped tick — closing the probe-vs-in-flight-fire
double-fire race of the original daemon (IMPLEMENTATION_NOTES §11).

With periodic compilation on (``REPRO_PERIODIC``, default), the
per-rule ``next_trigger`` path short-circuits through the compiled
:class:`~repro.core.periodic.PeriodicSet`: re-arming after a fire is
O(log offsets) modular arithmetic with no window materialisation, which
is what gives the wheel O(1) ticks to key on.

Driven by a :class:`~repro.rules.clock.SimulatedClock` for determinism;
``run_until`` steps the clock probe-by-probe the way the real daemon
sleeps between wake-ups.
"""

from __future__ import annotations

import heapq
import os
import threading

from dataclasses import dataclass
from time import perf_counter

from repro.core.errors import AxisError
from repro.core.interval import axis_add
from repro.db.database import Database
from repro.rules.clock import SimulatedClock
from repro.rules.manager import RuleManager
from repro.rules.wheel import WheelSchedule
from repro.runtime import WorkerPool, get_default_pool

__all__ = ["DBCron", "HeapSchedule", "default_scheduler"]


def default_scheduler() -> str:
    """``"wheel"`` unless ``REPRO_WHEEL`` disables it (0/false/off)."""
    raw = os.environ.get("REPRO_WHEEL", "1").strip().lower()
    return "heap" if raw in ("0", "false", "off", "no") else "wheel"


@dataclass
class _Stats:
    probes: int = 0
    fires: int = 0
    reschedules: int = 0
    sheds: int = 0
    #: Peak live size of the main-memory schedule (heap or wheel).
    max_heap_size: int = 0


class HeapSchedule:
    """The legacy probe-horizon schedule: a binary heap + liveness maps.

    Implements the same strategy protocol as
    :class:`~repro.rules.wheel.WheelSchedule`; ``bounded_horizon`` is
    True, so the daemon only feeds it arms inside the current probe
    window and must keep probing RULE_TIME to learn about the rest.
    """

    bounded_horizon = True

    def __init__(self) -> None:
        #: (fire_tick, generation, rulename) entries.
        self._heap: list[tuple[int, int, str]] = []
        #: Live armament: name -> (tick, generation).
        self._scheduled: dict[str, tuple[int, int]] = {}
        #: Last popped tick per name (anti double-fire watermark).
        self._fired_at: dict[str, int] = {}
        self._gen = 0
        self._lock = threading.RLock()

    def schedule(self, name: str, tick: int) -> bool:
        """Arm ``name`` at ``tick``; False when dup or watermarked."""
        with self._lock:
            current = self._scheduled.get(name)
            if current is not None and current[0] == tick:
                return False
            fired = self._fired_at.get(name)
            if fired is not None and tick <= fired:
                return False
            self._gen += 1
            self._scheduled[name] = (tick, self._gen)
            heapq.heappush(self._heap, (tick, self._gen, name))
            return True

    def cancel(self, name: str) -> None:
        """Disarm ``name``; its heap entries die in place."""
        with self._lock:
            self._scheduled.pop(name, None)
            self._fired_at.pop(name, None)

    def pop_wave(self, now: int) -> list[tuple[int, str, int]]:
        """Every live entry of the earliest due tick (shard always 0)."""
        wave: list[tuple[int, str, int]] = []
        with self._lock:
            wave_tick = None
            while self._heap and self._heap[0][0] <= now:
                if wave_tick is not None and \
                        self._heap[0][0] != wave_tick:
                    break
                tick, gen, name = heapq.heappop(self._heap)
                if self._scheduled.get(name) != (tick, gen):
                    continue  # dead: dropped, redefined or re-pointed
                del self._scheduled[name]
                self._fired_at[name] = tick
                wave_tick = tick
                wave.append((tick, name, 0))
        return wave

    def __len__(self) -> int:
        return len(self._scheduled)

    def due_within(self, now: int, horizon: int) -> int:
        """Live armed rules with tick <= now + horizon."""
        bound = now + horizon
        with self._lock:
            return sum(1 for tick, _ in self._scheduled.values()
                       if tick <= bound)

    def stats(self) -> dict:
        """Snapshot for ``Session.rules.stats()`` / the CLI."""
        with self._lock:
            return {"kind": "heap", "shards": 1,
                    "scheduled": len(self._scheduled),
                    "heap_entries": len(self._heap)}


class DBCron:
    """The temporal-rule daemon."""

    def __init__(self, manager: RuleManager, clock: SimulatedClock,
                 period: int = 7, pool: WorkerPool | None = None,
                 scheduler: str | None = None,
                 shards: int | None = None,
                 throttle=None) -> None:
        if period < 1:
            raise AxisError("the probe period must be at least 1 tick")
        self.manager = manager
        self.db: Database = manager.db
        self.clock = clock
        self.period = period
        #: Worker pool for parallel wave firing (size 1 = sequential).
        self.pool = pool if pool is not None else get_default_pool()
        kind = scheduler if scheduler is not None else default_scheduler()
        if kind not in ("wheel", "heap"):
            raise AxisError(f"unknown scheduler {kind!r} "
                            "(expected 'wheel' or 'heap')")
        self.scheduler = kind
        if kind == "wheel":
            shard_count = shards if shards is not None \
                else max(1, self.pool.size)
            self.sched = WheelSchedule(clock.now, shards=shard_count)
        else:
            self.sched = HeapSchedule()
        #: Optional per-tenant admission control (see
        #: :class:`~repro.rules.throttle.TenantThrottle`); None = fire
        #: everything.
        self.throttle = throttle
        if throttle is not None and hasattr(throttle, "bind_metrics"):
            # Tenant-labelled fired/shed/denied counters live in the
            # stack's shared registry once a daemon adopts the throttle.
            throttle.bind_metrics(self.db.instrumentation.metrics)
        self._horizon = clock.now  # end of the currently probed window
        self.stats = _Stats()
        manager.clock = clock
        manager.subscribe_schedule(self._on_schedule_change)
        clock.subscribe(self._on_clock)
        if not self.sched.bounded_horizon:
            # One-time sync: rules declared before this daemon existed
            # live only in RULE_TIME; later declarations arrive as
            # schedule-change notifications and never touch the table.
            for name, next_fire in manager.tables.all_next_fires():
                self.sched.schedule(name, next_fire)

    def detach(self) -> None:
        """Unhook from the clock and the manager (daemon replacement)."""
        self.clock.unsubscribe(self._on_clock)
        self.manager.unsubscribe_schedule(self._on_schedule_change)

    # -- probing -----------------------------------------------------------------

    def probe(self) -> int:
        """Refresh the schedule; rules due within the next period.

        Under the heap this is the periodic RULE_TIME scan of Figure 4
        and returns the number of entries loaded.  Under the wheel the
        schedule is already complete — the probe merely reports how many
        armed rules fall inside the window and refreshes the gauges
        (including the per-shard lag histogram), without touching the
        database.
        """
        now = self.clock.now
        self._horizon = axis_add(now, self.period)
        self.stats.probes += 1
        if self.sched.bounded_horizon:
            loaded = 0
            for fire_tick, name in self.manager.tables.due_within(
                    now, self.period):
                if self.sched.schedule(name, fire_tick):
                    loaded += 1
        else:
            loaded = self.sched.due_within(now, self.period)
        sched_size = len(self.sched)
        self.stats.max_heap_size = max(self.stats.max_heap_size,
                                       sched_size)
        inst = self.db.instrumentation
        inst.metrics.counter("dbcron.probes").inc()
        inst.metrics.gauge("dbcron.heap_size").set(sched_size)
        if self.scheduler == "wheel":
            self._observe_wheel(inst, now)
        if inst.pipeline is not None:
            inst.pipeline.emit("dbcron.probe", now=now, loaded=loaded,
                               heap=sched_size, horizon=self._horizon,
                               scheduler=self.scheduler)
        return loaded

    def _observe_wheel(self, inst, now: int) -> None:
        """Wheel-specific gauges: cascades, overflow, per-shard lag.

        Lag is recorded twice: the flat histogram keeps the historical
        distribution view, while the labelled gauge family exposes each
        shard's *current* lag as its own Prometheus series so a stuck
        shard is identifiable by number.
        """
        metrics = inst.metrics
        metrics.gauge("dbcron.wheel.shards").set(self.sched.shards)
        metrics.gauge("dbcron.wheel.cascades").set(self.sched.cascades())
        metrics.gauge("dbcron.wheel.overflow").set(
            self.sched.overflow_size())
        lag_hist = metrics.histogram("dbcron.wheel.shard_lag_ticks")
        lag_family = metrics.gauge(
            "dbcron.wheel.shard_lag", "Current lag ticks per wheel shard",
            labels=("shard",))
        sizes = metrics.gauge(
            "dbcron.wheel.shard_size", "Armed rules per wheel shard",
            labels=("shard",))
        for shard, lag in enumerate(self.sched.shard_lags(now)):
            lag_hist.observe(lag)
            lag_family.labels(str(shard)).set(float(lag))
        for shard, size in enumerate(self.sched.shard_sizes()):
            sizes.labels(str(shard)).set(float(size))

    def _on_schedule_change(self, name: str, next_fire: int | None) -> None:
        """A rule was declared/dropped/rescheduled while we are awake."""
        if next_fire is None:
            self.sched.cancel(name)
            return
        if self.sched.bounded_horizon and next_fire > self._horizon:
            return  # a later probe will pick it up
        self.sched.schedule(name, next_fire)

    # -- firing ------------------------------------------------------------------

    def _on_clock(self, now: int) -> None:
        self.fire_due()

    def _fire_one(self, fire_tick: int, name: str, now: int,
                  parent_span) -> "tuple[int | None, float]":
        """Fire one rule; (next_fire, elapsed seconds).

        Runs on a pool worker during parallel waves; ``parent_span``
        (when tracing) adopts this worker's ``rule.fire`` span into the
        dispatching thread's trace tree.
        """
        tracer = self.db.instrumentation.tracer
        t0 = perf_counter()
        if tracer is not None and parent_span is not None:
            with tracer.child_span(parent_span, "rule.fire", rule=name,
                                   tick=fire_tick, drift=now - fire_tick):
                next_fire = self.manager.fire_temporal(name, fire_tick)
        elif tracer is not None:
            with tracer.span("rule.fire", rule=name, tick=fire_tick,
                             drift=now - fire_tick):
                next_fire = self.manager.fire_temporal(name, fire_tick)
        else:
            next_fire = self.manager.fire_temporal(name, fire_tick)
        return next_fire, perf_counter() - t0

    def fire_due(self) -> int:
        """Fire every scheduled entry whose time has come; count fired.

        Due entries are processed in *waves* — all entries sharing the
        earliest due fire tick.  With a throttle attached, each wave is
        first filtered through the owning tenants' fire budgets and the
        over-budget remainder is shed (rescheduled, not fired).  The
        surviving wave fires across the worker pool when it holds more
        than one rule and the pool has more than one worker; otherwise
        the rules fire sequentially on this thread.  Records per-fire
        latency (``dbcron.fire_seconds``) and how far behind schedule
        the daemon is running (``dbcron.fire_drift_ticks``); with
        tracing on, each fire gets a ``rule.fire`` span (parallel waves
        roll the per-worker spans up under one ``dbcron.fire_wave``).
        """
        now = self.clock.now
        inst = self.db.instrumentation
        fire_hist = inst.metrics.histogram("dbcron.fire_seconds")
        drift_gauge = inst.metrics.gauge("dbcron.fire_drift_ticks")
        fire_counter = inst.metrics.counter("dbcron.fires")
        shard_fires = inst.metrics.counter(
            "dbcron.shard_fires", "Rules fired per scheduler shard",
            labels=("shard",))
        fired = 0
        while True:
            wave = self.sched.pop_wave(now)
            if not wave:
                break
            if self.throttle is not None:
                wave = self._shed_overbudget(wave, now, inst)
                if not wave:
                    continue
            drift_gauge.set(now - wave[0][0])
            if inst.pipeline is not None:
                inst.pipeline.emit("dbcron.wave", tick=wave[0][0],
                                   rules=len(wave), drift=now - wave[0][0])
            if len(wave) > 1 and self.pool.size > 1:
                results = self._fire_wave_parallel(wave, now)
            else:
                results = [self._fire_one(tick, name, now, None)
                           for tick, name, _ in wave]
            # Stats and metrics are updated on this thread, in wave
            # order, so sequential and parallel runs count identically.
            for (next_fire, elapsed), (tick, name, shard) in zip(results,
                                                                 wave):
                fire_hist.observe(elapsed)
                fire_counter.inc()
                shard_fires.labels(str(shard)).inc()
                fired += 1
                self.stats.fires += 1
                if next_fire is not None:
                    self.stats.reschedules += 1
                    # _on_schedule_change re-armed it if due again.
                if inst.pipeline is not None:
                    inst.pipeline.emit("rule.fire", rule=name, tick=tick,
                                       duration_s=elapsed,
                                       next_fire=next_fire)
        return fired

    def _shed_overbudget(self, wave, now: int, inst):
        """Apply per-tenant fire budgets; reschedule what gets shed.

        Sheds the lowest-priority entries of each over-budget tenant
        first (ties broken by wave position, so the outcome is
        deterministic), advances every shed rule past this trigger
        point via :meth:`RuleManager.skip_temporal`, and returns the
        surviving wave in its original order.  The clock is never
        blocked: shedding is a reschedule, not a wait.
        """
        rules = self.manager.temporal_rules
        by_tenant: dict[str, list[int]] = {}
        for position, (_, name, _) in enumerate(wave):
            rule = rules.get(name)
            tenant = getattr(rule, "tenant", "default") if rule else \
                "default"
            by_tenant.setdefault(tenant, []).append(position)
        shed_positions: set[int] = set()
        for tenant, positions in by_tenant.items():
            granted = self.throttle.grant_fires(tenant, now,
                                                len(positions))
            if granted >= len(positions):
                continue
            # Keep the highest-priority entries; shed the rest.
            ranked = sorted(
                positions,
                key=lambda p: (-getattr(rules.get(wave[p][1]),
                                        "priority", 0), p))
            shed_positions.update(ranked[granted:])
        if not shed_positions:
            return wave
        shed_counter = inst.metrics.counter("dbcron.sheds")
        for position in sorted(shed_positions):
            tick, name, _ = wave[position]
            self.stats.sheds += 1
            shed_counter.inc()
            self.manager.skip_temporal(name, tick)
            if inst.pipeline is not None:
                inst.pipeline.emit("dbcron.shed", rule=name, tick=tick,
                                   now=now)
        return [entry for position, entry in enumerate(wave)
                if position not in shed_positions]

    def _fire_wave_parallel(self, wave, now: int) -> list:
        """Dispatch one wave across the pool; per-entry results in order.

        Wheel waves arrive pre-sharded: entries are grouped by wheel
        shard and each shard's batch runs as one pool task (constant
        dispatch overhead per wave).  Heap waves carry a single shard id
        and fall back to one task per rule — the pre-wheel behaviour.
        """
        batches: dict[int, list[tuple[int, int, str]]] = {}
        for position, (tick, name, shard) in enumerate(wave):
            batches.setdefault(shard, []).append((position, tick, name))
        if len(batches) == 1:
            work = [[(position, tick, name)]
                    for position, (tick, name, _) in enumerate(wave)]
        else:
            work = list(batches.values())

        def fire_batch(batch, parent_span=None):
            return [(position, self._fire_one(tick, name, now,
                                              parent_span))
                    for position, tick, name in batch]

        tracer = self.db.instrumentation.tracer
        if tracer is not None:
            with tracer.span("dbcron.fire_wave", tick=wave[0][0],
                             rules=len(wave),
                             batches=len(work)) as wave_span:
                settled = self.pool.sharded_map(
                    lambda batch: fire_batch(batch, wave_span), work)
        else:
            settled = self.pool.sharded_map(fire_batch, work)
        results: list = [None] * len(wave)
        for batch_results in settled:
            for position, result in batch_results:
                results[position] = result
        return results

    # -- driving ------------------------------------------------------------------

    def run_until(self, tick: int) -> int:
        """Advance the clock to ``tick`` probe-by-probe; count fires.

        Mirrors the daemon loop: probe, sleep one period (advancing the
        clock fires due rules), repeat.
        """
        before = self.stats.fires
        self.probe()
        while self.clock.now < tick:
            step = min(self.period, tick - self.clock.now)
            self.clock.advance(step)
            self.probe()
        self.fire_due()
        return self.stats.fires - before
