"""Options desk scenario: expirations, last trading days, DBCRON alerts.

The paper's running example (sections 1, 3.3, 4): option expiration dates
("3rd Friday of the month if a business day, else the preceding business
day"), last trading days (7th business day preceding month end), and a
temporal rule that raises the LAST TRADING DAY alert via DBCRON.

Run with::

    python examples/financial_options.py
"""

from repro import (
    CalendarRegistry,
    CalendarSystem,
    Database,
    DBCron,
    RuleManager,
    SimulatedClock,
)
from repro.catalog import install_standard_calendars, install_us_holidays
from repro.finance import (
    OptionContract,
    expiration_calendar,
    expiration_date,
    last_trading_day,
)


def build_registry() -> CalendarRegistry:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=20)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 2006)
    return registry


def main() -> None:
    registry = build_registry()
    system = registry.system

    # --- expiration schedule for 1993 -----------------------------------
    print("1993 option expirations (3rd-Friday rule with holiday roll):")
    for month in range(1, 13):
        exp = expiration_date(registry, 1993, month)
        ltd = last_trading_day(registry, 1993, month)
        print(f"   {month:2d}: expires {system.date_of(exp)}, "
              f"last trading day {system.date_of(ltd)}")
    print()

    # --- a stock price table queried "on expiration-date" ----------------
    db = Database(calendars=registry)
    db.create_table("stock", [("symbol", "text"), ("day", "abstime"),
                              ("price", "float8")],
                    valid_time_column="day")
    base = system.day_of("Nov 15 1993")
    for offset, price in enumerate([461.2, 462.9, 461.0, 463.7, 464.9]):
        db.insert("stock", symbol="SPX", day=base + offset, price=price)
    registry.define("EXPIRATIONS_93",
                    values=expiration_calendar(registry, 1993),
                    granularity="DAYS")
    result = db.execute(
        "retrieve (s.symbol, s.price) from s in stock on EXPIRATIONS_93")
    print("Retrieve (stock.price) on expiration-date:")
    print(result.to_table())
    print()

    # --- the LAST TRADING DAY alert as a DBCRON temporal rule -----------
    manager = RuleManager(db)
    clock = SimulatedClock(now=system.day_of("Nov 1 1993"))
    cron = DBCron(manager, clock, period=1)
    db.create_table("alerts", [("day", "abstime"), ("message", "text")])

    ltd_nov = last_trading_day(registry, 1993, 11)
    registry.define("LTD_NOV_93", values=[(ltd_nov, ltd_nov)],
                    granularity="DAYS")
    manager.declare_temporal(
        "last_trading_day_alert", expression="LTD_NOV_93",
        actions=['append alerts (day = now.t, '
                 'message = "LAST TRADING DAY " || now.text)'],
        after=clock.now)

    cron.run_until(system.day_of("Dec 1 1993"))
    print("Alerts raised while the clock ran through November 1993:")
    print(db.execute("retrieve (a.message) from a in alerts").to_table())
    print()

    # --- contract objects -------------------------------------------------
    contract = OptionContract("SPX", 1993, 12, strike=465.0)
    print(f"SPX Dec-93 465 call: expires "
          f"{system.date_of(contract.expiration(registry))}, "
          f"last trading day "
          f"{system.date_of(contract.last_trading_day(registry))}")


if __name__ == "__main__":
    main()
