"""Property: ``Session.eval_many`` equals sequential ``eval``.

For any batch drawn from a pool of defined names, expressions and
scripts — duplicates included — and any worker count, the batch engine
must return exactly what a script-by-script ``session.eval`` loop
returns, in the same order.  One module-level session is shared across
examples so the batch paths run against progressively warmer plan/
materialisation caches (the realistic steady state).
"""

from hypothesis import given, settings, strategies as st

from repro.core import Calendar
from repro.obs.instrument import Instrumentation
from repro.session import Session

SESSION = Session("Jan 1 1987", holiday_years=(1993, 1994),
                  instrumentation=Instrumentation())

WINDOW = ("Jan 1 1993", "Dec 31 1993")

#: Mixed pool: expressions, a defined calendar, a full script.
SCRIPT_POOL = [
    "[1]/MONTHS:during:1993/YEARS",
    "[22]/DAYS:during:[1]/MONTHS:during:1993/YEARS",
    "[3]/WEEKS:overlaps:[1]/MONTHS:during:1993/YEARS",
    "DAYS:during:[2]/MONTHS:during:1993/YEARS",
    "HOLIDAYS",
    "AM_BUS_DAYS - HOLIDAYS",
    "x = (DAYS:during:[1]/MONTHS:during:1993/YEARS); return (x)",
    "[n]/DAYS:during:[3]/MONTHS:during:1993/YEARS",
]

batches = st.lists(st.sampled_from(SCRIPT_POOL), min_size=1, max_size=10)

worker_counts = st.sampled_from([1, 2, 4])


def assert_same(got, expected) -> None:
    assert type(got) is type(expected)
    if isinstance(expected, Calendar):
        assert got.to_pairs() == expected.to_pairs()
        assert got.labels == expected.labels
    else:
        assert got == expected


@settings(max_examples=25, deadline=None)
@given(batch=batches, workers=worker_counts)
def test_eval_many_equals_sequential_eval(batch, workers):
    expected = [SESSION.eval(text, window=WINDOW) for text in batch]
    got = SESSION.eval_many(batch, window=WINDOW, max_workers=workers)
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert_same(g, e)


@settings(max_examples=10, deadline=None)
@given(batch=batches)
def test_eval_many_default_workers_matches(batch):
    expected = [SESSION.eval(text, window=WINDOW) for text in batch]
    got = SESSION.eval_many(batch, window=WINDOW)
    for g, e in zip(got, expected):
        assert_same(g, e)
