"""Shared benchmark fixtures: populated registries over long horizons."""

from __future__ import annotations

import pytest

from repro.catalog import (
    CalendarRegistry,
    install_standard_calendars,
    install_us_holidays,
)
from repro.core import CalendarSystem
from repro.db import Database


def build_registry(horizon_years: int = 30) -> CalendarRegistry:
    registry = CalendarRegistry(CalendarSystem.starting("Jan 1 1987"),
                                default_horizon_years=horizon_years)
    install_standard_calendars(registry)
    install_us_holidays(registry, 1987, 1987 + horizon_years - 1)
    return registry


@pytest.fixture(scope="module")
def registry() -> CalendarRegistry:
    return build_registry()


@pytest.fixture(scope="module")
def bench_db(registry) -> Database:
    return Database(calendars=registry)
