"""Date arithmetic over calendars.

Section 1 of the paper motivates *user-defined semantics for date
manipulation*: commercial date functions hard-wire the Gregorian calendar,
but e.g. bond-yield conventions use a 360-day year of twelve 30-day months.
This module provides

* point navigation within an arbitrary order-1 calendar
  (:func:`next_point`, :func:`prev_point`, :func:`shift_point`,
  :func:`count_points_between`) — "add 5 business days" is
  ``shift_point(AM_BUS_DAYS, t, 5)``;
* :class:`DateScheme` — pluggable civil-date arithmetic, with the
  :class:`GregorianScheme` and the bond-market :class:`Thirty360Scheme`
  (each month counted as 30 days) as concrete instances.  Day-count
  *fractions* for yield formulas live in :mod:`repro.finance.conventions`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.calendar import Calendar
from repro.core.chrono import CivilDate, Epoch, days_in_month
from repro.core.interval import Interval, axis_diff

__all__ = [
    "next_point",
    "prev_point",
    "shift_point",
    "count_points_between",
    "point_index",
    "DateScheme",
    "GregorianScheme",
    "Thirty360Scheme",
]


# ---------------------------------------------------------------------------
# Point navigation within a calendar
# ---------------------------------------------------------------------------

def _sorted_leaves(cal: Calendar) -> list[Interval]:
    leaves = sorted(cal.iter_intervals(), key=lambda iv: (iv.lo, iv.hi))
    return leaves


def next_point(cal: Calendar, t: int, inclusive: bool = False) -> int | None:
    """Smallest axis point of ``cal`` strictly after ``t``.

    With ``inclusive=True``, ``t`` itself qualifies when it is in the
    calendar.  Returns ``None`` when the calendar has no such point.
    """
    leaves = _sorted_leaves(cal)
    if not leaves:
        return None
    threshold = t if inclusive else t + (1 if t != -1 else 2)
    if threshold == 0:
        threshold = 1
    los = [iv.lo for iv in leaves]
    idx = bisect.bisect_right(los, threshold) - 1
    if idx >= 0 and leaves[idx].hi >= threshold:
        return threshold
    idx += 1
    if idx < len(leaves):
        return leaves[idx].lo
    return None


def prev_point(cal: Calendar, t: int, inclusive: bool = False) -> int | None:
    """Largest axis point of ``cal`` strictly before ``t`` (or at it)."""
    leaves = _sorted_leaves(cal)
    if not leaves:
        return None
    threshold = t if inclusive else t - (1 if t != 1 else 2)
    if threshold == 0:
        threshold = -1
    los = [iv.lo for iv in leaves]
    idx = bisect.bisect_right(los, threshold) - 1
    if idx < 0:
        return None
    if leaves[idx].hi >= threshold:
        return threshold
    return leaves[idx].hi


def point_index(cal: Calendar, t: int) -> int | None:
    """0-based ordinal of ``t`` among the calendar's points, or ``None``."""
    count = 0
    for iv in _sorted_leaves(cal):
        if t > iv.hi:
            count += len(iv)
        elif t >= iv.lo:
            return count + axis_diff(t, iv.lo)
        else:
            return None
    return None


def shift_point(cal: Calendar, t: int, n: int) -> int | None:
    """Move ``n`` calendar points from ``t`` within ``cal``.

    ``t`` need not itself be a calendar point: for positive ``n`` counting
    starts at the next calendar point at-or-after ``t`` (so
    ``shift_point(BUS_DAYS, saturday, 1)`` is the *second* business day
    after the weekend would start counting from Monday); symmetrically for
    negative ``n``.  ``n == 0`` snaps to the nearest point at-or-after
    ``t``.  Returns ``None`` when the calendar runs out.
    """
    if n >= 0:
        current = next_point(cal, t, inclusive=True)
        for _ in range(n):
            if current is None:
                return None
            current = next_point(cal, current)
        return current
    current = prev_point(cal, t, inclusive=True)
    for _ in range(-n - 1):
        if current is None:
            return None
        current = prev_point(cal, current)
    return current


def count_points_between(cal: Calendar, a: int, b: int) -> int:
    """Number of calendar points in the inclusive span ``[a, b]``."""
    if a > b:
        a, b = b, a
    total = 0
    for iv in cal.iter_intervals():
        lo = max(iv.lo, a)
        hi = min(iv.hi, b)
        if lo <= hi:
            total += axis_diff(hi, lo) + 1
    return total


# ---------------------------------------------------------------------------
# Pluggable civil-date arithmetic
# ---------------------------------------------------------------------------

class DateScheme:
    """Abstract civil-date arithmetic scheme.

    Concrete schemes define how many days separate two dates and how to add
    days to a date.  They are the "user-defined calendars" that the paper
    wants date functions to take as arguments.
    """

    name = "abstract"

    def days_between(self, a: CivilDate, b: CivilDate) -> int:
        """Days from ``a`` to ``b`` under this scheme's counting rule."""
        raise NotImplementedError

    def add_days(self, date: CivilDate, n: int) -> CivilDate:
        """The date ``n`` scheme-days after ``date``."""
        raise NotImplementedError

    def days_in_year(self) -> int:
        """Nominal year length used by this scheme's conventions."""
        raise NotImplementedError


@dataclass(frozen=True)
class GregorianScheme(DateScheme):
    """Actual civil-calendar day arithmetic."""

    name = "gregorian"
    _epoch = Epoch.of(CivilDate(1970, 1, 1))

    def days_between(self, a: CivilDate, b: CivilDate) -> int:
        return self._epoch.diff_days(self._epoch.day_number(b),
                                     self._epoch.day_number(a))

    def add_days(self, date: CivilDate, n: int) -> CivilDate:
        return self._epoch.date_of(
            self._epoch.add_days(self._epoch.day_number(date), n))

    def days_in_year(self) -> int:
        return 365


@dataclass(frozen=True)
class Thirty360Scheme(DateScheme):
    """US bond-market 30/360 arithmetic: every month has 30 days.

    ``days_between`` follows the 30U/360 rule (days capped at 30, with the
    standard end-of-month adjustment); ``add_days`` works on the scheme's
    own 360-day year grid.  Per the paper, the *yield* formula nevertheless
    divides by a 365-day year — that constant is what
    :meth:`days_in_year` reports when ``yield_basis`` is 365.
    """

    name = "30/360"
    yield_basis: int = 365

    def days_between(self, a: CivilDate, b: CivilDate) -> int:
        # NASD 30U/360: a 31st counts as the 30th; the last day of
        # February counts as the 30th on the start side; and an end-side
        # 31st counts as the 30th only when the start was (adjusted to)
        # the 30th.
        d1, d2 = a.day, b.day
        if a.month == 2 and d1 == days_in_month(a.year, 2):
            d1 = 30
        if d1 == 31:
            d1 = 30
        if d2 == 31 and d1 == 30:
            d2 = 30
        return ((b.year - a.year) * 360 + (b.month - a.month) * 30
                + (d2 - d1))

    def add_days(self, date: CivilDate, n: int) -> CivilDate:
        serial = (date.year * 360 + (date.month - 1) * 30
                  + (min(date.day, 30) - 1) + n)
        year, rem = divmod(serial, 360)
        month, day = divmod(rem, 30)
        day += 1
        month += 1
        # Snap back onto the civil grid (e.g. Feb 30 -> Feb 28/29).
        day = min(day, days_in_month(year, month))
        return CivilDate(year, month, day)

    def days_in_year(self) -> int:
        return self.yield_basis

