"""End-to-end extensibility: user-declared listops, functions, ADTs.

The paper's core argument for building on an *extensible* DBMS is that
applications can declare their own operators and have the query language
pick them up.  These tests exercise that path across layers.
"""

import pytest

from repro.core import Interval, register_listop
from repro.core.interval import LISTOPS
from repro.db import Database
from repro.rules import RuleManager


@pytest.fixture(scope="module", autouse=True)
def custom_listop():
    if "adjacent" not in LISTOPS:
        # adjacent: the intervals touch end-to-start in either direction.
        register_listop(
            "adjacent",
            lambda a, b: a.hi + 1 == b.lo or b.hi + 1 == a.lo,
            clips=False)
    yield


class TestCustomListopInLanguage:
    def test_usable_in_expression(self, registry):
        cal = registry.eval_expression(
            "WEEKS:adjacent:[2]/WEEKS:during:1993/YEARS",
            window=("Jan 1 1993", "Dec 31 1993"))
        # Exactly the weeks before and after week #2 of 1993.
        assert len(cal) == 2

    def test_usable_in_stored_calendar(self, registry):
        registry.define(
            "NEIGHBOUR_WEEKS",
            script="{return(WEEKS:adjacent:[10]/WEEKS:during:"
                   "1993/YEARS);}",
            granularity="DAYS")
        cal = registry.evaluate("NEIGHBOUR_WEEKS",
                                window=("Jan 1 1993", "Dec 31 1993"))
        assert len(cal) == 2

    def test_plan_path_handles_custom_op(self, registry):
        text = "WEEKS:adjacent:[2]/WEEKS:during:1993/YEARS"
        window = ("Jan 1 1993", "Dec 31 1993")
        optimized = registry.eval_expression(text, window=window,
                                             optimize=True)
        reference = registry.eval_expression(text, window=window,
                                             optimize=False)
        assert optimized.to_pairs() == reference.to_pairs()


class TestCustomFunctionInScripts:
    def test_registry_function(self, registry):
        def first_and_last(context, args):
            cal = args[0]
            from repro.core import Calendar
            if len(cal) < 2:
                return cal
            return Calendar.from_intervals(
                [cal.elements[0], cal.elements[-1]], cal.granularity)

        registry.functions["endpoints"] = first_and_last
        cal = registry.eval_expression(
            "endpoints(flatten([1-5]/DAYS:during:[1]/WEEKS:during:"
            "1993/YEARS))", window=("Jan 1 1993", "Dec 31 1993"))
        assert len(cal) == 2  # Monday and Friday of the first 1993 week


class TestCustomAdtInDatabase:
    def test_user_type_and_operator(self, registry):
        db = Database(calendars=registry)
        db.types.define("money", lambda v: isinstance(v, int),
                        "cents as int")
        db.operators.register("+", "money", "money", lambda a, b: a + b)
        db.create_table("fees", [("amount", "money")])
        db.insert("fees", amount=1250)
        result = db.execute(
            "retrieve (f.amount + f.amount as double) from f in fees")
        assert result.rows[0]["double"] == 2500

    def test_custom_operator_beats_builtin(self, registry):
        db = Database(calendars=registry)
        # Declare saturating addition for int4: caps at 100.
        db.operators.register(
            "+", "int4", "int4",
            lambda a, b: min(a + b, 100))
        result = db.execute("retrieve (70 + 50 as capped)")
        assert result.rows[0]["capped"] == 100

    def test_custom_function_in_rule_condition(self, registry):
        db = Database(calendars=registry)
        manager = RuleManager(db)
        db.functions.register("is_vowelish",
                              lambda s: s[:1].lower() in "aeiou")
        db.create_table("names", [("n", "text")])
        db.create_table("vowels", [("n", "text")])
        manager.define_event_rule(
            "vowel_watch", "append", "names",
            condition="is_vowelish(new.n)",
            actions=["append vowels (n = new.n)"])
        for name in ("ada", "grace", "edsger"):
            db.insert("names", n=name)
        assert db.execute("retrieve (v.n) from v in vowels") \
            .column("n") == ["ada", "edsger"]
