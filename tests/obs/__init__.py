"""Tests for the observability subsystem (metrics, tracing, export)."""
