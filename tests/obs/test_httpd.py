"""The embedded telemetry HTTP endpoint, scraped over real sockets."""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, TelemetryServer
from repro.obs.instrument import Instrumentation
from repro.session import Session


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture()
def session():
    # A private instrumentation bundle so enabling tracing or forcing
    # drift in one test cannot leak through the process-wide default.
    session = Session(slow_query_threshold=0.0,
                      instrumentation=Instrumentation())
    session.start_telemetry_server(0)
    yield session
    session.close()


class TestEndpoints:
    def test_metrics_scrape_is_parseable_exposition(self, session):
        session.eval("[1]/MONTHS:during:1993/YEARS")
        status, headers, body = _get(session.server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode()
        from tests.obs.test_promexport import _parse_exposition
        parsed = _parse_exposition(text)
        assert any(name.startswith("repro_matcache") for name in parsed)
        for metric in parsed.values():
            assert "type" in metric and "help" in metric

    def test_healthz_ok(self, session):
        status, _, body = _get(session.server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["problems"] == []
        assert payload["pool"]["alive"] is True
        assert 0.0 <= payload["cache"]["fill"] <= 1.0

    def test_healthz_degraded_closed_pool_is_503(self, session):
        session.pool.close()
        status = None
        try:
            status, _, body = _get(session.server.url + "/healthz")
        except urllib.error.HTTPError as exc:
            status, body = exc.code, exc.read()
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert any("pool" in problem for problem in payload["problems"])

    def test_healthz_degraded_on_excess_drift(self, session):
        gauge = session.instrumentation.metrics.gauge(
            "dbcron.fire_drift_ticks")
        gauge.set(10 * session.cron.period)
        try:
            status, _, body = _get(session.server.url + "/healthz")
        except urllib.error.HTTPError as exc:
            status, body = exc.code, exc.read()
        assert status == 503
        assert any("behind schedule" in problem
                   for problem in json.loads(body)["problems"])

    def test_slowlog_endpoint(self, session):
        session.eval("[1]/MONTHS:during:1993/YEARS")
        status, headers, body = _get(session.server.url + "/slowlog")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        records = json.loads(body)
        assert len(records) == 1
        assert records[0]["source"] == "[1]/MONTHS:during:1993/YEARS"
        assert records[0]["threshold_s"] == 0.0

    def test_traces_endpoint(self, session):
        session.instrumentation.enable_tracing()
        session.eval("WEEKS:during:1993/YEARS")
        _, _, body = _get(session.server.url + "/traces")
        doc = json.loads(body)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans, "tracing on: the scrape must see spans"

    def test_events_endpoint(self, session):
        session.eval("WEEKS:during:1993/YEARS")
        _, _, body = _get(session.server.url + "/events")
        events = json.loads(body)
        kinds = {event["kind"] for event in events}
        assert "eval.start" in kinds and "eval.finish" in kinds

    def test_unknown_path_is_404(self, session):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(session.server.url + "/nope")
        assert excinfo.value.code == 404

    def test_trailing_slash_and_query_string_accepted(self, session):
        status, _, _ = _get(session.server.url + "/healthz/?verbose=1")
        assert status == 200

    def test_labelled_exposition_round_trip(self, session):
        session.eval_many(["[1]/MONTHS:during:1993/YEARS"])
        session.query("create table emp (name text)")
        _, _, body = _get(session.server.url + "/metrics")
        from tests.obs.test_promexport import (_parse_exposition,
                                               _parse_labels)
        parsed = _parse_exposition(body.decode())
        # Per-script and per-relation labelled series survive the full
        # render → scrape → conformance-parse loop.
        script = parsed["repro_eval_script_seconds"]
        label_sets = [_parse_labels(labels)
                      for name, labels, _ in script["samples"]
                      if name.endswith("_count")]
        assert {"script": "[1]/MONTHS:during:1993/YEARS"} in label_sets
        stripe = parsed["repro_matcache_stripe_hits_total"]
        assert all("stripe" in _parse_labels(labels)
                   for _, labels, _ in stripe["samples"])

    def test_profile_endpoint_returns_folded_stacks(self, session):
        status, headers, body = _get(
            session.server.url + "/profile?seconds=0.1")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert text.endswith("\n")
        for line in filter(None, text.splitlines()):
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_flamegraph_endpoint_serves_accumulation(self, session):
        session.profiler.start()
        session.eval("[1]/MONTHS:during:1993/YEARS")
        status, headers, _ = _get(session.server.url + "/flamegraph")
        session.profiler.stop()
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")


class TestMethods:
    def test_head_returns_headers_only(self, session):
        get_status, get_headers, get_body = _get(
            session.server.url + "/metrics")
        request = urllib.request.Request(
            session.server.url + "/metrics", method="HEAD")
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.status == get_status == 200
            assert response.headers["Content-Type"] == \
                get_headers["Content-Type"]
            assert int(response.headers["Content-Length"]) > 0
            assert response.read() == b""

    def test_head_healthz_matches_get_status(self, session):
        session.pool.close()
        request = urllib.request.Request(
            session.server.url + "/healthz", method="HEAD")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 503
        assert excinfo.value.read() == b""

    def test_head_profile_does_not_block_for_window(self, session):
        import time
        request = urllib.request.Request(
            session.server.url + "/profile?seconds=30", method="HEAD")
        t0 = time.perf_counter()
        with urllib.request.urlopen(request, timeout=5) as response:
            assert response.status == 200
        assert time.perf_counter() - t0 < 5.0

    def test_other_methods_are_405_with_allow(self, session):
        for method in ("POST", "PUT", "DELETE", "PATCH", "OPTIONS"):
            request = urllib.request.Request(
                session.server.url + "/metrics", method=method,
                data=b"" if method in ("POST", "PUT", "PATCH") else None)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 405
            assert excinfo.value.headers["Allow"] == "GET, HEAD"


class TestServerLifecycle:
    def test_provider_failure_is_500(self):
        server = TelemetryServer(
            metrics_text=lambda: (_ for _ in ()).throw(RuntimeError("x")),
            health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {})
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/metrics")
            assert excinfo.value.code == 500
            assert b"provider error" in excinfo.value.read()
            # The server survives the failing provider.
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
        finally:
            server.close()

    def test_ephemeral_port_resolved(self):
        server = TelemetryServer(
            metrics_text=lambda: "", health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {}, port=0)
        try:
            assert server.port > 0
            assert str(server.port) in server.url
        finally:
            server.close()

    def test_close_releases_socket(self):
        server = TelemetryServer(
            metrics_text=lambda: "", health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {})
        url = server.url
        server.close()
        with pytest.raises(urllib.error.URLError):
            _get(url + "/healthz")

    def test_session_env_port(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_PORT", "0")
        session = Session()
        try:
            assert session.server is not None
            assert session.telemetry is not None
            status, _, _ = _get(session.server.url + "/metrics")
            assert status == 200
        finally:
            session.close()

    def test_start_is_idempotent(self):
        session = Session()
        try:
            first = session.start_telemetry_server(0)
            assert session.start_telemetry_server(0) is first
        finally:
            session.close()


class TestLifecycleUnderLoad:
    def test_concurrent_scrapes_racing_close(self):
        import threading

        server = TelemetryServer(
            metrics_text=lambda: "repro_x_total 1\n",
            health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {})
        url = server.url
        ok, refused, unexpected = [], [], []

        def scrape():
            for _ in range(40):
                try:
                    status, _, _ = _get(url + "/metrics")
                    ok.append(status)
                except (urllib.error.URLError, OSError,
                        http.client.HTTPException):
                    # Post-close: refused, or reset mid-flight — both
                    # are clean shutdown outcomes, never a hang or 500.
                    refused.append(1)
                except Exception as exc:  # pragma: no cover
                    unexpected.append(exc)

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for t in threads:
            t.start()
        server.close()  # races the in-flight scrapes
        for t in threads:
            t.join()
        assert not unexpected
        assert all(status == 200 for status in ok)
        # close() is idempotent even after the race.
        server.close()

    def test_provider_raising_mid_scrape_under_concurrency(self):
        import itertools
        import threading

        calls = itertools.count()

        def flaky_metrics():
            if next(calls) % 3 == 0:
                raise RuntimeError("mid-scrape failure")
            return "repro_x_total 1\n"

        server = TelemetryServer(
            metrics_text=flaky_metrics,
            health=lambda: {"status": "ok"},
            slowlog=lambda: [], traces=lambda: {})
        statuses = []
        errors = []

        def scrape():
            for _ in range(15):
                try:
                    status, _, _ = _get(server.url + "/metrics")
                    statuses.append(status)
                except urllib.error.HTTPError as exc:
                    statuses.append(exc.code)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        try:
            threads = [threading.Thread(target=scrape) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert set(statuses) == {200, 500}
            # And the server still answers cleanly afterwards.
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
        finally:
            server.close()
