"""SLO objectives and the DBCRON-driven self-monitoring loop."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import LatencyObjective, Objective, RatioObjective
from repro.session import Session


def _get(url: str):
    """(status, parsed-JSON body) tolerating non-2xx statuses."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestObjectiveValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Objective("x", window=0)

    def test_latency_parameters_checked(self):
        with pytest.raises(ValueError):
            LatencyObjective("x", metric="m", threshold_s=0.0)
        with pytest.raises(ValueError):
            LatencyObjective("x", metric="m", threshold_s=1.0, quantile=0.0)

    def test_ratio_budget_checked(self):
        with pytest.raises(ValueError):
            RatioObjective("x", numerator="a", denominator="b",
                           max_ratio=-0.1)


class TestLatencyObjective:
    def test_missing_metric_is_healthy(self):
        objective = LatencyObjective("lat", metric="nope", threshold_s=0.01)
        breached, detail = objective.evaluate(MetricsRegistry())
        assert not breached
        assert "not registered" in detail

    def test_delta_windows_not_lifetime(self):
        registry = MetricsRegistry()
        hist = registry.histogram("eval.seconds")
        objective = LatencyObjective("lat", metric="eval.seconds",
                                     threshold_s=0.01, quantile=0.5)
        for _ in range(10):
            hist.observe(0.5)  # slow burst
        breached, detail = objective.evaluate(registry)
        assert breached
        assert "threshold" in detail
        # Next window: only fast observations → the lifetime-slow
        # histogram must not keep the objective breaching.
        for _ in range(10):
            hist.observe(0.0001)
        breached, _ = objective.evaluate(registry)
        assert not breached

    def test_empty_window_is_healthy(self):
        registry = MetricsRegistry()
        registry.histogram("eval.seconds").observe(9.0)
        objective = LatencyObjective("lat", metric="eval.seconds",
                                     threshold_s=0.01)
        assert objective.evaluate(registry)[0]
        breached, detail = objective.evaluate(registry)  # nothing new
        assert not breached
        assert "no observations" in detail

    def test_family_series_are_summed(self):
        registry = MetricsRegistry()
        fam = registry.histogram("h", labels=("script",))
        fam.labels("a").observe(0.5)
        fam.labels("b").observe(0.5)
        objective = LatencyObjective("lat", metric="h",
                                     threshold_s=0.01, quantile=0.5)
        breached, detail = objective.evaluate(registry)
        assert breached
        assert "2 observations" in detail

    def test_family_restricted_to_one_series(self):
        registry = MetricsRegistry()
        fam = registry.histogram("h", labels=("script",))
        fam.labels("slow").observe(0.5)
        fam.labels("fast").observe(0.0001)
        objective = LatencyObjective("lat", metric="h", threshold_s=0.01,
                                     quantile=0.5, labels=("fast",))
        assert not objective.evaluate(registry)[0]


class TestRatioObjective:
    def test_ratio_over_budget_breaches(self):
        registry = MetricsRegistry()
        shed, fired = registry.counter("shed"), registry.counter("fired")
        objective = RatioObjective("sheds", numerator="shed",
                                   denominator="fired", max_ratio=0.01)
        fired.inc(100)
        shed.inc(5)
        breached, detail = objective.evaluate(registry)
        assert breached
        assert "5/100" in detail

    def test_idle_window_is_healthy_and_allows_recovery(self):
        registry = MetricsRegistry()
        shed, fired = registry.counter("shed"), registry.counter("fired")
        objective = RatioObjective("sheds", numerator="shed",
                                   denominator="fired", max_ratio=0.01)
        fired.inc(10)
        shed.inc(10)
        assert objective.evaluate(registry)[0]
        breached, detail = objective.evaluate(registry)  # no movement
        assert not breached
        assert "no activity" in detail

    def test_counter_families_summed(self):
        registry = MetricsRegistry()
        num = registry.counter("shed", labels=("tenant",))
        den = registry.counter("fired", labels=("tenant",))
        num.labels("a").inc(2)
        den.labels("a").inc(2)
        den.labels("b").inc(2)
        objective = RatioObjective("sheds", numerator="shed",
                                   denominator="fired", max_ratio=0.6)
        assert not objective.evaluate(registry)[0]  # 2/4 = 0.5


class TestMonitorViaSession:
    def _session_with_breach(self, window=2):
        session = Session()
        hist = session.instrumentation.metrics.histogram("app.latency")
        session.install_slos(
            [LatencyObjective("app-p99", metric="app.latency",
                              threshold_s=0.01, quantile=0.9,
                              window=window)],
            every="DAYS")
        return session, hist

    def _advance(self, session, days=1):
        session.cron.run_until(session.clock.now + days)

    def test_rule_registered_and_uninstall_drops_it(self):
        session, _ = self._session_with_breach()
        assert "slo.monitor" in session.manager.temporal_rules
        session.slo.uninstall()
        assert "slo.monitor" not in session.manager.temporal_rules
        session.close()

    def test_violation_needs_consecutive_breaches(self):
        session, hist = self._session_with_breach(window=2)
        for _ in range(5):
            hist.observe(0.5)
        self._advance(session)  # streak 1 — not yet violated
        assert session.slo.problems() == []
        for _ in range(5):
            hist.observe(0.5)
        self._advance(session)  # streak 2 — violated
        problems = session.slo.problems()
        assert len(problems) == 1
        assert "app-p99" in problems[0]
        status = session.slo.status()["app-p99"]
        assert status["violated"] and status["breaches"] == 1
        metrics = session.instrumentation.metrics
        assert metrics.get("slo.status").labels("app-p99").value == 1.0
        assert metrics.get("slo.breaches").labels("app-p99").value == 1
        session.close()

    def test_healthz_degrades_then_recovers(self):
        session, hist = self._session_with_breach(window=2)
        server = session.start_telemetry_server(0)
        status, body = _get(server.url + "/healthz")
        assert status == 200
        for _ in range(2):
            for _ in range(5):
                hist.observe(0.5)
            self._advance(session)
        status, body = _get(server.url + "/healthz")
        assert status == 503
        assert body["status"] == "degraded"
        assert any("app-p99" in problem for problem in body["problems"])
        assert body["slo"]["app-p99"]["violated"] is True
        # A quiet window (no new observations) resolves the violation.
        self._advance(session)
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["slo"]["app-p99"]["violated"] is False
        session.close()

    def test_alert_events_fire_and_resolve(self):
        session, hist = self._session_with_breach(window=1)
        session.enable_telemetry()
        hist.observe(0.5)
        self._advance(session)
        self._advance(session)  # quiet → resolved
        states = [(e.fields["objective"], e.fields["state"])
                  for e in session.events(kind="alert")]
        assert ("app-p99", "firing") in states
        assert ("app-p99", "resolved") in states
        session.close()

    def test_objective_errors_are_contained(self):
        class Exploding(Objective):
            def evaluate(self, metrics):
                raise RuntimeError("boom")

        session = Session()
        session.install_slos([Exploding("boom", window=1)])
        self._advance(session)
        status = session.slo.status()["boom"]
        assert not status["violated"]
        assert "evaluation error" in status["detail"]
        session.close()

    def test_reinstall_replaces_previous_monitor(self):
        session, _ = self._session_with_breach()
        first = session.slo
        session.install_slos(
            [RatioObjective("sheds", numerator="a", denominator="b",
                            max_ratio=0.5)])
        assert session.slo is not first
        assert list(session.slo.status()) == ["sheds"]
        assert "slo.monitor" in session.manager.temporal_rules
        session.close()
