"""Unit tests for schemas, relations and event hooks."""

import pytest

from repro.db import (
    Column,
    DataTypeError,
    IntegrityError,
    Relation,
    Schema,
    SchemaError,
    TypeRegistry,
)


def make_relation(key=(), valid_time=None):
    schema = Schema([("name", "text"), ("hours", "int4"),
                     ("day", "abstime")],
                    key=key, valid_time_column=valid_time)
    return Relation("students", schema, TypeRegistry())


class TestSchema:
    def test_columns(self):
        schema = Schema([("a", "int4"), Column("b", "text")])
        assert schema.column_names() == ["a", "b"]
        assert schema.column("b").type_name == "text"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int4"), ("a", "text")])

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int4")], key=("b",))

    def test_unknown_valid_time_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int4")], valid_time_column="t")

    def test_str(self):
        assert str(Schema([("a", "int4")])) == "(a : int4)"


class TestInsert:
    def test_insert_assigns_tid(self):
        rel = make_relation()
        row = rel.insert({"name": "alice", "hours": 10, "day": 1})
        assert row["_tid"] == 1
        assert len(rel) == 1

    def test_missing_columns_default_none(self):
        rel = make_relation()
        row = rel.insert({"name": "bo"})
        assert row["hours"] is None

    def test_type_checked(self):
        rel = make_relation()
        with pytest.raises(DataTypeError):
            rel.insert({"name": "x", "hours": "many"})

    def test_unknown_column_rejected(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.insert({"name": "x", "salary": 1})

    def test_key_uniqueness(self):
        rel = make_relation(key=("name",))
        rel.insert({"name": "alice"})
        with pytest.raises(IntegrityError):
            rel.insert({"name": "alice"})


class TestDeleteUpdate:
    def test_delete(self):
        rel = make_relation()
        row = rel.insert({"name": "a"})
        rel.delete(row["_tid"])
        assert len(rel) == 0

    def test_delete_missing(self):
        rel = make_relation()
        with pytest.raises(IntegrityError):
            rel.delete(42)

    def test_update(self):
        rel = make_relation()
        row = rel.insert({"name": "a", "hours": 1})
        rel.update(row["_tid"], {"hours": 2})
        assert rel.get(row["_tid"])["hours"] == 2

    def test_update_keeps_key_check(self):
        rel = make_relation(key=("name",))
        rel.insert({"name": "a"})
        row = rel.insert({"name": "b"})
        with pytest.raises(IntegrityError):
            rel.update(row["_tid"], {"name": "a"})

    def test_update_same_tuple_key_ok(self):
        rel = make_relation(key=("name",))
        row = rel.insert({"name": "a", "hours": 1})
        rel.update(row["_tid"], {"hours": 9})  # no key change

    def test_truncate(self):
        rel = make_relation()
        rel.insert({"name": "a"})
        rel.truncate()
        assert len(rel) == 0


class TestEventHooks:
    def test_append_hook(self):
        rel = make_relation()
        seen = []
        rel.hooks["append"].append(seen.append)
        rel.insert({"name": "a"})
        assert len(seen) == 1
        assert seen[0].kind == "append"
        assert seen[0].new["name"] == "a"

    def test_delete_hook_gets_current(self):
        rel = make_relation()
        seen = []
        rel.hooks["delete"].append(seen.append)
        row = rel.insert({"name": "a"})
        rel.delete(row["_tid"])
        assert seen[0].current["name"] == "a"

    def test_replace_hook_gets_both(self):
        rel = make_relation()
        seen = []
        rel.hooks["replace"].append(seen.append)
        row = rel.insert({"name": "a", "hours": 1})
        rel.update(row["_tid"], {"hours": 2})
        event = seen[0]
        assert event.current["hours"] == 1
        assert event.new["hours"] == 2

    def test_retrieve_hook(self):
        rel = make_relation()
        seen = []
        rel.hooks["retrieve"].append(seen.append)
        row = rel.insert({"name": "a"})
        rel.notify_retrieve(row)
        assert seen[0].kind == "retrieve"

    def test_fire_hooks_false_suppresses(self):
        rel = make_relation()
        seen = []
        rel.hooks["append"].append(seen.append)
        rel.insert({"name": "a"}, fire_hooks=False)
        assert seen == []
